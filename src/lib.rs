//! # cISP — a speed-of-light Internet service provider, reproduced in Rust
//!
//! This facade crate re-exports the whole workspace behind one dependency so
//! that examples, integration tests and downstream users can write
//! `use cisp::core::...` instead of depending on ten crates individually.
//!
//! The workspace reproduces *"cISP: A Speed-of-Light Internet Service
//! Provider"* (NSDI 2022): a design methodology for hybrid microwave + fiber
//! wide-area networks that deliver latencies within a few percent of the
//! speed-of-light lower bound, plus every substrate its evaluation relies on
//! (terrain and tower models, a fiber conduit map, an ILP/MILP solver, a
//! packet-level simulator, a weather model, and application-level latency
//! models). See `README.md` for a tour and `DESIGN.md` for the full system
//! inventory and experiment index.
//!
//! ## Crate map
//!
//! | Module | Backing crate | What it provides |
//! |---|---|---|
//! | [`geo`] | `cisp-geo` | geodesics, Fresnel zones, latency/stretch math |
//! | [`terrain`] | `cisp-terrain` | synthetic elevation + clutter model |
//! | [`data`] | `cisp-data` | cities, data centers, towers, fiber conduits |
//! | [`graph`] | `cisp-graph` | Dijkstra, k-shortest, disjoint paths |
//! | [`lp`] | `cisp-lp` | simplex LP + branch-and-bound MILP solver |
//! | [`core`] | `cisp-core` | hop feasibility, topology design, augmentation, cost |
//! | [`traffic`] | `cisp-traffic` | traffic matrices, mixes, perturbations |
//! | [`weather`] | `cisp-weather` | rain attenuation, storm year, failure analysis |
//! | [`netsim`] | `cisp-netsim` | packet-level discrete-event simulator |
//! | [`apps`] | `cisp-apps` | web PLT, gaming frame time, cost-benefit |
//!
//! ## Quickstart
//!
//! ```
//! use cisp::core::scenario::{Scenario, ScenarioConfig};
//! use cisp::core::cost::CostModel;
//!
//! // Build a miniature deployment scenario (south-central US, ~12 cities)
//! // and design a network with a 300-tower budget.
//! let scenario = Scenario::build(&ScenarioConfig::tiny_test());
//! let outcome = scenario.design(300.0);
//! println!("mean stretch: {:.3}", outcome.mean_stretch);
//!
//! // Provision it for 20 Gbps and price it.
//! let provisioned = scenario.provision(&outcome, 20.0, &CostModel::default());
//! assert!(provisioned.cost_per_gb > 0.0);
//! ```

pub use cisp_apps as apps;
pub use cisp_core as core;
pub use cisp_data as data;
pub use cisp_geo as geo;
pub use cisp_graph as graph;
pub use cisp_lp as lp;
pub use cisp_netsim as netsim;
pub use cisp_terrain as terrain;
pub use cisp_traffic as traffic;
pub use cisp_weather as weather;

//! Physical constants used throughout the workspace.
//!
//! The constants here are deliberately few: the paper's analysis depends only
//! on the speed of light, the refractive slowdown of optical fiber, and the
//! Earth's radius. Everything else (costs, ranges, frequencies) is a model
//! *parameter* and lives with the code that owns the model.

/// Speed of light in vacuum, in kilometres per second.
///
/// The speed of light in air differs from the vacuum value by less than
/// 0.03 %, so — like the paper — we treat free-space microwave propagation as
/// happening exactly at `c`.
pub const SPEED_OF_LIGHT_KM_PER_S: f64 = 299_792.458;

/// Mean Earth radius in kilometres (IUGG mean radius R₁).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Multiplier applied to fiber route distances to convert them into
/// "equivalent free-space distance" for latency purposes.
///
/// Light in silica fiber travels at roughly `2c/3`; the paper accordingly
/// multiplies fiber distances by 1.5 when comparing them with microwave
/// paths (§3.2, "The optical fiber distance ... which we multiply by 1.5").
pub const FIBER_LATENCY_FACTOR: f64 = 1.5;

/// Default microwave carrier frequency in GHz used for Fresnel-zone
/// calculations (§3.1 adopts `f = 11 GHz`).
pub const DEFAULT_MICROWAVE_FREQ_GHZ: f64 = 11.0;

/// Default atmospheric refraction factor ("effective Earth radius factor")
/// used for the Earth-bulge calculation (§3.1 adopts `K = 1.3`).
pub const DEFAULT_K_FACTOR: f64 = 1.3;

/// Maximum practicable microwave hop length in kilometres under favourable
/// conditions (§2, "A maximum range of around 100 km is practicable").
pub const DEFAULT_MAX_HOP_KM: f64 = 100.0;

/// Convert kilometres to metres.
#[inline]
pub fn km_to_m(km: f64) -> f64 {
    km * 1_000.0
}

/// Convert metres to kilometres.
#[inline]
pub fn m_to_km(m: f64) -> f64 {
    m / 1_000.0
}

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad.to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_of_light_is_the_si_value() {
        assert!((SPEED_OF_LIGHT_KM_PER_S - 299_792.458).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn earth_radius_in_plausible_range() {
        assert!(EARTH_RADIUS_KM > 6_350.0 && EARTH_RADIUS_KM < 6_400.0);
    }

    #[test]
    fn fiber_factor_matches_refractive_index() {
        // n ≈ 1.468 for silica; the paper rounds to 1.5.
        assert!((FIBER_LATENCY_FACTOR - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        assert!((km_to_m(1.234) - 1234.0).abs() < 1e-9);
        assert!((m_to_km(km_to_m(42.5)) - 42.5).abs() < 1e-12);
        assert!((rad_to_deg(deg_to_rad(123.4)) - 123.4).abs() < 1e-9);
    }
}

//! Great-circle ("geodesic") geometry on a spherical Earth.
//!
//! The paper's notion of ideal latency is the *geodesic distance* between two
//! sites divided by the speed of light ("c-latency"). A spherical Earth model
//! (haversine) is accurate to ~0.5 % which is far below the stretch
//! differences the paper studies (5 %–100 %), so — like the paper's own
//! analysis scripts — we use spherical formulae throughout.

use crate::coords::GeoPoint;
use crate::units::EARTH_RADIUS_KM;

/// Great-circle distance between two points, in kilometres (haversine).
///
/// Numerically stable for both antipodal and very close points.
pub fn distance_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat_rad();
    let lat2 = b.lat_rad();
    let dlat = lat2 - lat1;
    let dlon = b.lon_rad() - a.lon_rad();

    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    let c = 2.0 * s.sqrt().clamp(0.0, 1.0).asin();
    EARTH_RADIUS_KM * c
}

/// Central angle between two points, in radians.
pub fn central_angle_rad(a: GeoPoint, b: GeoPoint) -> f64 {
    distance_km(a, b) / EARTH_RADIUS_KM
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees clockwise
/// from true north, normalised to `[0, 360)`.
pub fn initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> f64 {
    let lat1 = a.lat_rad();
    let lat2 = b.lat_rad();
    let dlon = b.lon_rad() - a.lon_rad();
    let y = dlon.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// Point reached by travelling `distance_km` from `start` along `bearing_deg`.
pub fn destination(start: GeoPoint, bearing_deg: f64, distance_km: f64) -> GeoPoint {
    let delta = distance_km / EARTH_RADIUS_KM;
    let theta = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lon1 = start.lon_rad();

    let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
    let lon2 = lon1
        + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());

    // Normalise longitude into [-180, 180].
    let lon_deg = ((lon2.to_degrees() + 540.0) % 360.0) - 180.0;
    GeoPoint::new(lat2.to_degrees().clamp(-90.0, 90.0), lon_deg)
}

/// Intermediate point at fraction `f ∈ [0, 1]` of the great circle from `a`
/// to `b` (spherical linear interpolation).
pub fn intermediate(a: GeoPoint, b: GeoPoint, f: f64) -> GeoPoint {
    assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
    let delta = central_angle_rad(a, b);
    if delta < 1e-12 {
        return a;
    }
    let sin_delta = delta.sin();
    let wa = ((1.0 - f) * delta).sin() / sin_delta;
    let wb = (f * delta).sin() / sin_delta;

    let va = a.to_unit_vector();
    let vb = b.to_unit_vector();
    GeoPoint::from_unit_vector([
        wa * va[0] + wb * vb[0],
        wa * va[1] + wb * vb[1],
        wa * va[2] + wb * vb[2],
    ])
}

/// Sample the great-circle path from `a` to `b` at `n_samples` evenly spaced
/// points **including both endpoints**. Panics if `n_samples < 2`.
///
/// This is the sampling pattern used for terrain profiles in line-of-sight
/// checks: an elevation is looked up at each returned point.
pub fn sample_path(a: GeoPoint, b: GeoPoint, n_samples: usize) -> Vec<GeoPoint> {
    assert!(n_samples >= 2, "need at least the two endpoints");
    (0..n_samples)
        .map(|i| intermediate(a, b, i as f64 / (n_samples - 1) as f64))
        .collect()
}

/// Repeated-slerp sampler for one `a` → `b` great-circle path.
///
/// [`intermediate`] recomputes the central angle, its sine, and both unit
/// vectors on every call — seven trig evaluations that are constant across a
/// path. `PathSampler` hoists them once, making per-sample cost two sines
/// plus the vector blend. [`point_at`](PathSampler::point_at) evaluates the
/// *same expressions in the same order* as `intermediate`, so the returned
/// points are bit-identical — the hop-feasibility sweep relies on that to
/// keep line-of-sight verdicts unchanged.
#[derive(Debug, Clone, Copy)]
pub struct PathSampler {
    a: GeoPoint,
    delta: f64,
    sin_delta: f64,
    va: [f64; 3],
    vb: [f64; 3],
}

impl PathSampler {
    /// Precompute the path constants for `a` → `b`.
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        let delta = central_angle_rad(a, b);
        Self {
            a,
            delta,
            sin_delta: delta.sin(),
            va: a.to_unit_vector(),
            vb: b.to_unit_vector(),
        }
    }

    /// Point at fraction `f ∈ [0, 1]` of the path; bit-identical to
    /// `intermediate(a, b, f)`.
    pub fn point_at(&self, f: f64) -> GeoPoint {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        if self.delta < 1e-12 {
            return self.a;
        }
        let wa = ((1.0 - f) * self.delta).sin() / self.sin_delta;
        let wb = (f * self.delta).sin() / self.sin_delta;
        GeoPoint::from_unit_vector([
            wa * self.va[0] + wb * self.vb[0],
            wa * self.va[1] + wb * self.vb[1],
            wa * self.va[2] + wb * self.vb[2],
        ])
    }
}

/// Cross-track distance (in km, absolute value) of point `p` from the great
/// circle through `a` → `b`.
///
/// Used when assessing how far a parallel tower series may stray from the
/// geodesic (§3.3's "10 km divergence adds 0.2 %" argument).
pub fn cross_track_distance_km(a: GeoPoint, b: GeoPoint, p: GeoPoint) -> f64 {
    let delta13 = central_angle_rad(a, p);
    let theta13 = initial_bearing_deg(a, p).to_radians();
    let theta12 = initial_bearing_deg(a, b).to_radians();
    (delta13.sin() * (theta13 - theta12).sin()).asin().abs() * EARTH_RADIUS_KM
}

/// Total length, in km, of a polyline of points (sum of consecutive
/// great-circle segment lengths). Returns 0 for fewer than two points.
pub fn path_length_km(points: &[GeoPoint]) -> f64 {
    points.windows(2).map(|w| distance_km(w[0], w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }
    fn chicago() -> GeoPoint {
        GeoPoint::new(41.8781, -87.6298)
    }
    fn la() -> GeoPoint {
        GeoPoint::new(34.0522, -118.2437)
    }

    #[test]
    fn known_distances() {
        // Reference values from standard great-circle calculators (±0.5 %).
        let d_nyc_chi = distance_km(nyc(), chicago());
        assert!((d_nyc_chi - 1145.0).abs() < 10.0, "NYC-CHI = {d_nyc_chi}");

        let d_nyc_la = distance_km(nyc(), la());
        assert!((d_nyc_la - 3936.0).abs() < 25.0, "NYC-LA = {d_nyc_la}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let d1 = distance_km(nyc(), la());
        let d2 = distance_km(la(), nyc());
        assert!((d1 - d2).abs() < 1e-9);
        assert!(distance_km(nyc(), nyc()) < 1e-9);
    }

    #[test]
    fn triangle_inequality_holds() {
        let ab = distance_km(nyc(), chicago());
        let bc = distance_km(chicago(), la());
        let ac = distance_km(nyc(), la());
        assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_roundtrips_distance_and_bearing() {
        let start = chicago();
        let bearing = 247.0;
        let dist = 96.0;
        let end = destination(start, bearing, dist);
        assert!((distance_km(start, end) - dist).abs() < 1e-6);
        assert!((initial_bearing_deg(start, end) - bearing).abs() < 1e-3);
    }

    #[test]
    fn intermediate_endpoints_and_midpoint() {
        let a = nyc();
        let b = la();
        let p0 = intermediate(a, b, 0.0);
        let p1 = intermediate(a, b, 1.0);
        assert!(distance_km(a, p0) < 1e-6);
        assert!(distance_km(b, p1) < 1e-6);

        let mid = intermediate(a, b, 0.5);
        let d_am = distance_km(a, mid);
        let d_mb = distance_km(mid, b);
        assert!((d_am - d_mb).abs() < 1e-6);
        assert!((d_am + d_mb - distance_km(a, b)).abs() < 1e-6);
    }

    #[test]
    fn sample_path_lengths_sum_to_total() {
        let pts = sample_path(nyc(), la(), 50);
        assert_eq!(pts.len(), 50);
        let total = path_length_km(&pts);
        assert!((total - distance_km(nyc(), la())).abs() < 1e-6);
    }

    #[test]
    fn path_sampler_is_bit_identical_to_intermediate() {
        for (a, b) in [(nyc(), la()), (nyc(), chicago()), (chicago(), la())] {
            let sampler = PathSampler::new(a, b);
            for i in 0..=160u32 {
                let f = i as f64 / 160.0;
                let p = sampler.point_at(f);
                let q = intermediate(a, b, f);
                assert!(p.lat_deg == q.lat_deg && p.lon_deg == q.lon_deg, "f = {f}");
            }
        }
        // Degenerate (coincident endpoints) path takes the early return.
        let s = PathSampler::new(nyc(), nyc());
        let p = s.point_at(0.5);
        assert!(p.lat_deg == nyc().lat_deg && p.lon_deg == nyc().lon_deg);
    }

    #[test]
    fn cross_track_of_on_path_point_is_zero() {
        let mid = intermediate(nyc(), la(), 0.3);
        let xt = cross_track_distance_km(nyc(), la(), mid);
        assert!(xt < 1e-6, "cross-track was {xt}");
    }

    #[test]
    fn cross_track_detects_offsets() {
        // A point ~100 km north of the midpoint of a mostly east-west path.
        let mid = intermediate(nyc(), la(), 0.5);
        let off = destination(mid, 0.0, 100.0);
        let xt = cross_track_distance_km(nyc(), la(), off);
        assert!((xt - 100.0).abs() < 5.0, "cross-track was {xt}");
    }

    #[test]
    fn small_divergence_small_stretch() {
        // §3.3: a 10 km mid-point divergence on a 500 km link inflates the
        // path by ~0.2 % or less.
        let a = GeoPoint::new(40.0, -100.0);
        let b = destination(a, 90.0, 500.0);
        let mid = intermediate(a, b, 0.5);
        let detour_mid = destination(mid, 0.0, 10.0);
        let detour_len = distance_km(a, detour_mid) + distance_km(detour_mid, b);
        let stretch = detour_len / distance_km(a, b);
        assert!(stretch < 1.002, "stretch was {stretch}");
    }

    #[test]
    fn path_length_of_degenerate_inputs() {
        assert_eq!(path_length_km(&[]), 0.0);
        assert_eq!(path_length_km(&[nyc()]), 0.0);
    }
}

//! Microwave line-of-sight geometry: Fresnel zones and Earth-curvature bulge.
//!
//! §3.1 of the paper states the two mid-hop clearance requirements for a
//! microwave hop of length `D` at frequency `f`:
//!
//! ```text
//! h_Fres  ≃ 8.7 m · (D / 1 km)^(1/2) · (f / 1 GHz)^(-1/2)
//! h_Earth ≃ 1 m / (50 K) · (D / 1 km)^2
//! ```
//!
//! where `K` is the effective-Earth-radius (atmospheric refraction) factor.
//! These are the mid-point specialisations of the standard point-wise
//! formulae, which this module also provides so that full terrain profiles can
//! be checked, not just the mid-point:
//!
//! ```text
//! r_Fres(d1, d2) = 17.31 m · sqrt(d1 · d2 / (f · D))      (d in km, f in GHz)
//! bulge(d1, d2)  = d1 · d2 / (12.75 · K)                  (metres, d in km)
//! ```

/// First Fresnel-zone radius at a point `d1_km` from one antenna and `d2_km`
/// from the other, for carrier frequency `freq_ghz`, in metres.
pub fn fresnel_radius_m(d1_km: f64, d2_km: f64, freq_ghz: f64) -> f64 {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    let total = d1_km + d2_km;
    if total <= 0.0 {
        return 0.0;
    }
    17.31 * (d1_km * d2_km / (freq_ghz * total)).sqrt()
}

/// First Fresnel-zone radius at the midpoint of a hop of `hop_km`, in metres.
///
/// Matches the paper's `8.7 · sqrt(D) / sqrt(f)` approximation
/// (17.31 · sqrt(D/4f) = 8.655 · sqrt(D/f)).
pub fn fresnel_radius_midpoint_m(hop_km: f64, freq_ghz: f64) -> f64 {
    fresnel_radius_m(hop_km / 2.0, hop_km / 2.0, freq_ghz)
}

/// Earth-curvature bulge height at a point `d1_km` from one end and `d2_km`
/// from the other, for refraction factor `k`, in metres.
pub fn earth_bulge_m(d1_km: f64, d2_km: f64, k: f64) -> f64 {
    assert!(k > 0.0, "K-factor must be positive");
    d1_km * d2_km / (12.75 * k)
}

/// Earth-curvature bulge at the midpoint of a hop of `hop_km`, in metres.
///
/// Matches the paper's `D² / (50 K)` approximation
/// (D²/4 / 12.75K = D²/51K ≈ D²/50K).
pub fn earth_bulge_midpoint_m(hop_km: f64, k: f64) -> f64 {
    earth_bulge_m(hop_km / 2.0, hop_km / 2.0, k)
}

/// Total clearance (in metres, above the straight chord between the two
/// antennas) that an obstacle at `d1_km`/`d2_km` must stay below for the hop
/// to be viable: Earth bulge plus a fully clear first Fresnel zone.
pub fn required_clearance_m(d1_km: f64, d2_km: f64, freq_ghz: f64, k: f64) -> f64 {
    earth_bulge_m(d1_km, d2_km, k) + fresnel_radius_m(d1_km, d2_km, freq_ghz)
}

/// Height of the straight line between two antenna tips at a point along the
/// hop, in metres above the *lower reference plane* (linear interpolation of
/// the two antenna heights).
///
/// `h_a_m` and `h_b_m` are the antenna heights above some common datum (e.g.
/// metres above sea level); `frac` is the fractional distance from A to B.
pub fn line_of_sight_height_m(h_a_m: f64, h_b_m: f64, frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac));
    h_a_m + (h_b_m - h_a_m) * frac
}

/// Result of evaluating a single profile sample for hop feasibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClearanceSample {
    /// Fractional position along the hop, in `[0, 1]`.
    pub frac: f64,
    /// Height of the sight line above the datum at this point (m).
    pub sight_line_m: f64,
    /// Required clearance below the sight line (Fresnel + bulge), in metres.
    pub required_m: f64,
    /// Obstacle height (terrain + clutter) above the datum at this point (m).
    pub obstacle_m: f64,
}

impl ClearanceSample {
    /// Margin in metres between the bottom of the required clearance zone and
    /// the obstacle. Non-negative margins mean the sample is clear.
    pub fn margin_m(&self) -> f64 {
        (self.sight_line_m - self.required_m) - self.obstacle_m
    }

    /// Whether the obstacle stays out of the required clearance zone.
    pub fn is_clear(&self) -> bool {
        self.margin_m() >= 0.0
    }
}

/// Evaluate clearance along a hop given pre-sampled obstacle heights.
///
/// * `hop_km` — total hop length.
/// * `h_a_m`, `h_b_m` — antenna heights above the common datum at each end.
/// * `obstacles_m` — obstacle heights above the same datum, sampled uniformly
///   along the hop **including the endpoints** (so `obstacles_m.len() >= 2`).
/// * `freq_ghz`, `k` — carrier frequency and refraction factor.
///
/// Returns the per-sample clearance evaluation; the hop is feasible iff every
/// interior sample is clear (the endpoint samples are the antennas
/// themselves and are skipped).
pub fn evaluate_profile(
    hop_km: f64,
    h_a_m: f64,
    h_b_m: f64,
    obstacles_m: &[f64],
    freq_ghz: f64,
    k: f64,
) -> Vec<ClearanceSample> {
    assert!(obstacles_m.len() >= 2, "profile needs at least endpoints");
    assert!(hop_km > 0.0, "hop length must be positive");
    let n = obstacles_m.len();
    obstacles_m
        .iter()
        .enumerate()
        .map(|(i, &obstacle_m)| {
            let frac = i as f64 / (n - 1) as f64;
            let d1 = hop_km * frac;
            let d2 = hop_km - d1;
            ClearanceSample {
                frac,
                sight_line_m: line_of_sight_height_m(h_a_m, h_b_m, frac),
                required_m: required_clearance_m(d1, d2, freq_ghz, k),
                obstacle_m,
            }
        })
        .collect()
}

/// Whether a hop is feasible given its profile evaluation: all interior
/// samples must be clear.
pub fn profile_is_clear(samples: &[ClearanceSample]) -> bool {
    samples
        .iter()
        .filter(|s| s.frac > 0.0 && s.frac < 1.0)
        .all(|s| s.is_clear())
}

/// Clearance margin of one profile sample, in metres, without materialising a
/// [`ClearanceSample`]: identical arithmetic to
/// [`evaluate_profile`] + [`ClearanceSample::margin_m`] at the same `frac`.
///
/// The hop-feasibility sweep uses this to test samples one at a time (and
/// bail on the first blocked one) instead of building the full profile `Vec`
/// per pair; because the per-sample expressions are the same, the boolean
/// verdict is bit-identical to the allocating path.
#[inline]
pub fn sample_margin_m(
    hop_km: f64,
    h_a_m: f64,
    h_b_m: f64,
    frac: f64,
    obstacle_m: f64,
    freq_ghz: f64,
    k: f64,
) -> f64 {
    let d1 = hop_km * frac;
    let d2 = hop_km - d1;
    (line_of_sight_height_m(h_a_m, h_b_m, frac) - required_clearance_m(d1, d2, freq_ghz, k))
        - obstacle_m
}

/// Whether one profile sample is clear; see [`sample_margin_m`].
#[inline]
pub fn sample_is_clear(
    hop_km: f64,
    h_a_m: f64,
    h_b_m: f64,
    frac: f64,
    obstacle_m: f64,
    freq_ghz: f64,
    k: f64,
) -> bool {
    sample_margin_m(hop_km, h_a_m, h_b_m, frac, obstacle_m, freq_ghz, k) >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_fresnel_matches_paper_constant() {
        // Paper: h_Fres ≃ 8.7 m for D = 1 km, f = 1 GHz.
        let r = fresnel_radius_midpoint_m(1.0, 1.0);
        assert!((r - 8.655).abs() < 0.1, "r = {r}");

        // 100 km at 11 GHz: 8.66 * sqrt(100/11) ≈ 26.1 m.
        let r = fresnel_radius_midpoint_m(100.0, 11.0);
        assert!((r - 26.1).abs() < 0.5, "r = {r}");
    }

    #[test]
    fn midpoint_bulge_matches_paper_constant() {
        // Paper: h_Earth ≃ D²/(50K) metres. For D = 100 km, K = 1.3: ≈ 153.8 m.
        let b = earth_bulge_midpoint_m(100.0, 1.3);
        assert!((b - 100.0 * 100.0 / (51.0 * 1.3)).abs() < 2.0, "b = {b}");
        assert!(b > 145.0 && b < 160.0, "b = {b}");
    }

    #[test]
    fn fresnel_is_symmetric_and_zero_at_ends() {
        let r1 = fresnel_radius_m(30.0, 70.0, 11.0);
        let r2 = fresnel_radius_m(70.0, 30.0, 11.0);
        assert!((r1 - r2).abs() < 1e-12);
        assert_eq!(fresnel_radius_m(0.0, 100.0, 11.0), 0.0);
    }

    #[test]
    fn bulge_is_maximal_at_midpoint() {
        let mid = earth_bulge_m(50.0, 50.0, 1.3);
        for d1 in [10.0, 25.0, 40.0, 60.0, 90.0] {
            let b = earth_bulge_m(d1, 100.0 - d1, 1.3);
            assert!(b <= mid + 1e-9);
        }
    }

    #[test]
    fn higher_frequency_needs_less_clearance() {
        let low = fresnel_radius_midpoint_m(80.0, 6.0);
        let high = fresnel_radius_midpoint_m(80.0, 18.0);
        assert!(high < low);
    }

    #[test]
    fn flat_terrain_profile_clear_with_tall_towers() {
        // 80 km hop over flat ground at sea level with 250 m towers: the
        // required clearance at mid-hop is ~120 m bulge + ~23 m Fresnel,
        // comfortably below the 250 m sight line.
        let obstacles = vec![0.0; 41];
        let samples = evaluate_profile(80.0, 250.0, 250.0, &obstacles, 11.0, 1.3);
        assert!(profile_is_clear(&samples));
    }

    #[test]
    fn flat_terrain_profile_blocked_with_short_towers() {
        // Same hop with 50 m towers fails: the Earth itself gets in the way.
        let obstacles = vec![0.0; 41];
        let samples = evaluate_profile(80.0, 50.0, 50.0, &obstacles, 11.0, 1.3);
        assert!(!profile_is_clear(&samples));
    }

    #[test]
    fn single_obstruction_blocks() {
        let mut obstacles = vec![0.0; 41];
        obstacles[20] = 400.0; // a ridge at mid-hop
        let samples = evaluate_profile(60.0, 200.0, 200.0, &obstacles, 11.0, 1.3);
        assert!(!profile_is_clear(&samples));
        // Endpoint "obstacles" are ignored even if tall (they are the towers).
        let mut obstacles = vec![0.0; 41];
        obstacles[0] = 1000.0;
        obstacles[40] = 1000.0;
        let samples = evaluate_profile(40.0, 200.0, 200.0, &obstacles, 11.0, 1.3);
        assert!(profile_is_clear(&samples));
    }

    #[test]
    fn clearance_sample_margin_sign() {
        let s = ClearanceSample {
            frac: 0.5,
            sight_line_m: 200.0,
            required_m: 150.0,
            obstacle_m: 40.0,
        };
        assert!(s.is_clear());
        assert!((s.margin_m() - 10.0).abs() < 1e-12);
        let s2 = ClearanceSample {
            obstacle_m: 60.0,
            ..s
        };
        assert!(!s2.is_clear());
    }

    #[test]
    #[should_panic]
    fn evaluate_profile_requires_two_samples() {
        evaluate_profile(10.0, 100.0, 100.0, &[0.0], 11.0, 1.3);
    }

    #[test]
    fn sample_margin_is_bit_identical_to_profile_evaluation() {
        let obstacles: Vec<f64> = (0..33).map(|i| (i as f64 * 13.7) % 180.0).collect();
        let (hop, ha, hb, f, k) = (73.0, 210.0, 145.0, 11.0, 1.3);
        let samples = evaluate_profile(hop, ha, hb, &obstacles, f, k);
        let n = obstacles.len();
        for (i, s) in samples.iter().enumerate() {
            let frac = i as f64 / (n - 1) as f64;
            let m = sample_margin_m(hop, ha, hb, frac, obstacles[i], f, k);
            assert!(m == s.margin_m(), "sample {i}: {m} vs {}", s.margin_m());
            assert_eq!(
                sample_is_clear(hop, ha, hb, frac, obstacles[i], f, k),
                s.is_clear()
            );
        }
    }
}

//! Geographic coordinates.
//!
//! [`GeoPoint`] is the workhorse type of the workspace: cities, towers, data
//! centers, fiber bend points and storm centres are all located by one. It is
//! a plain `(lat, lon)` pair in degrees with a handful of convenience methods;
//! all heavier geometry lives in [`crate::geodesic`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the Earth's surface, given by latitude and longitude in degrees.
///
/// Latitude is positive north, longitude positive east. The type is `Copy` and
/// ordered lexicographically (latitude first) so it can be used as a map key
/// after quantisation; exact float equality is intentional because points in
/// this workspace come from datasets, not from accumulation of arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Create a new point. Debug-asserts that the coordinates are in range;
    /// use [`GeoPoint::try_new`] for checked construction from untrusted data.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        debug_assert!((-90.0..=90.0).contains(&lat_deg), "latitude out of range");
        debug_assert!(
            (-180.0..=180.0).contains(&lon_deg),
            "longitude out of range"
        );
        Self { lat_deg, lon_deg }
    }

    /// Checked construction: returns `None` if either coordinate is out of
    /// range or not finite.
    pub fn try_new(lat_deg: f64, lon_deg: f64) -> Option<Self> {
        if lat_deg.is_finite()
            && lon_deg.is_finite()
            && (-90.0..=90.0).contains(&lat_deg)
            && (-180.0..=180.0).contains(&lon_deg)
        {
            Some(Self { lat_deg, lon_deg })
        } else {
            None
        }
    }

    /// Latitude in radians.
    #[inline]
    pub fn lat_rad(&self) -> f64 {
        self.lat_deg.to_radians()
    }

    /// Longitude in radians.
    #[inline]
    pub fn lon_rad(&self) -> f64 {
        self.lon_deg.to_radians()
    }

    /// Great-circle distance to another point in kilometres.
    ///
    /// Convenience wrapper around [`crate::geodesic::distance_km`].
    #[inline]
    pub fn distance_km(&self, other: GeoPoint) -> f64 {
        crate::geodesic::distance_km(*self, other)
    }

    /// Quantise to a grid cell of `cell_deg` degrees, returning integer cell
    /// coordinates `(lat_cell, lon_cell)`.
    ///
    /// Used for the paper's tower-density culling rule ("50 towers per 0.5°
    /// square grid cell") and for spatial indexing.
    pub fn grid_cell(&self, cell_deg: f64) -> (i32, i32) {
        assert!(cell_deg > 0.0, "cell size must be positive");
        (
            (self.lat_deg / cell_deg).floor() as i32,
            (self.lon_deg / cell_deg).floor() as i32,
        )
    }

    /// Unit vector on the sphere (ECEF direction, unit radius).
    pub fn to_unit_vector(&self) -> [f64; 3] {
        let lat = self.lat_rad();
        let lon = self.lon_rad();
        [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
    }

    /// Reconstruct a point from a unit vector; the inverse of
    /// [`GeoPoint::to_unit_vector`] up to floating-point error.
    pub fn from_unit_vector(v: [f64; 3]) -> Self {
        let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let x = v[0] / norm;
        let y = v[1] / norm;
        let z = v[2] / norm;
        Self {
            lat_deg: z.asin().to_degrees(),
            lon_deg: y.atan2(x).to_degrees(),
        }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}°, {:.4}°)", self.lat_deg, self.lon_deg)
    }
}

/// A point together with a height above ground level, e.g. a tower-mounted
/// antenna. Heights are metres above the local terrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SitedPoint {
    /// Ground location.
    pub location: GeoPoint,
    /// Height of the antenna mount above ground, in metres.
    pub height_above_ground_m: f64,
}

impl SitedPoint {
    /// Create a sited point; the height must be non-negative.
    pub fn new(location: GeoPoint, height_above_ground_m: f64) -> Self {
        debug_assert!(height_above_ground_m >= 0.0);
        Self {
            location,
            height_above_ground_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_out_of_range() {
        assert!(GeoPoint::try_new(91.0, 0.0).is_none());
        assert!(GeoPoint::try_new(-91.0, 0.0).is_none());
        assert!(GeoPoint::try_new(0.0, 181.0).is_none());
        assert!(GeoPoint::try_new(0.0, -181.0).is_none());
        assert!(GeoPoint::try_new(f64::NAN, 0.0).is_none());
        assert!(GeoPoint::try_new(45.0, -120.0).is_some());
    }

    #[test]
    fn unit_vector_roundtrip() {
        for &(lat, lon) in &[
            (0.0, 0.0),
            (41.88, -87.62),
            (-33.86, 151.21),
            (89.0, 10.0),
            (-45.0, -170.0),
        ] {
            let p = GeoPoint::new(lat, lon);
            let q = GeoPoint::from_unit_vector(p.to_unit_vector());
            assert!((p.lat_deg - q.lat_deg).abs() < 1e-9, "{p} vs {q}");
            assert!((p.lon_deg - q.lon_deg).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn grid_cell_quantises() {
        let p = GeoPoint::new(41.88, -87.62);
        assert_eq!(p.grid_cell(0.5), (83, -176));
        assert_eq!(p.grid_cell(1.0), (41, -88));
    }

    #[test]
    fn display_formats_degrees() {
        let p = GeoPoint::new(41.88, -87.62);
        assert_eq!(format!("{p}"), "(41.8800°, -87.6200°)");
    }

    #[test]
    #[should_panic]
    fn grid_cell_rejects_zero_cell() {
        GeoPoint::new(0.0, 0.0).grid_cell(0.0);
    }
}

//! Geodesy and microwave radio-physics primitives for the cISP reproduction.
//!
//! This crate provides the low-level geometric and physical calculations that
//! every other part of the workspace builds on:
//!
//! * [`coords`] — geographic coordinates ([`GeoPoint`]) and conversions.
//! * [`geodesic`] — great-circle ("geodesic") distances, bearings and
//!   interpolation along great-circle paths.
//! * [`fresnel`] — microwave line-of-sight geometry: first Fresnel-zone radii
//!   and the Earth-curvature "bulge" with an atmospheric refraction factor
//!   *K*, exactly as used in §3.1 of the paper.
//! * [`latency`] — conversions between distance and propagation latency for
//!   free-space (speed of light `c`) and optical fiber (`~2c/3`).
//! * [`units`] — physical constants shared across the workspace.
//!
//! All angles in the public API are degrees, all distances kilometres and all
//! heights metres unless a name says otherwise. The crate is `#![no_std]`-free
//! but allocation-light and fully deterministic.
//!
//! # Example
//!
//! ```
//! use cisp_geo::{GeoPoint, geodesic, fresnel, latency};
//!
//! let chicago = GeoPoint::new(41.88, -87.62);
//! let galien = GeoPoint::new(41.81, -86.47);
//!
//! // The McKay Brothers HFT hop cited in the paper is ~96 km long.
//! let d = geodesic::distance_km(chicago, galien);
//! assert!((d - 96.0).abs() < 3.0);
//!
//! // Mid-hop clearance requirements at 11 GHz with K = 1.3.
//! let fresnel_m = fresnel::fresnel_radius_midpoint_m(d, 11.0);
//! let bulge_m = fresnel::earth_bulge_midpoint_m(d, 1.3);
//! assert!(fresnel_m > 20.0 && bulge_m > 100.0);
//!
//! // c-latency of the hop, one way.
//! let us = latency::c_latency_us(d);
//! assert!(us > 300.0 && us < 340.0);
//! ```

pub mod coords;
pub mod fresnel;
pub mod geodesic;
pub mod latency;
pub mod units;

pub use coords::GeoPoint;
pub use latency::{c_latency_ms, c_latency_us, fiber_latency_ms, stretch};

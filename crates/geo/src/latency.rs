//! Distance ↔ latency conversions and the paper's central "stretch" metric.
//!
//! *c-latency* is the one-way propagation time along the geodesic at the
//! speed of light; *stretch* is the ratio of an actual path's latency to the
//! c-latency of its endpoints. A stretch of 1.0 means "as fast as physics
//! allows"; today's Internet averages 3–4× and fiber shortest paths ~1.9×.

use crate::units::{FIBER_LATENCY_FACTOR, SPEED_OF_LIGHT_KM_PER_S};

/// One-way propagation latency of `distance_km` at the speed of light, in
/// milliseconds.
#[inline]
pub fn c_latency_ms(distance_km: f64) -> f64 {
    distance_km / SPEED_OF_LIGHT_KM_PER_S * 1_000.0
}

/// One-way propagation latency of `distance_km` at the speed of light, in
/// microseconds.
#[inline]
pub fn c_latency_us(distance_km: f64) -> f64 {
    distance_km / SPEED_OF_LIGHT_KM_PER_S * 1_000_000.0
}

/// One-way propagation latency of a *fiber route* of physical length
/// `route_km`, in milliseconds — i.e. with the ~2c/3 propagation speed of
/// light in silica applied.
#[inline]
pub fn fiber_latency_ms(route_km: f64) -> f64 {
    c_latency_ms(route_km * FIBER_LATENCY_FACTOR)
}

/// Round-trip time in milliseconds of a one-way path latency.
#[inline]
pub fn rtt_ms(one_way_ms: f64) -> f64 {
    2.0 * one_way_ms
}

/// Stretch of an achieved latency relative to the c-latency of the geodesic
/// distance between the endpoints.
///
/// Returns 1.0 for a zero-length geodesic (co-located endpoints), matching
/// the convention used when aggregating over city pairs.
#[inline]
pub fn stretch(achieved_latency_ms: f64, geodesic_km: f64) -> f64 {
    let ideal = c_latency_ms(geodesic_km);
    if ideal <= 0.0 {
        1.0
    } else {
        achieved_latency_ms / ideal
    }
}

/// Stretch expressed purely in distances: the "equivalent free-space length"
/// of the path divided by the geodesic length. This is the form used in the
/// design optimisation where everything is kept in kilometres.
#[inline]
pub fn distance_stretch(path_equivalent_km: f64, geodesic_km: f64) -> f64 {
    if geodesic_km <= 0.0 {
        1.0
    } else {
        path_equivalent_km / geodesic_km
    }
}

/// Streaming accumulator for the traffic-weighted mean stretch
/// `Σ h_i · s_i / Σ h_i` — the objective the paper's design problem
/// minimises (per-unit traffic mean stretch).
///
/// This is the single shared definition of the weighted average: the
/// slice-based [`weighted_mean_stretch`] below and the matrix sweep in
/// `cisp_core::topology::weighted_mean_stretch` both fold through it, so the
/// "skip non-positive weights, divide weighted sum by total weight"
/// convention lives in exactly one place.
#[derive(Debug, Clone, Copy, Default)]
pub struct StretchAccumulator {
    num: f64,
    den: f64,
}

impl StretchAccumulator {
    /// A fresh accumulator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one `(weight, stretch)` sample; non-positive weights are
    /// ignored.
    #[inline]
    pub fn add(&mut self, weight: f64, stretch: f64) {
        if weight > 0.0 {
            self.num += weight * stretch;
            self.den += weight;
        }
    }

    /// Total accumulated weight.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.den
    }

    /// The weighted mean, or `None` if no positive-weight sample was added.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        if self.den > 0.0 {
            Some(self.num / self.den)
        } else {
            None
        }
    }
}

/// Mean stretch weighted by traffic volume: `Σ h_i · s_i / Σ h_i`.
///
/// Pairs with non-positive weight are ignored; returns `None` if the total
/// weight is zero. Callers that already hold matrices use the flat sweep in
/// `cisp_core::topology::weighted_mean_stretch`, which delegates to the same
/// [`StretchAccumulator`].
pub fn weighted_mean_stretch(pairs: &[(f64, f64)]) -> Option<f64> {
    let mut acc = StretchAccumulator::new();
    for &(weight, stretch) in pairs {
        acc.add(weight, stretch);
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c_latency_of_known_distances() {
        // 299.792458 km in 1 ms.
        assert!((c_latency_ms(299.792458) - 1.0).abs() < 1e-12);
        // NYC-LA ≈ 3936 km → ≈ 13.1 ms one-way.
        let ms = c_latency_ms(3936.0);
        assert!((ms - 13.13).abs() < 0.05, "ms = {ms}");
        // Microseconds variant is 1000× the milliseconds variant.
        assert!((c_latency_us(123.0) - c_latency_ms(123.0) * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn fiber_is_fifty_percent_slower() {
        let d = 1000.0;
        assert!((fiber_latency_ms(d) / c_latency_ms(d) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rtt_doubles() {
        assert_eq!(rtt_ms(7.25), 14.5);
    }

    #[test]
    fn stretch_of_direct_path_is_one() {
        let d = 1234.0;
        assert!((stretch(c_latency_ms(d), d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_of_fiber_path_is_1_5_times_circuitousness() {
        // A fiber route 1.3× longer than the geodesic has stretch 1.95.
        let geo = 1000.0;
        let route = 1300.0;
        let s = stretch(fiber_latency_ms(route), geo);
        assert!((s - 1.95).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn stretch_handles_zero_geodesic() {
        assert_eq!(stretch(5.0, 0.0), 1.0);
        assert_eq!(distance_stretch(5.0, 0.0), 1.0);
    }

    #[test]
    fn weighted_mean_stretch_basic() {
        let pairs = [(1.0, 1.0), (1.0, 2.0)];
        assert!((weighted_mean_stretch(&pairs).unwrap() - 1.5).abs() < 1e-12);

        // Heavier weight pulls the mean.
        let pairs = [(3.0, 1.0), (1.0, 2.0)];
        assert!((weighted_mean_stretch(&pairs).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_stretch_ignores_nonpositive_weights() {
        let pairs = [(0.0, 100.0), (-1.0, 100.0), (2.0, 1.5)];
        assert!((weighted_mean_stretch(&pairs).unwrap() - 1.5).abs() < 1e-12);
        assert!(weighted_mean_stretch(&[(0.0, 1.0)]).is_none());
        assert!(weighted_mean_stretch(&[]).is_none());
    }
}

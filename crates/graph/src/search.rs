//! Reusable single-source shortest-path core over [`CsrGraph`].
//!
//! The lazy-deletion [`BinaryHeap`](std::collections::BinaryHeap) Dijkstras
//! in [`dijkstra`](crate::dijkstra) and [`csr`](crate::csr) allocate fresh
//! `dist`/`prev`/`settled` arrays per source and push a new heap entry on
//! every relaxation. Fine for one-off queries; wasteful for the candidate
//! pool build, which runs one bounded search per site (119 at paper scale)
//! over the same ~12.5k-node tower graph. [`SearchCore`] keeps all scratch
//! alive between runs:
//!
//! * **generation-stamped buffers** — `dist`/`prev`/`settled` validity is a
//!   per-run stamp, so starting a new source is O(1), not O(n) clearing;
//! * **indexed d-ary heap** — a 4-ary heap with a position index and true
//!   decrease-key, so the heap never holds stale entries and each node
//!   occupies at most one slot;
//! * **multi-target early termination** — the search stops as soon as every
//!   requested target is settled, composed with the `max_cost` cap used by
//!   the oracle prune.
//!
//! The settle order is pinned to the lazy-deletion implementations: the next
//! settled node is the smallest `(tentative distance, node index)` pair, and
//! relaxation uses strict `<`, so predecessors are first-writer-wins in CSR
//! slot order. A run of [`SearchCore::search`] therefore produces *bit
//! identical* distances, predecessors, and extracted paths to
//! [`dijkstra::shortest_path_tree`](crate::dijkstra::shortest_path_tree) /
//! [`CsrGraph::shortest_path_tree`] over the same graph — the property the
//! pool-build parity tests pin.
//!
//! Weights are validated finite and non-negative at graph construction
//! ([`CsrGraph::from_edges`], [`Graph::add_edge`](crate::Graph::add_edge)),
//! so the `(dist, node)` comparison below never sees a NaN.

use crate::csr::{CsrGraph, NO_EDGE};

/// Heap arity. Four children per node trades a slightly deeper compare fan
/// for half the tree depth of a binary heap; sift-downs dominate Dijkstra
/// and touch one cache line per level.
const ARITY: usize = 4;

/// A reusable bounded multi-target Dijkstra over [`CsrGraph`].
///
/// One `SearchCore` serves any number of sequential [`search`] runs, over
/// graphs of any (possibly differing) size; buffers grow monotonically and
/// are never cleared between runs. Not `Sync`: use one core per worker
/// thread when fanning out over sources.
///
/// [`search`]: SearchCore::search
#[derive(Debug, Clone, Default)]
pub struct SearchCore {
    /// Current run's generation stamp. Stamps equal to `gen` are live.
    gen: u32,
    /// Tentative/final distance per node (valid when `touched == gen`).
    dist: Vec<f64>,
    /// Predecessor node (valid when `touched == gen`; `NO_EDGE` at source).
    prev_node: Vec<u32>,
    /// Predecessor edge id (same validity as `prev_node`).
    prev_edge: Vec<u32>,
    /// Stamp: node's `dist`/`prev_*` entries belong to the current run.
    touched: Vec<u32>,
    /// Stamp: node settled (distance final) in the current run.
    settled: Vec<u32>,
    /// Stamp: node is a termination target of the current run.
    target: Vec<u32>,
    /// The d-ary heap: node ids ordered by `(dist, node)`.
    heap: Vec<u32>,
    /// Heap slot of each node (valid while touched and not settled).
    pos: Vec<u32>,
    /// Source of the most recent run.
    source: usize,
}

impl SearchCore {
    /// A fresh core with no scratch allocated; buffers size themselves to
    /// the first searched graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow scratch to `n` nodes and open a new generation.
    fn begin(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, 0.0);
            self.prev_node.resize(n, NO_EDGE);
            self.prev_edge.resize(n, NO_EDGE);
            self.touched.resize(n, 0);
            self.settled.resize(n, 0);
            self.target.resize(n, 0);
            self.pos.resize(n, 0);
        }
        if self.gen == u32::MAX {
            // Stamp wrap-around: reset everything once per ~4 billion runs.
            self.touched.fill(0);
            self.settled.fill(0);
            self.target.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.heap.clear();
    }

    /// `(dist, node)` heap order — the exact tie-break of the lazy-deletion
    /// heaps, which is what makes settle order (and therefore first-writer
    /// predecessors) bit-identical to them.
    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let da = self.dist[a as usize];
        let db = self.dist[b as usize];
        da < db || (da == db && a < b)
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let node = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            let p = self.heap[parent];
            if !self.less(node, p) {
                break;
            }
            self.heap[i] = p;
            self.pos[p as usize] = i as u32;
            i = parent;
        }
        self.heap[i] = node;
        self.pos[node as usize] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        let node = self.heap[i];
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            let last = (first + ARITY).min(len);
            let mut best = first;
            for c in first + 1..last {
                if self.less(self.heap[c], self.heap[best]) {
                    best = c;
                }
            }
            let b = self.heap[best];
            if !self.less(b, node) {
                break;
            }
            self.heap[i] = b;
            self.pos[b as usize] = i as u32;
            i = best;
        }
        self.heap[i] = node;
        self.pos[node as usize] = i as u32;
    }

    #[inline]
    fn heap_push(&mut self, node: u32) {
        let i = self.heap.len();
        self.heap.push(node);
        self.pos[node as usize] = i as u32;
        self.sift_up(i);
    }

    /// Remove and return the minimum node. The heap must be non-empty.
    #[inline]
    fn heap_pop(&mut self) -> u32 {
        let root = self.heap[0];
        let last = self.heap.pop().expect("pop from empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        root
    }

    /// Run Dijkstra from `source`, stopping when (whichever comes first):
    ///
    /// * every node in `targets` is settled (`targets` empty ⇒ no target
    ///   stop — run to the cap or exhaustion);
    /// * the smallest tentative distance exceeds `max_cost` (pass
    ///   `f64::INFINITY` for an uncapped run);
    /// * the frontier is exhausted.
    ///
    /// Results are read back through [`dist`](Self::dist) /
    /// [`settled`](Self::settled) / [`node_path_into`](Self::node_path_into)
    /// and stay valid until the next `search` call. Distances of touched but
    /// unsettled nodes are the tentative values at stop time — exactly what
    /// the lazy bounded tree reports, which the oracle-prune stats rely on.
    pub fn search(&mut self, graph: &CsrGraph, source: usize, targets: &[usize], max_cost: f64) {
        let n = graph.node_count();
        assert!(source < n, "source out of range");
        self.begin(n);
        self.source = source;

        let mut remaining = 0usize;
        for &t in targets {
            assert!(t < n, "target out of range");
            if self.target[t] != self.gen {
                self.target[t] = self.gen;
                remaining += 1;
            }
        }
        let stop_on_targets = !targets.is_empty();

        let gen = self.gen;
        self.dist[source] = 0.0;
        self.prev_node[source] = NO_EDGE;
        self.prev_edge[source] = NO_EDGE;
        self.touched[source] = gen;
        self.heap_push(source as u32);

        while let Some(&root) = self.heap.first() {
            let u = root as usize;
            // Identical stop condition to the lazy heap's `cost > max_cost`
            // break: the indexed heap's minimum IS the smallest tentative
            // distance (no stale entries to pop through).
            if self.dist[u] > max_cost {
                break;
            }
            self.heap_pop();
            self.settled[u] = gen;
            if stop_on_targets && self.target[u] == gen {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            let du = self.dist[u];
            for s in graph.slots(u) {
                let v = graph.targets[s] as usize;
                let next = du + graph.weights[s];
                if self.touched[v] != gen {
                    self.dist[v] = next;
                    self.prev_node[v] = root;
                    self.prev_edge[v] = graph.edge_ids[s];
                    self.touched[v] = gen;
                    self.heap_push(v as u32);
                } else if next < self.dist[v] {
                    // Strict `<` and settled nodes never improving keeps
                    // first-writer-wins predecessor ties identical to the
                    // reference implementations. A settled node cannot pass
                    // the strict test (weights are non-negative).
                    debug_assert!(self.settled[v] != gen);
                    self.dist[v] = next;
                    self.prev_node[v] = root;
                    self.prev_edge[v] = graph.edge_ids[s];
                    self.sift_up(self.pos[v] as usize);
                }
            }
        }
    }

    /// Source of the most recent run.
    #[inline]
    pub fn source(&self) -> usize {
        self.source
    }

    /// Distance of `v` in the most recent run: final if settled, tentative
    /// if touched but unsettled, `INFINITY` if never reached.
    #[inline]
    pub fn dist(&self, v: usize) -> f64 {
        if self.touched[v] == self.gen {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// Whether `v` was settled (distance final) in the most recent run.
    #[inline]
    pub fn settled(&self, v: usize) -> bool {
        self.settled[v] == self.gen
    }

    /// Predecessor `(node, edge id)` of `v` on its current best path, or
    /// `None` for the source and unreached nodes.
    #[inline]
    pub fn prev(&self, v: usize) -> Option<(usize, u32)> {
        if self.touched[v] != self.gen || self.prev_node[v] == NO_EDGE {
            return None;
        }
        Some((self.prev_node[v] as usize, self.prev_edge[v]))
    }

    /// Write the node path source → `target` (inclusive) into `out`
    /// (cleared first); returns `false` (clearing `out`) when `target` was
    /// not reached. Identical path to
    /// [`CsrTree::node_path_to`](crate::csr::CsrTree::node_path_to).
    pub fn node_path_into(&self, target: usize, out: &mut Vec<usize>) -> bool {
        out.clear();
        if self.touched[target] != self.gen {
            return false;
        }
        let mut cur = target;
        out.push(cur);
        while cur != self.source {
            if self.prev_node[cur] == NO_EDGE {
                out.clear();
                return false;
            }
            cur = self.prev_node[cur] as usize;
            out.push(cur);
        }
        out.reverse();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;
    use crate::graph::Graph;

    /// SplitMix64 for deterministic random graphs without a PRNG crate.
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(seed: u64, stream: u64) -> f64 {
        (mix(seed ^ mix(stream)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A connected-ish random graph: a ring plus random chords, with many
    /// duplicated weights so tie-breaking actually gets exercised.
    fn random_graph(n: usize, seed: u64) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            let w = (1.0 + (unit(seed, i as u64) * 4.0).floor()) * 0.5;
            g.add_undirected_edge(i, (i + 1) % n, w);
        }
        for k in 0..(2 * n) as u64 {
            let a = (unit(seed, 1000 + 3 * k) * n as f64) as usize % n;
            let b = (unit(seed, 1001 + 3 * k) * n as f64) as usize % n;
            if a != b {
                let w = (1.0 + (unit(seed, 1002 + 3 * k) * 4.0).floor()) * 0.5;
                g.add_undirected_edge(a, b, w);
            }
        }
        g
    }

    #[test]
    fn full_run_matches_lazy_dijkstra_bitwise() {
        for seed in 0..20u64 {
            let n = 30 + (seed as usize % 21);
            let g = random_graph(n, seed);
            let csr = CsrGraph::from_graph(&g);
            let mut core = SearchCore::new();
            for src in [0, n / 2, n - 1] {
                let reference = dijkstra::shortest_path_tree(&g, src, None);
                core.search(&csr, src, &[], f64::INFINITY);
                for v in 0..n {
                    assert!(
                        core.dist(v) == reference.dist[v],
                        "dist mismatch seed {seed} src {src} v {v}"
                    );
                    let ref_prev = reference.prev[v];
                    assert_eq!(
                        core.prev(v).map(|(p, _)| p),
                        ref_prev,
                        "prev mismatch seed {seed} src {src} v {v}"
                    );
                }
                let mut buf = Vec::new();
                for v in 0..n {
                    let got = core.node_path_into(v, &mut buf).then(|| buf.clone());
                    let want = reference.path_to(v).map(|p| p.nodes);
                    assert_eq!(got, want, "path mismatch seed {seed} src {src} v {v}");
                }
            }
        }
    }

    #[test]
    fn capped_run_matches_lazy_bounded_tree_bitwise() {
        for seed in 0..20u64 {
            let n = 40;
            let g = random_graph(n, seed);
            let csr = CsrGraph::from_graph(&g);
            let mut core = SearchCore::new();
            for cap in [0.0, 1.5, 3.0, 7.5] {
                let reference = dijkstra::shortest_path_tree_within(&g, 0, cap);
                core.search(&csr, 0, &[], cap);
                for v in 0..n {
                    // Bounded trees report tentative distances for touched
                    // but unsettled frontier nodes; those must match too
                    // (the prune stats classify on them).
                    assert!(
                        core.dist(v) == reference.dist[v]
                            || (core.dist(v).is_infinite() && reference.dist[v].is_infinite()),
                        "capped dist mismatch seed {seed} cap {cap} v {v}: {} vs {}",
                        core.dist(v),
                        reference.dist[v]
                    );
                }
            }
        }
    }

    #[test]
    fn multi_target_stop_settles_all_targets_exactly() {
        for seed in 0..20u64 {
            let n = 50;
            let g = random_graph(n, seed);
            let csr = CsrGraph::from_graph(&g);
            let reference = dijkstra::shortest_path_tree(&g, 3, None);
            let targets = [7usize, 19, 42, 42, 3]; // duplicates + source on purpose
            let mut core = SearchCore::new();
            core.search(&csr, 3, &targets, f64::INFINITY);
            let mut buf = Vec::new();
            for &t in &targets {
                assert!(core.settled(t), "target {t} not settled (seed {seed})");
                assert!(core.dist(t) == reference.dist[t]);
                let got = core.node_path_into(t, &mut buf).then(|| buf.clone());
                let want = reference.path_to(t).map(|p| p.nodes);
                assert_eq!(got, want, "target path mismatch seed {seed} t {t}");
            }
        }
    }

    #[test]
    fn early_stop_actually_stops_early() {
        // Long path graph: targeting a nearby node must not settle the far
        // end.
        let mut g = Graph::new(100);
        for i in 0..99 {
            g.add_undirected_edge(i, i + 1, 1.0);
        }
        let csr = CsrGraph::from_graph(&g);
        let mut core = SearchCore::new();
        core.search(&csr, 0, &[5], f64::INFINITY);
        assert!(core.settled(5));
        assert!(!core.settled(99), "run should have terminated early");
        assert!(core.dist(99).is_infinite());
    }

    #[test]
    fn core_reuse_across_runs_and_graph_sizes() {
        let small = random_graph(10, 1);
        let big = random_graph(60, 2);
        let csr_small = CsrGraph::from_graph(&small);
        let csr_big = CsrGraph::from_graph(&big);
        let mut core = SearchCore::new();
        for round in 0..50 {
            let (g, csr, n) = if round % 2 == 0 {
                (&small, &csr_small, 10)
            } else {
                (&big, &csr_big, 60)
            };
            let src = round % n;
            let reference = dijkstra::shortest_path_tree(g, src, None);
            core.search(csr, src, &[], f64::INFINITY);
            for v in 0..n {
                assert!(core.dist(v) == reference.dist[v], "round {round} v {v}");
            }
        }
    }

    #[test]
    fn unreachable_targets_exhaust_gracefully() {
        let mut g = Graph::new(6);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(3, 4, 1.0); // disconnected component
        let csr = CsrGraph::from_graph(&g);
        let mut core = SearchCore::new();
        core.search(&csr, 0, &[2, 4], f64::INFINITY);
        assert!(core.settled(2));
        assert!(!core.settled(4));
        assert!(core.dist(4).is_infinite());
        let mut buf = vec![99];
        assert!(!core.node_path_into(4, &mut buf));
        assert!(buf.is_empty(), "failed extraction clears the buffer");
    }
}

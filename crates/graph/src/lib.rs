//! Graph data structures and path algorithms for the cISP designer.
//!
//! The network-design pipeline builds several large sparse graphs: the
//! tower-to-tower hop graph (hundreds of thousands of edges), the city-level
//! candidate-link graph used by the topology optimiser, and the designed
//! topology used for routing and failure analysis. This crate provides the
//! shared machinery:
//!
//! * [`Graph`] — a compact adjacency-list weighted graph,
//! * [`dijkstra`] — single-source shortest paths with path extraction,
//! * [`kshortest`] — Yen's algorithm for k shortest loopless paths,
//! * [`disjoint`] — iterative node-disjoint shortest paths (the procedure
//!   behind Fig. 4(b): find a path, delete its interior towers, repeat),
//! * [`csr`] — [`CsrGraph`], the flat compressed-sparse-row adjacency the
//!   packet simulator routes over, with a predecessor-tracking Dijkstra
//!   whose trees yield edge-id routes directly,
//! * [`search`] — [`SearchCore`], a reusable bounded multi-target Dijkstra
//!   over [`CsrGraph`] (generation-stamped scratch, indexed d-ary heap with
//!   decrease-key) whose settle order is bit-identical to the lazy-deletion
//!   implementations; the candidate pool build's per-site search engine,
//! * [`paths`] — [`PathStore`], arena-backed storage for many short paths
//!   (offset + link-id arrays; a whole routing table in two allocations),
//! * [`partition`] — balanced link partitions over path sets and their
//!   conservative propagation-delay lookahead
//!   ([`partition_path_links`] / [`partition_lookahead`]), the planning side
//!   of the packet engine's time-windowed execution,
//! * [`matrix`] — the flat row-major [`DistMatrix`] the design engine's
//!   dense all-pairs sweeps run on, with the shared unordered-pair iterator,
//!   the exact one-edge improvement kernels ([`improve_with_link`] and the
//!   delta-tracking [`improve_with_link_tracked`] that reports an
//!   [`ImprovedPairs`] set for incremental rescoring) and the batched
//!   multi-link commit kernel ([`improve_with_links`]),
//! * [`triangle`] — [`UpperTriangleMatrix`], symmetric upper-triangle-only
//!   storage behind the same entry/pair API (half the memory traffic),
//! * [`bitset`] — O(1) membership over small index universes (disabled-link
//!   sets in the failure analysis, improved-pair sets in the incremental
//!   scorer).
//!
//! All algorithms are deterministic: ties are broken by node index.
//!
//! # Example
//!
//! ```
//! use cisp_graph::{Graph, dijkstra};
//!
//! let mut g = Graph::new(4);
//! g.add_undirected_edge(0, 1, 1.0);
//! g.add_undirected_edge(1, 2, 1.0);
//! g.add_undirected_edge(0, 2, 5.0);
//! g.add_undirected_edge(2, 3, 1.0);
//!
//! let sp = dijkstra::shortest_path(&g, 0, 3).unwrap();
//! assert_eq!(sp.nodes, vec![0, 1, 2, 3]);
//! assert_eq!(sp.cost, 3.0);
//! ```

pub mod bitset;
pub mod csr;
pub mod dijkstra;
pub mod disjoint;
pub mod graph;
pub mod kshortest;
pub mod matrix;
pub mod partition;
pub mod paths;
pub mod search;
pub mod triangle;

pub use bitset::BitSet;
pub use csr::{CsrGraph, CsrTree};
pub use dijkstra::{shortest_path, shortest_path_costs, Path};
pub use graph::Graph;
pub use matrix::{
    improve_with_link, improve_with_link_tracked, improve_with_links, pair_count, pair_index,
    pair_indices, DistMatrix, ImprovedPairs,
};
pub use partition::{partition_lookahead, partition_path_links};
pub use paths::PathStore;
pub use search::SearchCore;
pub use triangle::UpperTriangleMatrix;

//! The flat, row-major symmetric distance/weight matrix the design engine
//! runs on.
//!
//! The designer's hot loops — candidate scoring, the exact one-edge
//! distance-matrix update, weather-failure re-evaluation — are all dense
//! all-pairs sweeps. Storing an `n × n` matrix as `Vec<Vec<f64>>` costs one
//! pointer chase and one bounds check per row on every access and scatters
//! rows across the heap; [`DistMatrix`] stores the same data as a single
//! contiguous `Vec<f64>` of length `n²`, so row access is a slice view, the
//! whole matrix prefetches linearly, and a scratch matrix can be refilled
//! with a single `memcpy` ([`DistMatrix::copy_from`]) instead of `n`
//! allocations.
//!
//! `matrix[i][j]` indexing keeps working: `Index<usize>` returns the row as
//! a `&[f64]` slice. Unordered-pair sweeps use [`DistMatrix::upper_triangle`]
//! (or [`pair_indices`]) instead of hand-rolled nested loops.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense square matrix of `f64` in one contiguous row-major allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistMatrix {
    /// An `n × n` matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self::filled(n, 0.0)
    }

    /// Build from a generator function over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Build from a nested row-of-rows matrix; every row must have length
    /// `n`. This is the bridge from hand-written test fixtures and external
    /// data to the flat engine.
    pub fn from_nested(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            assert_eq!(row.len(), n, "matrix must be square");
            data.extend_from_slice(&row);
        }
        Self { n, data }
    }

    /// Build from a flat row-major buffer of length `n²`.
    pub fn from_flat(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "flat buffer must hold n² entries");
        Self { n, data }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set the entry at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
    }

    /// Set both `(i, j)` and `(j, i)`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, value: f64) {
        self.set(i, j, value);
        self.set(j, i, value);
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// The whole matrix as one row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole matrix as one mutable row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Overwrite this matrix with `other`'s contents without reallocating.
    /// This is the copy-on-write primitive the designer's scratch buffers
    /// use: one `memcpy` instead of `n` row clones.
    pub fn copy_from(&mut self, other: &DistMatrix) {
        if self.n == other.n {
            self.data.copy_from_slice(&other.data);
        } else {
            self.n = other.n;
            self.data.clear();
            self.data.extend_from_slice(&other.data);
        }
    }

    /// Iterate the strict upper triangle (`i < j`) in row-major order,
    /// yielding `(i, j, value)`. This is the canonical unordered-pair sweep
    /// for traffic-weighted objectives.
    pub fn upper_triangle(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        pair_indices(self.n).map(move |(i, j)| (i, j, self.get(i, j)))
    }

    /// The top-left `m × m` principal submatrix (used to restrict a design
    /// input to a site-count prefix, e.g. the Fig. 2 scaling sweep).
    pub fn truncated(&self, m: usize) -> DistMatrix {
        assert!(m <= self.n, "cannot truncate {n} to {m}", n = self.n);
        DistMatrix::from_fn(m, |i, j| self.get(i, j))
    }

    /// Convert back to a nested row-of-rows matrix (boundary/debug use).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|i| self.row(i).to_vec()).collect()
    }

    /// Map every entry through `f`, in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum entry (0.0 for an empty matrix; NaN entries are ignored).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Sum of the strict upper triangle — the total weight of an unordered
    /// pair matrix.
    pub fn upper_triangle_sum(&self) -> f64 {
        self.upper_triangle().map(|(_, _, v)| v).sum()
    }

    /// `true` if every entry equals its transpose partner within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        pair_indices(self.n).all(|(i, j)| (self.get(i, j) - self.get(j, i)).abs() <= tol)
    }
}

impl From<Vec<Vec<f64>>> for DistMatrix {
    fn from(rows: Vec<Vec<f64>>) -> Self {
        Self::from_nested(rows)
    }
}

impl Index<usize> for DistMatrix {
    type Output = [f64];
    /// `matrix[i]` is row `i`, so `matrix[i][j]` keeps working on the flat
    /// representation.
    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl IndexMut<usize> for DistMatrix {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }
}

/// Iterate all unordered pair indices `(i, j)` with `i < j` over `0..n`,
/// row-major. Shared by every traffic-pair sweep in the workspace.
pub fn pair_indices(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_nested_round_trips() {
        let nested = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 3.0, 0.0],
        ];
        let m = DistMatrix::from_nested(nested.clone());
        assert_eq!(m.n(), 3);
        assert_eq!(m.to_nested(), nested);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m[1][2], 3.0);
    }

    #[test]
    fn index_mut_writes_through() {
        let mut m = DistMatrix::zeros(3);
        m[0][1] = 5.0;
        m.set_sym(1, 2, 7.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(2, 1), 7.0);
        assert_eq!(m.get(1, 2), 7.0);
    }

    #[test]
    fn upper_triangle_visits_each_unordered_pair_once() {
        let m = DistMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let pairs: Vec<(usize, usize, f64)> = m.upper_triangle().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 1, 1.0));
        assert_eq!(pairs[5], (2, 3, 23.0));
        assert_eq!(pair_indices(4).count(), 6);
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let src = DistMatrix::from_fn(5, |i, j| (i + j) as f64);
        let mut dst = DistMatrix::zeros(5);
        let ptr_before = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr_before, "no reallocation");
        // Size-changing copy still works.
        let mut small = DistMatrix::zeros(2);
        small.copy_from(&src);
        assert_eq!(small, src);
    }

    #[test]
    fn sums_and_symmetry() {
        let m = DistMatrix::from_nested(vec![vec![0.0, 2.0], vec![2.0, 0.0]]);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.upper_triangle_sum(), 2.0);
        assert_eq!(m.max_value(), 2.0);
        let asym = DistMatrix::from_nested(vec![vec![0.0, 2.0], vec![1.0, 0.0]]);
        assert!(!asym.is_symmetric(0.5));
    }

    #[test]
    #[should_panic]
    fn ragged_nested_matrix_panics() {
        DistMatrix::from_nested(vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic]
    fn bad_flat_length_panics() {
        DistMatrix::from_flat(3, vec![0.0; 8]);
    }
}

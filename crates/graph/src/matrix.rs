//! The flat, row-major symmetric distance/weight matrix the design engine
//! runs on.
//!
//! The designer's hot loops — candidate scoring, the exact one-edge
//! distance-matrix update, weather-failure re-evaluation — are all dense
//! all-pairs sweeps. Storing an `n × n` matrix as `Vec<Vec<f64>>` costs one
//! pointer chase and one bounds check per row on every access and scatters
//! rows across the heap; [`DistMatrix`] stores the same data as a single
//! contiguous `Vec<f64>` of length `n²`, so row access is a slice view, the
//! whole matrix prefetches linearly, and a scratch matrix can be refilled
//! with a single `memcpy` ([`DistMatrix::copy_from`]) instead of `n`
//! allocations.
//!
//! `matrix[i][j]` indexing keeps working: `Index<usize>` returns the row as
//! a `&[f64]` slice. Unordered-pair sweeps use [`DistMatrix::upper_triangle`]
//! (or [`pair_indices`]) instead of hand-rolled nested loops.

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense square matrix of `f64` in one contiguous row-major allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistMatrix {
    /// An `n × n` matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self::filled(n, 0.0)
    }

    /// Build from a generator function over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Build from a nested row-of-rows matrix; every row must have length
    /// `n`. This is the bridge from hand-written test fixtures and external
    /// data to the flat engine.
    pub fn from_nested(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in rows {
            assert_eq!(row.len(), n, "matrix must be square");
            data.extend_from_slice(&row);
        }
        Self { n, data }
    }

    /// Build from a flat row-major buffer of length `n²`.
    pub fn from_flat(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "flat buffer must hold n² entries");
        Self { n, data }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set the entry at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
    }

    /// Set both `(i, j)` and `(j, i)`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, value: f64) {
        self.set(i, j, value);
        self.set(j, i, value);
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Columns `lo..hi` of row `i` as a contiguous slice. This is the blocked
    /// access pattern of the vectorised scoring kernel: per-row nonzero-weight
    /// spans index straight into the flat buffer with no per-element bounds
    /// arithmetic.
    #[inline]
    pub fn row_segment(&self, i: usize, lo: usize, hi: usize) -> &[f64] {
        debug_assert!(lo <= hi && hi <= self.n);
        &self.data[i * self.n + lo..i * self.n + hi]
    }

    /// The whole matrix as one row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole matrix as one mutable row-major slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Overwrite this matrix with `other`'s contents without reallocating.
    /// This is the copy-on-write primitive the designer's scratch buffers
    /// use: one `memcpy` instead of `n` row clones.
    pub fn copy_from(&mut self, other: &DistMatrix) {
        if self.n == other.n {
            self.data.copy_from_slice(&other.data);
        } else {
            self.n = other.n;
            self.data.clear();
            self.data.extend_from_slice(&other.data);
        }
    }

    /// Iterate the strict upper triangle (`i < j`) in row-major order,
    /// yielding `(i, j, value)`. This is the canonical unordered-pair sweep
    /// for traffic-weighted objectives.
    pub fn upper_triangle(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        pair_indices(self.n).map(move |(i, j)| (i, j, self.get(i, j)))
    }

    /// The top-left `m × m` principal submatrix (used to restrict a design
    /// input to a site-count prefix, e.g. the Fig. 2 scaling sweep).
    pub fn truncated(&self, m: usize) -> DistMatrix {
        assert!(m <= self.n, "cannot truncate {n} to {m}", n = self.n);
        DistMatrix::from_fn(m, |i, j| self.get(i, j))
    }

    /// Convert back to a nested row-of-rows matrix (boundary/debug use).
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|i| self.row(i).to_vec()).collect()
    }

    /// Map every entry through `f`, in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum entry (0.0 for an empty matrix; NaN entries are ignored).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0_f64, f64::max)
    }

    /// Sum of the strict upper triangle — the total weight of an unordered
    /// pair matrix.
    pub fn upper_triangle_sum(&self) -> f64 {
        self.upper_triangle().map(|(_, _, v)| v).sum()
    }

    /// `true` if every entry equals its transpose partner within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        pair_indices(self.n).all(|(i, j)| (self.get(i, j) - self.get(j, i)).abs() <= tol)
    }

    /// `true` if the matrix satisfies the triangle inequality within a
    /// relative tolerance: for every `(s, t)` and every via-vertex `v` with
    /// finite legs, `d(s,t) <= (d(s,v) + d(v,t)) * (1 + rel_tol)`.
    ///
    /// An infinite `d(s,t)` with both legs finite counts as a violation (a
    /// metric closure would have closed it), so callers that gate pruning
    /// bounds on this check stay conservative on partially-connected inputs.
    /// O(n³), intended to run once per design run, not per round.
    pub fn is_metric_within(&self, rel_tol: f64) -> bool {
        for v in 0..self.n {
            let row_v = self.row(v);
            for s in 0..self.n {
                let d_sv = self.get(s, v);
                if !d_sv.is_finite() {
                    continue;
                }
                let row_s = self.row(s);
                for t in 0..self.n {
                    let d_vt = row_v[t];
                    if d_vt.is_finite() && row_s[t] > (d_sv + d_vt) * (1.0 + rel_tol) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl From<Vec<Vec<f64>>> for DistMatrix {
    fn from(rows: Vec<Vec<f64>>) -> Self {
        Self::from_nested(rows)
    }
}

impl Index<usize> for DistMatrix {
    type Output = [f64];
    /// `matrix[i]` is row `i`, so `matrix[i][j]` keeps working on the flat
    /// representation.
    #[inline]
    fn index(&self, i: usize) -> &[f64] {
        self.row(i)
    }
}

impl IndexMut<usize> for DistMatrix {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }
}

/// Iterate all unordered pair indices `(i, j)` with `i < j` over `0..n`,
/// row-major. Shared by every traffic-pair sweep in the workspace.
pub fn pair_indices(n: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
}

/// Number of unordered pairs over `0..n`.
#[inline]
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Canonical index of the unordered pair `(i, j)` (`i < j`) in the strict
/// upper triangle enumerated row-major — i.e. the position [`pair_indices`]
/// would yield the pair at. This is the index space [`ImprovedPairs`] bitsets
/// are defined over.
#[inline]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n, "pair ({i}, {j}) out of range for n = {n}");
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// The effect of one tracked one-edge improvement: which unordered pairs got
/// a shorter distance, what they measured before, and which vertices are
/// incident to at least one improved pair.
///
/// This is the delta the incremental design engine consumes: a candidate
/// link's cached score can only have been invalidated if the accepted link
/// improved a pair incident to one of the candidate's endpoints (the
/// [`ImprovedPairs::touches`] test); every other cached score is repaired
/// with an O(|improved|) sweep over [`ImprovedPairs::pairs`].
#[derive(Debug, Clone)]
pub struct ImprovedPairs {
    n: usize,
    /// `(i, j, old_distance)` for every improved pair, `i < j`, in the order
    /// the improvements were discovered. The new distance is read from the
    /// updated matrix.
    pairs: Vec<(u32, u32, f64)>,
    /// Membership bitset over [`pair_index`]-indexed unordered pairs.
    pair_set: BitSet,
    /// Vertices incident to at least one improved pair.
    touched: BitSet,
}

impl ImprovedPairs {
    /// An empty delta over an `n`-vertex matrix.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            pairs: Vec::new(),
            pair_set: BitSet::new(pair_count(n)),
            touched: BitSet::new(n),
        }
    }

    /// Reset for reuse over an `n`-vertex matrix (keeps allocations when the
    /// size is unchanged).
    pub fn reset(&mut self, n: usize) {
        if self.n != n {
            *self = Self::new(n);
        } else {
            self.pairs.clear();
            self.pair_set.clear();
            self.touched.clear();
        }
    }

    /// Record an improvement of the unordered pair `(i, j)` whose previous
    /// distance was `old`. Deduplicates: only the first report of a pair is
    /// kept (its `old` is the pre-update distance).
    #[inline]
    pub fn record(&mut self, i: usize, j: usize, old: f64) {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let p = pair_index(self.n, a, b);
        if !self.pair_set.contains(p) {
            self.pair_set.insert(p);
            self.touched.insert(a);
            self.touched.insert(b);
            self.pairs.push((a as u32, b as u32, old));
        }
    }

    /// Matrix side length this delta is defined over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The improved pairs as `(i, j, old_distance)` with `i < j`.
    pub fn pairs(&self) -> &[(u32, u32, f64)] {
        &self.pairs
    }

    /// The improved pairs as a bitset over [`pair_index`] indices.
    pub fn pair_set(&self) -> &BitSet {
        &self.pair_set
    }

    /// Whether the unordered pair `(i, j)` improved.
    pub fn contains_pair(&self, i: usize, j: usize) -> bool {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a != b && self.pair_set.contains(pair_index(self.n, a, b))
    }

    /// Whether any improved pair is incident to vertex `v`. Cached candidate
    /// scores for links with an untouched endpoint pair survive exactly.
    #[inline]
    pub fn touches(&self, v: usize) -> bool {
        self.touched.contains(v)
    }

    /// Number of improved (unordered) pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing improved.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Apply the exact one-edge improvement to a metric-closed symmetric distance
/// matrix: `D'[s][t] = min(D[s][t], D[s][i] + length + D[j][t],
/// D[s][j] + length + D[i][t])`.
///
/// `matrix` must be symmetric and satisfy the triangle inequality (the fiber
/// matrix and every matrix produced by repeated application of this function
/// do); under that precondition the single sweep below is exact — a new edge
/// can only reroute a pair through itself once. Returns the number of
/// (ordered) entries whose distance improved.
pub fn improve_with_link(matrix: &mut DistMatrix, i: usize, j: usize, length: f64) -> usize {
    let n = matrix.n();
    assert!(i < n && j < n && i != j);
    assert!(length >= 0.0);
    let mut improved = 0;
    let data = matrix.as_mut_slice();
    let (row_i, row_j) = (i * n, j * n);
    for s in 0..n {
        // Pre-read column entries to avoid aliasing issues.
        let d_si = data[s * n + i];
        let d_sj = data[s * n + j];
        let row_s = s * n;
        for t in 0..n {
            let via_ij = d_si + length + data[row_j + t];
            let via_ji = d_sj + length + data[row_i + t];
            let best = via_ij.min(via_ji);
            if best < data[row_s + t] {
                data[row_s + t] = best;
                improved += 1;
            }
        }
    }
    improved
}

/// [`improve_with_link`] with delta tracking: identical arithmetic, identical
/// traversal order (so the updated matrix is bit-identical to the untracked
/// kernel's), plus a record of every unordered pair that improved into `out`.
/// `out` is reset first, so one buffer can be reused across calls.
pub fn improve_with_link_tracked(
    matrix: &mut DistMatrix,
    i: usize,
    j: usize,
    length: f64,
    out: &mut ImprovedPairs,
) -> usize {
    let n = matrix.n();
    assert!(i < n && j < n && i != j);
    assert!(length >= 0.0);
    out.reset(n);
    let mut improved = 0;
    let data = matrix.as_mut_slice();
    let (row_i, row_j) = (i * n, j * n);
    for s in 0..n {
        let d_si = data[s * n + i];
        let d_sj = data[s * n + j];
        let row_s = s * n;
        for t in 0..n {
            let via_ij = d_si + length + data[row_j + t];
            let via_ji = d_sj + length + data[row_i + t];
            let best = via_ij.min(via_ji);
            let cur = data[row_s + t];
            if best < cur {
                data[row_s + t] = best;
                improved += 1;
                if s != t {
                    out.record(s, t, cur);
                }
            }
        }
    }
    improved
}

/// Shared preamble of the batched multi-link improvement kernels: the portal
/// set (the new links' endpoints), the exact all-pairs closure *between*
/// portals over "old matrix ∪ new links", and a pre-update snapshot of the
/// portal rows. Both the full-matrix and the upper-triangle batch kernels
/// consume this, which is what keeps their arithmetic bit-identical.
pub(crate) struct PortalClosure {
    /// Sorted, deduplicated endpoint vertices of the new links.
    pub portals: Vec<usize>,
    /// `p × p` portal-to-portal closure distances (row-major).
    pub a: Vec<f64>,
    /// `p × n` pre-update portal rows of the matrix (row-major, one row per
    /// portal in `portals` order).
    pub snap: Vec<f64>,
}

pub(crate) fn portal_closure(
    n: usize,
    links: &[(usize, usize, f64)],
    get: impl Fn(usize, usize) -> f64,
) -> PortalClosure {
    let mut portals: Vec<usize> = links.iter().flat_map(|&(i, j, _)| [i, j]).collect();
    portals.sort_unstable();
    portals.dedup();
    let p = portals.len();
    let mut portal_of = vec![usize::MAX; n];
    for (k, &u) in portals.iter().enumerate() {
        portal_of[u] = k;
    }

    // Portal-to-portal distances: the old closure restricted to portals,
    // improved by the new links, then re-closed with Floyd–Warshall over the
    // (tiny) portal set. The old matrix is metric-closed, so paths through
    // non-portal vertices are already inside its entries and closing over
    // portals alone is exact.
    let mut a = vec![0.0; p * p];
    for (ki, &u) in portals.iter().enumerate() {
        for (kj, &v) in portals.iter().enumerate() {
            a[ki * p + kj] = get(u, v);
        }
    }
    for &(i, j, m) in links {
        let (ki, kj) = (portal_of[i], portal_of[j]);
        if m < a[ki * p + kj] {
            a[ki * p + kj] = m;
            a[kj * p + ki] = m;
        }
    }
    for k in 0..p {
        for x in 0..p {
            let d_xk = a[x * p + k];
            for y in 0..p {
                let via = d_xk + a[k * p + y];
                if via < a[x * p + y] {
                    a[x * p + y] = via;
                }
            }
        }
    }

    let mut snap = Vec::with_capacity(p * n);
    for &u in &portals {
        for t in 0..n {
            snap.push(get(u, t));
        }
    }
    PortalClosure { portals, a, snap }
}

/// Apply the exact improvement of a whole *batch* of new edges to a
/// metric-closed symmetric distance matrix in one pass: afterwards
/// `D'[s][t]` is the shortest distance over any mix of old paths and new
/// links — identical (up to float summation order) to applying
/// [`improve_with_link`] once per link sequentially.
///
/// Instead of `k` full matrix sweeps, the batch kernel closes the new links
/// over their endpoint set (the *portals*, `p ≤ 2k` of them) and then makes
/// a single sweep: any path through new links enters the portal set at a
/// first portal and leaves it at a last portal, so
/// `D'[s][t] = min(D[s][t], min_{u,v} D[s][v] + A[v][u] + D[u][t])` with `A`
/// the portal closure — one matrix pass of memory traffic regardless of `k`.
/// The result is written symmetrically (each unordered pair computed once
/// and mirrored). Returns the number of *ordered* entries improved, matching
/// [`improve_with_link`]'s convention.
///
/// This is the multi-link commit primitive behind weather rebuilds, which
/// replay every surviving link onto the fiber matrix per failure set.
pub fn improve_with_links(matrix: &mut DistMatrix, links: &[(usize, usize, f64)]) -> usize {
    let n = matrix.n();
    for &(i, j, m) in links {
        assert!(i < n && j < n && i != j);
        assert!(m >= 0.0);
    }
    match links.len() {
        0 => return 0,
        1 => return improve_with_link(matrix, links[0].0, links[0].1, links[0].2),
        _ => {}
    }
    let pc = portal_closure(n, links, |i, j| matrix.get(i, j));
    // Each unordered pair visited once and mirror-written, so the count is
    // doubled to the ordered-entry convention.
    2 * batch_sweep(matrix, n, &pc)
}

/// Storage-agnostic pair access for [`batch_sweep`]: one implementation of
/// the batched sweep's arithmetic serves both the full and the triangular
/// storage, making their bit-identity true by construction.
pub(crate) trait BatchTarget {
    fn pair_get(&self, i: usize, j: usize) -> f64;
    /// Store `v` for the unordered pair (both orientations where the storage
    /// distinguishes them).
    fn pair_set(&mut self, i: usize, j: usize, v: f64);
}

impl BatchTarget for DistMatrix {
    #[inline]
    fn pair_get(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
    #[inline]
    fn pair_set(&mut self, i: usize, j: usize, v: f64) {
        self.set_sym(i, j, v);
    }
}

/// The batched portal sweep shared by [`improve_with_links`] and
/// `UpperTriangleMatrix::improve_with_links`: every unordered pair visited
/// once, improvements written through [`BatchTarget::pair_set`]. Returns the
/// number of unordered pairs improved.
pub(crate) fn batch_sweep<M: BatchTarget>(matrix: &mut M, n: usize, pc: &PortalClosure) -> usize {
    let p = pc.portals.len();
    let mut e = vec![0.0; p];
    let mut improved = 0;
    for s in 0..n {
        // e[u] = shortest s → portal-u distance over old paths + new links,
        // accumulated row-of-A-major so both arrays stream contiguously.
        e.fill(f64::INFINITY);
        for kv in 0..p {
            let d_sv = pc.snap[kv * n + s];
            for (e_u, &a_vu) in e.iter_mut().zip(&pc.a[kv * p..kv * p + p]) {
                let c = d_sv + a_vu;
                if c < *e_u {
                    *e_u = c;
                }
            }
        }
        for t in (s + 1)..n {
            let mut via = f64::INFINITY;
            for (&e_u, snap_row) in e.iter().zip(pc.snap.chunks_exact(n)) {
                let c = e_u + snap_row[t];
                if c < via {
                    via = c;
                }
            }
            if via < matrix.pair_get(s, t) {
                matrix.pair_set(s, t, via);
                improved += 1;
            }
        }
    }
    improved
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_nested_round_trips() {
        let nested = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 3.0],
            vec![2.0, 3.0, 0.0],
        ];
        let m = DistMatrix::from_nested(nested.clone());
        assert_eq!(m.n(), 3);
        assert_eq!(m.to_nested(), nested);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m[1][2], 3.0);
    }

    #[test]
    fn index_mut_writes_through() {
        let mut m = DistMatrix::zeros(3);
        m[0][1] = 5.0;
        m.set_sym(1, 2, 7.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(2, 1), 7.0);
        assert_eq!(m.get(1, 2), 7.0);
    }

    #[test]
    fn upper_triangle_visits_each_unordered_pair_once() {
        let m = DistMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        let pairs: Vec<(usize, usize, f64)> = m.upper_triangle().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0], (0, 1, 1.0));
        assert_eq!(pairs[5], (2, 3, 23.0));
        assert_eq!(pair_indices(4).count(), 6);
    }

    #[test]
    fn row_segment_slices_the_flat_buffer() {
        let m = DistMatrix::from_fn(4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.row_segment(2, 1, 3), &[21.0, 22.0]);
        assert_eq!(m.row_segment(0, 0, 4), m.row(0));
        assert!(m.row_segment(3, 2, 2).is_empty());
    }

    #[test]
    fn metric_check_accepts_closures_and_rejects_shortcut_violations() {
        // A shortest-path closure over a line graph is metric.
        let line = DistMatrix::from_fn(5, |i, j| (i as f64 - j as f64).abs());
        assert!(line.is_metric_within(1e-9));
        // Scaling preserves metricity.
        let mut scaled = line.clone();
        scaled.map_in_place(|v| v * 2.0);
        assert!(scaled.is_metric_within(1e-9));
        // Direct distance longer than a two-leg detour is a violation.
        let mut broken = line.clone();
        broken.set_sym(0, 4, 100.0);
        assert!(!broken.is_metric_within(1e-9));
        // An infinite pair with finite legs counts as a violation…
        let mut open = line.clone();
        open.set_sym(0, 4, f64::INFINITY);
        assert!(!open.is_metric_within(1e-9));
        // …but a fully disconnected vertex (infinite legs) does not.
        let mut island = DistMatrix::filled(3, f64::INFINITY);
        for i in 0..3 {
            island.set(i, i, 0.0);
        }
        island.set_sym(0, 1, 1.0);
        assert!(island.is_metric_within(1e-9));
        // Tolerance absorbs ulp-level violations.
        let mut ulp = line;
        ulp.set_sym(0, 4, 4.0 + 1e-12);
        assert!(ulp.is_metric_within(1e-9));
        assert!(!ulp.is_metric_within(0.0));
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let src = DistMatrix::from_fn(5, |i, j| (i + j) as f64);
        let mut dst = DistMatrix::zeros(5);
        let ptr_before = dst.as_slice().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.as_slice().as_ptr(), ptr_before, "no reallocation");
        // Size-changing copy still works.
        let mut small = DistMatrix::zeros(2);
        small.copy_from(&src);
        assert_eq!(small, src);
    }

    #[test]
    fn sums_and_symmetry() {
        let m = DistMatrix::from_nested(vec![vec![0.0, 2.0], vec![2.0, 0.0]]);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m.upper_triangle_sum(), 2.0);
        assert_eq!(m.max_value(), 2.0);
        let asym = DistMatrix::from_nested(vec![vec![0.0, 2.0], vec![1.0, 0.0]]);
        assert!(!asym.is_symmetric(0.5));
    }

    #[test]
    #[should_panic]
    fn ragged_nested_matrix_panics() {
        DistMatrix::from_nested(vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic]
    fn bad_flat_length_panics() {
        DistMatrix::from_flat(3, vec![0.0; 8]);
    }

    #[test]
    fn pair_index_matches_enumeration_order() {
        for n in [2usize, 3, 5, 9] {
            assert_eq!(pair_count(n), pair_indices(n).count());
            for (k, (i, j)) in pair_indices(n).enumerate() {
                assert_eq!(pair_index(n, i, j), k, "pair ({i}, {j}) over n = {n}");
            }
        }
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
    }

    /// A small symmetric metric matrix: 4 collinear points at unit spacing
    /// with every distance doubled (so a direct link can improve pairs).
    fn line_metric(n: usize) -> DistMatrix {
        DistMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs() * 2.0)
    }

    #[test]
    fn tracked_improve_matches_untracked_and_records_pairs() {
        let n = 5;
        let mut plain = line_metric(n);
        let mut tracked = line_metric(n);
        let mut delta = ImprovedPairs::new(n);
        let count = improve_with_link(&mut plain, 0, 4, 1.0);
        let tracked_count = improve_with_link_tracked(&mut tracked, 0, 4, 1.0, &mut delta);
        assert_eq!(count, tracked_count);
        assert_eq!(plain, tracked, "tracked kernel must be bit-identical");
        assert!(!delta.is_empty());
        // Every recorded pair really improved, and old values are pre-update.
        let before = line_metric(n);
        for &(a, b, old) in delta.pairs() {
            let (a, b) = (a as usize, b as usize);
            assert!(delta.contains_pair(a, b));
            assert!(delta.touches(a) && delta.touches(b));
            assert_eq!(old, before.get(a, b));
            assert!(tracked.get(a, b) < old);
        }
        // Every unrecorded pair is unchanged.
        for (a, b) in pair_indices(n) {
            if !delta.contains_pair(a, b) {
                assert_eq!(tracked.get(a, b), before.get(a, b));
            }
        }
        // The endpoints of the new link are touched (its own pair improved).
        assert!(delta.touches(0) && delta.touches(4));
    }

    /// Brute-force closure reference: Floyd–Warshall over the matrix with
    /// the new links inserted as edges.
    fn closure_reference(matrix: &DistMatrix, links: &[(usize, usize, f64)]) -> DistMatrix {
        let n = matrix.n();
        let mut d = matrix.clone();
        for &(i, j, m) in links {
            if m < d.get(i, j) {
                d.set_sym(i, j, m);
            }
        }
        for k in 0..n {
            for s in 0..n {
                for t in 0..n {
                    let via = d.get(s, k) + d.get(k, t);
                    if via < d.get(s, t) {
                        d.set(s, t, via);
                    }
                }
            }
        }
        d
    }

    #[test]
    fn batch_improve_matches_sequential_and_reference() {
        let n = 9;
        let base = DistMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs() * 3.0);
        let links = [(0usize, 8usize, 5.0), (2, 6, 2.5), (1, 8, 9.0), (0, 4, 3.0)];
        let mut batched = base.clone();
        let improved = improve_with_links(&mut batched, &links);
        assert!(improved > 0);
        let mut sequential = base.clone();
        for &(i, j, m) in &links {
            improve_with_link(&mut sequential, i, j, m);
        }
        let reference = closure_reference(&base, &links);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (batched.get(i, j) - sequential.get(i, j)).abs() < 1e-9,
                    "batch vs sequential at ({i}, {j})"
                );
                assert!(
                    (batched.get(i, j) - reference.get(i, j)).abs() < 1e-9,
                    "batch vs closure reference at ({i}, {j})"
                );
            }
        }
        assert!(
            batched.is_symmetric(0.0),
            "mirror writes keep exact symmetry"
        );
    }

    #[test]
    fn batch_improve_edge_cases() {
        let n = 5;
        let base = line_metric(n);
        // Empty batch: no-op.
        let mut m = base.clone();
        assert_eq!(improve_with_links(&mut m, &[]), 0);
        assert_eq!(m, base);
        // Single link delegates to the sequential kernel bit-for-bit.
        let mut single_batch = base.clone();
        let mut single_seq = base.clone();
        let got = improve_with_links(&mut single_batch, &[(0, 4, 1.0)]);
        let want = improve_with_link(&mut single_seq, 0, 4, 1.0);
        assert_eq!(got, want);
        assert_eq!(single_batch, single_seq);
        // A useless (too-long) link changes nothing.
        let mut useless = base.clone();
        improve_with_links(&mut useless, &[(0, 1, 100.0), (2, 3, 200.0)]);
        assert_eq!(useless, base);
    }

    #[test]
    fn batch_improve_composes_new_links() {
        // Two new links that only help in *combination*: 0–2 and 2–4 at
        // unit-ish lengths over a stretched metric. The pair (0, 4) must ride
        // both new links through the shared portal 2.
        let n = 5;
        let base = line_metric(n); // d(i, j) = 2 |i − j|
        let mut m = base.clone();
        improve_with_links(&mut m, &[(0, 2, 1.0), (2, 4, 1.0)]);
        assert_eq!(m.get(0, 2), 1.0);
        assert_eq!(m.get(2, 4), 1.0);
        assert_eq!(m.get(0, 4), 2.0, "multi-new-link path through the portals");
        assert_eq!(m.get(1, 3), 4.0, "untouched pair keeps old distance");
    }

    #[test]
    fn improved_pairs_reset_reuses_and_resizes() {
        let mut delta = ImprovedPairs::new(4);
        delta.record(1, 3, 9.0);
        delta.record(3, 1, 8.0); // duplicate orientation is ignored
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.pairs()[0], (1, 3, 9.0));
        delta.reset(4);
        assert!(delta.is_empty() && !delta.touches(1));
        delta.reset(7);
        assert_eq!(delta.n(), 7);
        delta.record(5, 6, 1.0);
        assert!(delta.contains_pair(6, 5));
    }
}

//! A compact weighted adjacency-list graph.
//!
//! Nodes are dense `usize` indices assigned by the caller (the datasets keep
//! their own id → index maps). Edges carry an `f64` weight — a distance in
//! kilometres for the designer, a latency in milliseconds for routing — and
//! may be added directed or undirected (an undirected edge is simply a pair
//! of directed edges).

use serde::{Deserialize, Serialize};

/// Node identifier: a dense index into the graph's node range.
pub type NodeId = usize;

/// A directed edge out of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// Edge weight (must be non-negative for the shortest-path algorithms).
    pub weight: f64,
}

/// Weighted directed graph stored as per-node adjacency lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of *directed* edges (an undirected edge counts twice).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Append a new isolated node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Add a directed edge. Panics on out-of-range nodes or negative/NaN
    /// weights (shortest-path preconditions).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: f64) {
        assert!(from < self.node_count(), "`from` node out of range");
        assert!(to < self.node_count(), "`to` node out of range");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative, got {weight}"
        );
        self.adjacency[from].push(Edge { to, weight });
        self.edge_count += 1;
    }

    /// Add an undirected edge (two directed edges of equal weight).
    pub fn add_undirected_edge(&mut self, a: NodeId, b: NodeId, weight: f64) {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
    }

    /// Outgoing edges of a node.
    pub fn neighbors(&self, node: NodeId) -> &[Edge] {
        &self.adjacency[node]
    }

    /// Whether a directed edge `from → to` exists (linear in the out-degree).
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.adjacency[from].iter().any(|e| e.to == to)
    }

    /// Weight of the minimum-weight directed edge `from → to`, if any.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.adjacency[from]
            .iter()
            .filter(|e| e.to == to)
            .map(|e| e.weight)
            .fold(None, |acc, w| match acc {
                None => Some(w),
                Some(prev) => Some(prev.min(w)),
            })
    }

    /// Iterate over all directed edges as `(from, to, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(from, edges)| edges.iter().map(move |e| (from, e.to, e.weight)))
    }

    /// Build a copy of the graph with a set of nodes removed (their edges are
    /// dropped; node ids are preserved, removed nodes become isolated).
    ///
    /// Used by the disjoint-path iteration, which removes the interior towers
    /// of each found path.
    pub fn without_nodes(&self, removed: &[NodeId]) -> Graph {
        let mut gone = vec![false; self.node_count()];
        for &n in removed {
            if n < gone.len() {
                gone[n] = true;
            }
        }
        let mut out = Graph::new(self.node_count());
        for (from, to, w) in self.edges() {
            if !gone[from] && !gone[to] {
                out.add_edge(from, to, w);
            }
        }
        out
    }

    /// Build a copy of the graph with specific directed edges removed.
    /// Each entry of `removed` is a `(from, to)` pair; all parallel edges
    /// between that pair are dropped.
    pub fn without_edges(&self, removed: &[(NodeId, NodeId)]) -> Graph {
        let mut out = Graph::new(self.node_count());
        for (from, to, w) in self.edges() {
            if !removed.contains(&(from, to)) {
                out.add_edge(from, to, w);
            }
        }
        out
    }

    /// Total weight of all directed edges.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 2, 2.0);
        g.add_undirected_edge(1, 3, 2.0);
        g.add_undirected_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.neighbors(0).len(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn add_node_returns_new_id() {
        let mut g = Graph::new(2);
        assert_eq!(g.add_node(), 2);
        assert_eq!(g.add_node(), 3);
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn edge_weight_picks_minimum_parallel_edge() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 0), None);
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 8);
        assert!(edges.contains(&(0, 1, 1.0)));
        assert!(edges.contains(&(3, 2, 1.0)));
    }

    #[test]
    fn without_nodes_isolates_them() {
        let g = diamond();
        let g2 = g.without_nodes(&[1]);
        assert_eq!(g2.node_count(), 4);
        assert!(g2.neighbors(1).is_empty());
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(0, 2));
        // Original untouched.
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn without_edges_removes_only_named_pairs() {
        let g = diamond();
        let g2 = g.without_edges(&[(0, 1)]);
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 0), "reverse direction is a different edge");
    }

    #[test]
    fn total_weight_sums() {
        let g = diamond();
        assert!((g.total_weight() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weights() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_nodes() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    // A NaN weight would silently poison the heap tie-break
    // (`partial_cmp(..).unwrap_or(Equal)`) and corrupt pop order, so it must
    // be rejected at insertion, not discovered mid-search.
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_weights() {
        let mut g = Graph::new(2);
        g.add_undirected_edge(0, 1, f64::INFINITY);
    }
}

//! Flat compressed-sparse-row adjacency and its predecessor-tracking
//! Dijkstra.
//!
//! The adjacency-list [`Graph`](crate::Graph) stores one heap allocation per
//! node; every neighbour scan chases a `Vec` pointer and the edges of a node
//! are scattered across the heap. [`CsrGraph`] packs the same directed graph
//! into three parallel flat arrays (edge targets, edge weights, original
//! edge ids) plus one offset array, so a node's out-edges are a contiguous
//! slice, the whole structure is two allocations, and a full Dijkstra sweep
//! streams memory linearly. Edge ids are preserved from insertion order,
//! which is what lets the packet simulator use CSR slots and link ids
//! interchangeably: a network whose links are added in id order produces a
//! CSR whose `edge_ids` are exactly those link ids.
//!
//! [`CsrGraph::shortest_path_tree`] is the standard lazy-deletion binary-heap
//! Dijkstra with deterministic tie-breaking (by node index), tracking both
//! the predecessor *node* and the predecessor *edge id* so callers can
//! extract either node paths or edge-id routes ([`CsrTree::edge_path_to`] —
//! the form the simulator's source routes use). Costs may be the stored
//! weights or a per-edge override ([`CsrGraph::shortest_path_tree_with`]),
//! which is how congestion-aware routing re-prices links between placements
//! without rebuilding the structure; a non-finite cost disables the edge.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::Graph;

/// Sentinel for "no predecessor" in [`CsrTree`].
pub const NO_EDGE: u32 = u32::MAX;

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u + 1]` is node `u`'s out-edge slot range.
    pub(crate) offsets: Vec<u32>,
    /// Target node per edge slot.
    pub(crate) targets: Vec<u32>,
    /// Weight per edge slot.
    pub(crate) weights: Vec<f64>,
    /// Original (insertion-order) edge id per edge slot.
    pub(crate) edge_ids: Vec<u32>,
}

impl CsrGraph {
    /// Build from directed `(from, to, weight)` edges; the edge id of each
    /// edge is its position in the iterator. Weights must be finite and
    /// non-negative (shortest-path precondition).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize, f64)>) -> Self {
        let collected: Vec<(usize, usize, f64)> = edges.into_iter().collect();
        let mut degree = vec![0u32; n];
        for &(from, to, w) in &collected {
            assert!(from < n && to < n, "edge endpoint out of range");
            assert!(
                w.is_finite() && w >= 0.0,
                "edge weight must be finite and non-negative, got {w}"
            );
            degree[from] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let m = collected.len();
        let mut targets = vec![0u32; m];
        let mut weights = vec![0.0; m];
        let mut edge_ids = vec![0u32; m];
        // Stable counting-sort placement: edges of a node keep insertion
        // order, so ties in Dijkstra resolve identically run to run.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (id, &(from, to, w)) in collected.iter().enumerate() {
            let slot = cursor[from] as usize;
            cursor[from] += 1;
            targets[slot] = to as u32;
            weights[slot] = w;
            edge_ids[slot] = id as u32;
        }
        Self {
            offsets,
            targets,
            weights,
            edge_ids,
        }
    }

    /// Build from an adjacency-list [`Graph`], preserving its edge iteration
    /// order as edge ids.
    pub fn from_graph(graph: &Graph) -> Self {
        Self::from_edges(graph.node_count(), graph.edges())
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-edge slot range of a node.
    #[inline]
    pub(crate) fn slots(&self, u: usize) -> std::ops::Range<usize> {
        self.offsets[u] as usize..self.offsets[u + 1] as usize
    }

    /// Out-edges of `u` as `(target, weight, edge_id)` triples.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, f64, u32)> + '_ {
        let range = self.slots(u);
        range.map(move |s| (self.targets[s] as usize, self.weights[s], self.edge_ids[s]))
    }

    /// Dijkstra from `source` over the stored weights, optionally stopping
    /// once `target` is settled.
    pub fn shortest_path_tree(&self, source: usize, target: Option<usize>) -> CsrTree {
        self.shortest_path_tree_with(source, target, |_, weight| weight)
    }

    /// Dijkstra with per-edge cost override: `cost(edge_id, stored_weight)`
    /// is the traversal cost of each edge. Return a non-finite cost to
    /// disable an edge (failed links, congestion-priced routing).
    pub fn shortest_path_tree_with(
        &self,
        source: usize,
        target: Option<usize>,
        mut cost: impl FnMut(u32, f64) -> f64,
    ) -> CsrTree {
        let n = self.node_count();
        assert!(source < n, "source out of range");
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_node = vec![NO_EDGE; n];
        let mut prev_edge = vec![NO_EDGE; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(CsrHeapEntry {
            cost: 0.0,
            node: source as u32,
        });

        while let Some(CsrHeapEntry { cost: d, node }) = heap.pop() {
            let u = node as usize;
            if settled[u] {
                continue;
            }
            settled[u] = true;
            if Some(u) == target {
                break;
            }
            for s in self.slots(u) {
                let c = cost(self.edge_ids[s], self.weights[s]);
                if !c.is_finite() {
                    continue;
                }
                let v = self.targets[s] as usize;
                let next = d + c;
                if next < dist[v] {
                    dist[v] = next;
                    prev_node[v] = node;
                    prev_edge[v] = self.edge_ids[s];
                    heap.push(CsrHeapEntry {
                        cost: next,
                        node: v as u32,
                    });
                }
            }
        }

        CsrTree {
            source,
            dist,
            prev_node,
            prev_edge,
        }
    }
}

/// Min-heap entry: lowest cost first, ties broken by node index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CsrHeapEntry {
    cost: f64,
    node: u32,
}

impl Eq for CsrHeapEntry {}

impl Ord for CsrHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for CsrHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A shortest-path tree over a [`CsrGraph`]: distances plus predecessor node
/// *and* predecessor edge id, so both node paths and edge-id routes can be
/// extracted without re-walking the adjacency.
#[derive(Debug, Clone)]
pub struct CsrTree {
    /// Source the tree was grown from.
    pub source: usize,
    /// `dist[v]` is the shortest-path cost source → v (infinity when
    /// unreached).
    pub dist: Vec<f64>,
    /// Predecessor node of `v` (`NO_EDGE` when unreached or the source).
    pub prev_node: Vec<u32>,
    /// Id of the edge entering `v` on its shortest path (`NO_EDGE` when
    /// unreached or the source).
    pub prev_edge: Vec<u32>,
}

impl CsrTree {
    /// Whether `target` was reached.
    #[inline]
    pub fn reached(&self, target: usize) -> bool {
        self.dist[target].is_finite()
    }

    /// Edge-id route source → `target` (empty when `target == source`), or
    /// `None` when unreachable. The route is written into `out` (cleared
    /// first) so hot callers can reuse one buffer.
    pub fn edge_path_into(&self, target: usize, out: &mut Vec<u32>) -> bool {
        out.clear();
        if !self.reached(target) {
            return false;
        }
        let mut cur = target;
        while cur != self.source {
            let e = self.prev_edge[cur];
            if e == NO_EDGE {
                out.clear();
                return false;
            }
            out.push(e);
            cur = self.prev_node[cur] as usize;
        }
        out.reverse();
        true
    }

    /// Edge-id route source → `target`, or `None` when unreachable.
    pub fn edge_path_to(&self, target: usize) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        self.edge_path_into(target, &mut out).then_some(out)
    }

    /// Node path source → `target` (inclusive), or `None` when unreachable.
    pub fn node_path_to(&self, target: usize) -> Option<Vec<usize>> {
        if !self.reached(target) {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != self.source {
            if self.prev_node[cur] == NO_EDGE {
                return None;
            }
            cur = self.prev_node[cur] as usize;
            nodes.push(cur);
        }
        nodes.reverse();
        Some(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra;

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 2, 2.0);
        g.add_undirected_edge(1, 3, 2.0);
        g.add_undirected_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn csr_mirrors_adjacency_structure() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 8);
        let out0: Vec<(usize, f64, u32)> = csr.neighbors(0).collect();
        assert_eq!(out0.len(), 2);
        assert_eq!(out0[0].0, 1);
        assert_eq!(out0[1].0, 2);
    }

    #[test]
    fn csr_dijkstra_matches_adjacency_dijkstra() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        for src in 0..4 {
            let reference = dijkstra::shortest_path_tree(&g, src, None);
            let tree = csr.shortest_path_tree(src, None);
            assert_eq!(tree.dist, reference.dist, "source {src}");
        }
    }

    #[test]
    fn edge_path_costs_match_distances() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        let tree = csr.shortest_path_tree(0, None);
        for target in 0..4 {
            let path = tree.edge_path_to(target).unwrap();
            let edge_weights: std::collections::HashMap<u32, f64> = (0..4)
                .flat_map(|u| csr.neighbors(u).map(|(_, w, id)| (id, w)))
                .collect();
            let cost: f64 = path.iter().map(|e| edge_weights[e]).sum();
            assert!((cost - tree.dist[target]).abs() < 1e-12, "target {target}");
        }
        assert!(tree.edge_path_to(0).unwrap().is_empty());
    }

    #[test]
    fn node_paths_are_connected() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        let tree = csr.shortest_path_tree(0, Some(3));
        let nodes = tree.node_path_to(3).unwrap();
        assert_eq!(nodes.first(), Some(&0));
        assert_eq!(nodes.last(), Some(&3));
        for w in nodes.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_target_is_none() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let csr = CsrGraph::from_graph(&g);
        let tree = csr.shortest_path_tree(0, None);
        assert!(!tree.reached(3));
        assert!(tree.edge_path_to(3).is_none());
        assert!(tree.node_path_to(3).is_none());
        let mut buf = vec![9u32];
        assert!(!tree.edge_path_into(3, &mut buf));
        assert!(buf.is_empty(), "failed extraction clears the buffer");
    }

    #[test]
    fn cost_override_reprices_and_disables_edges() {
        let g = diamond();
        let csr = CsrGraph::from_graph(&g);
        // Disable the 0→1 edge (id 0): the best route to 3 flips to 0-2-3.
        let tree =
            csr.shortest_path_tree_with(0, None, |id, w| if id == 0 { f64::INFINITY } else { w });
        assert_eq!(tree.node_path_to(3).unwrap(), vec![0, 2, 3]);
        // Re-pricing every edge to 1 makes 0-1-3 and 0-2-3 tie; the
        // deterministic tie-break picks the same path every run.
        let first = csr
            .shortest_path_tree_with(0, None, |_, _| 1.0)
            .node_path_to(3)
            .unwrap();
        for _ in 0..5 {
            let again = csr
                .shortest_path_tree_with(0, None, |_, _| 1.0)
                .node_path_to(3)
                .unwrap();
            assert_eq!(again, first);
        }
    }

    #[test]
    fn early_exit_matches_full_run() {
        let mut g = Graph::new(30);
        for i in 0..29 {
            g.add_undirected_edge(i, i + 1, 1.0 + (i % 3) as f64);
        }
        for i in (0..25).step_by(5) {
            g.add_undirected_edge(i, i + 5, 2.5);
        }
        let csr = CsrGraph::from_graph(&g);
        let full = csr.shortest_path_tree(0, None);
        let early = csr.shortest_path_tree(0, Some(17));
        assert_eq!(early.dist[17], full.dist[17]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weights() {
        CsrGraph::from_edges(2, [(0usize, 1usize, -1.0)]);
    }

    // NaN would make `CsrHeapEntry::cmp`'s `unwrap_or(Equal)` tie-break
    // nondeterministic; CSR construction is the last gate before the search
    // cores trust every weight.
    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        CsrGraph::from_edges(2, [(0usize, 1usize, f64::NAN)]);
    }
}

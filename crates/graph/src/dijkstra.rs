//! Dijkstra shortest paths with deterministic tie-breaking.
//!
//! The designer runs Dijkstra over graphs with up to a few hundred thousand
//! edges (the tower hop graph), once per city, so the implementation uses the
//! standard binary-heap formulation with lazy deletion.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, NodeId};

/// A path through a graph: the node sequence (including both endpoints) and
/// its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Nodes from source to target inclusive.
    pub nodes: Vec<NodeId>,
    /// Sum of edge weights along the path.
    pub cost: f64,
}

impl Path {
    /// Number of edges (hops) in the path.
    pub fn hop_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Interior nodes (everything but the two endpoints).
    pub fn interior_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }
}

/// Heap entry: min-heap by cost, ties broken by node index for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering for a min-heap; costs are finite by construction.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Distances from a single source to every node (infinity where unreachable),
/// along with the predecessor array for path reconstruction.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// Source node the tree was grown from.
    pub source: NodeId,
    /// `dist[v]` is the cost of the shortest path source → v.
    pub dist: Vec<f64>,
    /// `prev[v]` is the predecessor of `v` on its shortest path, if reached.
    pub prev: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Extract the path from the tree's source to `target`, if reachable.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        if !self.dist[target].is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while let Some(p) = self.prev[cur] {
            nodes.push(p);
            cur = p;
        }
        if cur != self.source {
            return None;
        }
        nodes.reverse();
        Some(Path {
            nodes,
            cost: self.dist[target],
        })
    }
}

/// Run Dijkstra from `source`, optionally stopping early once `target` is
/// settled.
pub fn shortest_path_tree(
    graph: &Graph,
    source: NodeId,
    target: Option<NodeId>,
) -> ShortestPathTree {
    bounded_tree(graph, source, target, f64::INFINITY)
}

/// Run Dijkstra from `source`, abandoning the search once every remaining
/// frontier entry costs more than `max_cost`.
///
/// Nodes settled before the cut-off carry exactly the distances and
/// predecessors the unbounded run would produce (the relaxation prefix is
/// identical — same heap, same tie-breaking). Nodes *not* settled may be left
/// with a tentative (over-estimated) distance or `INFINITY`; every such
/// distance is `> max_cost`, so callers that filter results against a
/// per-target threshold `<= max_cost` see output identical to the full run.
/// This is the candidate-pool generator's bound: tower paths longer than the
/// fiber oracle can never produce a useful microwave link, so the search
/// stops paying for them.
pub fn shortest_path_tree_within(graph: &Graph, source: NodeId, max_cost: f64) -> ShortestPathTree {
    bounded_tree(graph, source, None, max_cost)
}

fn bounded_tree(
    graph: &Graph,
    source: NodeId,
    target: Option<NodeId>,
    max_cost: f64,
) -> ShortestPathTree {
    let n = graph.node_count();
    assert!(source < n, "source out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > max_cost {
            break;
        }
        if settled[node] {
            continue;
        }
        settled[node] = true;
        if Some(node) == target {
            break;
        }
        for edge in graph.neighbors(node) {
            let next_cost = cost + edge.weight;
            if next_cost < dist[edge.to] {
                dist[edge.to] = next_cost;
                prev[edge.to] = Some(node);
                heap.push(HeapEntry {
                    cost: next_cost,
                    node: edge.to,
                });
            }
        }
    }

    ShortestPathTree { source, dist, prev }
}

/// Shortest path between two nodes, if one exists.
pub fn shortest_path(graph: &Graph, source: NodeId, target: NodeId) -> Option<Path> {
    assert!(target < graph.node_count(), "target out of range");
    if source == target {
        return Some(Path {
            nodes: vec![source],
            cost: 0.0,
        });
    }
    shortest_path_tree(graph, source, Some(target)).path_to(target)
}

/// Cost of the shortest path from `source` to every node (infinity where
/// unreachable).
pub fn shortest_path_costs(graph: &Graph, source: NodeId) -> Vec<f64> {
    shortest_path_tree(graph, source, None).dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_undirected_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn path_on_line_graph() {
        let g = line_graph(6);
        let p = shortest_path(&g, 0, 5).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.cost, 5.0);
        assert_eq!(p.hop_count(), 5);
        assert_eq!(p.interior_nodes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn prefers_cheaper_multi_hop_route() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 3, 10.0);
        g.add_undirected_edge(0, 1, 2.0);
        g.add_undirected_edge(1, 2, 2.0);
        g.add_undirected_edge(2, 3, 2.0);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.cost, 6.0);
        assert_eq!(p.nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        assert!(shortest_path(&g, 0, 3).is_none());
        let costs = shortest_path_costs(&g, 0);
        assert!(costs[3].is_infinite());
        assert_eq!(costs[1], 1.0);
    }

    #[test]
    fn source_equals_target() {
        let g = line_graph(3);
        let p = shortest_path(&g, 1, 1).unwrap();
        assert_eq!(p.nodes, vec![1]);
        assert_eq!(p.cost, 0.0);
        assert_eq!(p.hop_count(), 0);
        assert!(p.interior_nodes().is_empty());
    }

    #[test]
    fn costs_from_source_are_monotone_on_line() {
        let g = line_graph(10);
        let costs = shortest_path_costs(&g, 0);
        for (i, &cost) in costs.iter().enumerate() {
            assert_eq!(cost, i as f64);
        }
    }

    #[test]
    fn directed_edges_are_respected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        assert!(shortest_path(&g, 0, 2).is_some());
        assert!(shortest_path(&g, 2, 0).is_none());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two equal-cost paths 0-1-3 and 0-2-3; the algorithm must return the
        // same one every run.
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(0, 2, 1.0);
        g.add_undirected_edge(1, 3, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        let first = shortest_path(&g, 0, 3).unwrap();
        for _ in 0..10 {
            assert_eq!(shortest_path(&g, 0, 3).unwrap(), first);
        }
    }

    #[test]
    fn tree_path_to_unreached_node_is_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        let tree = shortest_path_tree(&g, 0, None);
        assert!(tree.path_to(2).is_none());
        assert!(tree.path_to(1).is_some());
    }

    #[test]
    fn bounded_tree_matches_full_run_below_the_cap() {
        let mut g = Graph::new(50);
        for i in 0..49 {
            g.add_undirected_edge(i, i + 1, 1.0);
        }
        for i in (0..45).step_by(5) {
            g.add_undirected_edge(i, i + 5, 3.0);
        }
        let full = shortest_path_tree(&g, 0, None);
        let cap = 20.0;
        let bounded = shortest_path_tree_within(&g, 0, cap);
        for v in 0..50 {
            if full.dist[v] <= cap {
                assert_eq!(bounded.dist[v], full.dist[v], "node {v}");
                assert_eq!(bounded.path_to(v), full.path_to(v), "node {v}");
            } else {
                // Unsettled nodes may carry tentative distances, but never one
                // at or below the cap — a threshold filter drops all of them.
                assert!(bounded.dist[v] > cap, "node {v}");
            }
        }
    }

    #[test]
    fn bounded_tree_with_infinite_cap_is_the_full_run() {
        let mut g = Graph::new(6);
        for i in 0..5 {
            g.add_undirected_edge(i, i + 1, 2.5);
        }
        let full = shortest_path_tree(&g, 0, None);
        let bounded = shortest_path_tree_within(&g, 0, f64::INFINITY);
        assert_eq!(bounded.dist, full.dist);
        assert_eq!(bounded.prev, full.prev);
    }

    #[test]
    fn early_exit_matches_full_run() {
        let mut g = Graph::new(50);
        // A grid-ish random-free structure: chain plus shortcuts.
        for i in 0..49 {
            g.add_undirected_edge(i, i + 1, 1.0);
        }
        for i in (0..45).step_by(5) {
            g.add_undirected_edge(i, i + 5, 3.0);
        }
        let full = shortest_path_tree(&g, 0, None);
        let early = shortest_path(&g, 0, 30).unwrap();
        assert_eq!(early.cost, full.dist[30]);
    }
}

//! Symmetric upper-triangle-only matrix storage.
//!
//! Every matrix in the design engine — fiber, geodesic, traffic, effective —
//! is symmetric, so the full `n²` [`DistMatrix`] stores each unordered pair
//! twice. [`UpperTriangleMatrix`] stores the upper triangle (diagonal
//! included) in one flat `n·(n+1)/2` allocation: half the memory and half
//! the cache traffic on continent-scale inputs. It exposes the same
//! entry/pair API as [`DistMatrix`] (`get`/`set`/`upper_triangle`/
//! `copy_from`), the `copy_from_dist` bridge for `memcpy`-style scratch
//! refills from a full matrix, and the same exact one-edge improvement
//! kernel, so sweeps like the weather rerouting loop can switch storage
//! without changing shape. (Row-slice views don't exist in triangular
//! storage — callers that need `&[f64]` rows stay on `DistMatrix`.)

use crate::matrix::{pair_indices, DistMatrix};
use serde::{Deserialize, Serialize};

/// A dense symmetric matrix storing only the upper triangle (with diagonal)
/// in one contiguous allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpperTriangleMatrix {
    n: usize,
    /// Row-major upper triangle: row `i` stores columns `i..n`.
    data: Vec<f64>,
}

/// Number of stored entries for side length `n` (upper triangle + diagonal).
#[inline]
fn storage_len(n: usize) -> usize {
    n * (n + 1) / 2
}

impl UpperTriangleMatrix {
    /// An `n × n` symmetric matrix filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; storage_len(n)],
        }
    }

    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self::filled(n, 0.0)
    }

    /// Build from a generator over canonical `(i, j)` with `i <= j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(storage_len(n));
        for i in 0..n {
            for j in i..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Build from the upper triangle of a full square matrix (the lower
    /// triangle is ignored, matching how the symmetric kernels read a
    /// `DistMatrix`).
    pub fn from_dist(full: &DistMatrix) -> Self {
        Self::from_fn(full.n(), |i, j| full.get(i, j))
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flat index of the canonical entry for `(i, j)`.
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        let (a, b) = if i <= j { (i, j) } else { (j, i) };
        a * self.n - a * (a + 1) / 2 + b
    }

    /// Entry at `(i, j)` (order-insensitive).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Set the entry at `(i, j)` — one store updates both orientations,
    /// which is the point of the storage scheme.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        let k = self.idx(i, j);
        self.data[k] = value;
    }

    /// Alias of [`Self::set`], mirroring [`DistMatrix::set_sym`] so callers
    /// can switch storage without renaming.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, value: f64) {
        self.set(i, j, value);
    }

    /// Overwrite with `other`'s contents without reallocating when sizes
    /// match.
    pub fn copy_from(&mut self, other: &UpperTriangleMatrix) {
        if self.n == other.n {
            self.data.copy_from_slice(&other.data);
        } else {
            self.n = other.n;
            self.data.clear();
            self.data.extend_from_slice(&other.data);
        }
    }

    /// Refill from the upper triangle of a full matrix, reusing the
    /// allocation: one contiguous slice copy per row (the triangular
    /// equivalent of [`DistMatrix::copy_from`]).
    pub fn copy_from_dist(&mut self, full: &DistMatrix) {
        let n = full.n();
        if self.n != n {
            self.n = n;
            self.data.clear();
            self.data.resize(storage_len(n), 0.0);
        }
        let mut start = 0;
        for i in 0..n {
            let len = n - i;
            self.data[start..start + len].copy_from_slice(&full.row(i)[i..]);
            start += len;
        }
    }

    /// Expand back to a full square matrix (boundary/debug use).
    pub fn to_dist(&self) -> DistMatrix {
        DistMatrix::from_fn(self.n, |i, j| self.get(i, j))
    }

    /// Iterate the strict upper triangle (`i < j`) in row-major order,
    /// yielding `(i, j, value)` — same shape as
    /// [`DistMatrix::upper_triangle`].
    pub fn upper_triangle(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        pair_indices(self.n).map(move |(i, j)| (i, j, self.get(i, j)))
    }

    /// Sum of the strict upper triangle.
    pub fn upper_triangle_sum(&self) -> f64 {
        self.upper_triangle().map(|(_, _, v)| v).sum()
    }

    /// Apply the exact one-edge improvement `D'[s][t] = min(D[s][t],
    /// D[s][i] + length + D[j][t], D[s][j] + length + D[i][t])` in place.
    /// Same preconditions and semantics as
    /// [`crate::matrix::improve_with_link`]; each unordered pair is visited
    /// once. Returns the number of (unordered) pairs improved.
    pub fn improve_with_link(&mut self, i: usize, j: usize, length: f64) -> usize {
        let n = self.n;
        assert!(i < n && j < n && i != j);
        assert!(length >= 0.0);
        let mut improved = 0;
        for s in 0..n {
            let d_si = self.get(s, i);
            let d_sj = self.get(s, j);
            for t in (s + 1)..n {
                let best = (d_si + length + self.get(j, t)).min(d_sj + length + self.get(i, t));
                if best < self.get(s, t) {
                    self.set(s, t, best);
                    improved += 1;
                }
            }
        }
        improved
    }

    /// Batched multi-link improvement over triangular storage — the
    /// symmetric-storage twin of [`crate::matrix::improve_with_links`]. The
    /// sweep itself is the shared `batch_sweep` (one implementation of the
    /// arithmetic for both storages), so full-storage and triangle rebuilds
    /// of the same failure set agree bit-for-bit by construction. Returns
    /// the number of (unordered) pairs improved, matching
    /// [`Self::improve_with_link`]'s convention.
    pub fn improve_with_links(&mut self, links: &[(usize, usize, f64)]) -> usize {
        let n = self.n;
        for &(i, j, m) in links {
            assert!(i < n && j < n && i != j);
            assert!(m >= 0.0);
        }
        match links.len() {
            0 => return 0,
            1 => return self.improve_with_link(links[0].0, links[0].1, links[0].2),
            _ => {}
        }
        let pc = crate::matrix::portal_closure(n, links, |i, j| self.get(i, j));
        crate::matrix::batch_sweep(self, n, &pc)
    }
}

impl crate::matrix::BatchTarget for UpperTriangleMatrix {
    #[inline]
    fn pair_get(&self, i: usize, j: usize) -> f64 {
        self.get(i, j)
    }
    #[inline]
    fn pair_set(&mut self, i: usize, j: usize, v: f64) {
        self.set(i, j, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::improve_with_link;

    fn line_metric(n: usize) -> DistMatrix {
        DistMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs() * 2.0)
    }

    #[test]
    fn round_trips_through_dist_matrix() {
        let full = DistMatrix::from_fn(5, |i, j| (i + j) as f64 * 1.5);
        let tri = UpperTriangleMatrix::from_dist(&full);
        assert_eq!(tri.n(), 5);
        assert_eq!(tri.to_dist(), full);
        assert_eq!(tri.get(3, 1), full.get(1, 3), "order-insensitive get");
        assert_eq!(tri.upper_triangle_sum(), full.upper_triangle_sum());
        let pairs: Vec<_> = tri.upper_triangle().collect();
        let full_pairs: Vec<_> = full.upper_triangle().collect();
        assert_eq!(pairs, full_pairs);
    }

    #[test]
    fn set_updates_both_orientations() {
        let mut tri = UpperTriangleMatrix::zeros(4);
        tri.set(2, 0, 7.0);
        tri.set_sym(1, 3, 5.0);
        assert_eq!(tri.get(0, 2), 7.0);
        assert_eq!(tri.get(2, 0), 7.0);
        assert_eq!(tri.get(3, 1), 5.0);
    }

    #[test]
    fn copy_from_dist_reuses_allocation() {
        let full = line_metric(6);
        let mut tri = UpperTriangleMatrix::zeros(6);
        let ptr = tri.data.as_ptr();
        tri.copy_from_dist(&full);
        assert_eq!(tri.data.as_ptr(), ptr, "no reallocation");
        assert_eq!(tri, UpperTriangleMatrix::from_dist(&full));
        // Size-changing refill still works.
        let mut small = UpperTriangleMatrix::zeros(2);
        small.copy_from_dist(&full);
        assert_eq!(small, UpperTriangleMatrix::from_dist(&full));
        // Triangle-to-triangle copy.
        let mut other = UpperTriangleMatrix::zeros(6);
        other.copy_from(&tri);
        assert_eq!(other, tri);
    }

    #[test]
    fn improve_with_link_matches_full_matrix_kernel() {
        let mut full = line_metric(6);
        let mut tri = UpperTriangleMatrix::from_dist(&full);
        let tri_improved = tri.improve_with_link(0, 5, 1.0);
        improve_with_link(&mut full, 0, 5, 1.0);
        assert!(tri_improved > 0);
        for (i, j, v) in full.upper_triangle() {
            assert_eq!(tri.get(i, j), v, "pair ({i}, {j})");
        }
    }

    #[test]
    fn batch_improve_is_bit_identical_to_full_storage_batch() {
        let base = line_metric(8);
        let links = [(0usize, 7usize, 1.5), (2, 5, 1.0), (1, 6, 4.0)];
        let mut full = base.clone();
        let mut tri = UpperTriangleMatrix::from_dist(&base);
        let full_improved = crate::matrix::improve_with_links(&mut full, &links);
        let tri_improved = tri.improve_with_links(&links);
        // Full storage counts ordered entries, triangle counts unordered.
        assert_eq!(full_improved, 2 * tri_improved);
        assert!(tri_improved > 0);
        for (i, j, v) in full.upper_triangle() {
            assert_eq!(tri.get(i, j), v, "pair ({i}, {j})");
        }
        // Single-link batch delegates to the one-edge kernel.
        let mut one_batch = UpperTriangleMatrix::from_dist(&base);
        let mut one_seq = UpperTriangleMatrix::from_dist(&base);
        one_batch.improve_with_links(&links[..1]);
        one_seq.improve_with_link(links[0].0, links[0].1, links[0].2);
        assert_eq!(one_batch, one_seq);
    }
}

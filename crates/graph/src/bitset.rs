//! A fixed-capacity bitset over small index universes.
//!
//! The failure analysis and the designer both need "is element `i` in this
//! subset?" over link indices, inside O(n²)-per-query loops. A `&[usize]`
//! with `contains` is an O(k) scan per query; [`BitSet`] answers in one word
//! load.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Build from a list of member indices over `0..capacity`.
    pub fn from_indices(capacity: usize, indices: &[usize]) -> Self {
        let mut set = Self::new(capacity);
        for &i in indices {
            set.insert(i);
        }
        set
    }

    /// The universe size this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add `index` to the set.
    pub fn insert(&mut self, index: usize) {
        assert!(
            index < self.capacity,
            "index {index} out of capacity {}",
            self.capacity
        );
        self.words[index / WORD_BITS] |= 1 << (index % WORD_BITS);
    }

    /// Remove `index` from the set.
    pub fn remove(&mut self, index: usize) {
        assert!(
            index < self.capacity,
            "index {index} out of capacity {}",
            self.capacity
        );
        self.words[index / WORD_BITS] &= !(1 << (index % WORD_BITS));
    }

    /// Membership test in O(1).
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        index < self.capacity && self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1
    }

    /// Remove every member, keeping the capacity and allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate member indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(63) && !s.contains(128));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_indices_and_iter() {
        let s = BitSet::from_indices(70, &[3, 68, 3]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 68]);
        assert_eq!(s.capacity(), 70);
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut s = BitSet::from_indices(80, &[0, 41, 79]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 80);
        s.insert(79);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn out_of_capacity_query_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1_000_000));
    }

    #[test]
    #[should_panic]
    fn out_of_capacity_insert_panics() {
        BitSet::new(10).insert(10);
    }
}

//! Yen's algorithm for the k shortest loopless paths.
//!
//! Used to enumerate alternative microwave tower routes between a pair of
//! sites — e.g. when augmenting capacity the designer wants several nearly
//! shortest, mostly-parallel routes (§3.3), and the probabilistic
//! path-refinement discussion in §6.5 also needs candidate path sets.

use crate::dijkstra::{shortest_path, Path};
use crate::graph::{Graph, NodeId};

/// Compute up to `k` shortest loopless paths from `source` to `target`,
/// ordered by non-decreasing cost. Returns fewer than `k` paths when the
/// graph does not contain that many distinct loopless paths.
pub fn k_shortest_paths(graph: &Graph, source: NodeId, target: NodeId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let first = match shortest_path(graph, source, target) {
        Some(p) => p,
        None => return Vec::new(),
    };

    let mut accepted: Vec<Path> = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("at least one accepted path");
        // For each node in the previous path except the final one, consider a
        // deviation ("spur") starting there.
        for i in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];

            // Edges to remove: the outgoing edge used by any accepted path
            // that shares the same root prefix.
            let mut removed_edges: Vec<(NodeId, NodeId)> = Vec::new();
            for p in &accepted {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    removed_edges.push((p.nodes[i], p.nodes[i + 1]));
                }
            }
            // Nodes to remove: the root path nodes other than the spur node,
            // to keep paths loopless.
            let removed_nodes: Vec<NodeId> = root_nodes[..i].to_vec();

            let pruned = graph
                .without_edges(&removed_edges)
                .without_nodes(&removed_nodes);
            if let Some(spur_path) = shortest_path(&pruned, spur_node, target) {
                // Stitch root + spur.
                let mut nodes = root_nodes[..i].to_vec();
                nodes.extend_from_slice(&spur_path.nodes);
                let root_cost: f64 = root_nodes
                    .windows(2)
                    .map(|w| graph.edge_weight(w[0], w[1]).expect("root edge exists"))
                    .sum();
                let total = Path {
                    nodes,
                    cost: root_cost + spur_path.cost,
                };
                let duplicate = accepted
                    .iter()
                    .chain(candidates.iter())
                    .any(|p| p.nodes == total.nodes);
                if !duplicate {
                    candidates.push(total);
                }
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate (ties broken by node sequence for
        // determinism).
        candidates.sort_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap()
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
        accepted.push(candidates.remove(0));
    }

    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic Yen example graph.
    fn yen_graph() -> Graph {
        // Nodes: 0=C, 1=D, 2=E, 3=F, 4=G, 5=H
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 3.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(1, 3, 4.0);
        g.add_edge(2, 1, 1.0);
        g.add_edge(2, 3, 2.0);
        g.add_edge(2, 4, 3.0);
        g.add_edge(3, 4, 2.0);
        g.add_edge(3, 5, 1.0);
        g.add_edge(4, 5, 2.0);
        g
    }

    #[test]
    fn yen_reference_example() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 3);
        assert_eq!(paths.len(), 3);
        // Known results: C-E-F-H (5), C-E-G-H (7), then a tie at cost 8
        // between C-D-F-H and C-E-D-F-H (our tie-break picks the
        // lexicographically smaller node sequence).
        assert_eq!(paths[0].nodes, vec![0, 2, 3, 5]);
        assert_eq!(paths[0].cost, 5.0);
        assert_eq!(paths[1].nodes, vec![0, 2, 4, 5]);
        assert_eq!(paths[1].cost, 7.0);
        assert_eq!(paths[2].cost, 8.0);
        assert!(
            paths[2].nodes == vec![0, 1, 3, 5] || paths[2].nodes == vec![0, 2, 1, 3, 5],
            "unexpected third path {:?}",
            paths[2].nodes
        );
    }

    #[test]
    fn costs_are_nondecreasing() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
    }

    #[test]
    fn paths_are_loopless_and_distinct() {
        let g = yen_graph();
        let paths = k_shortest_paths(&g, 0, 5, 10);
        for p in &paths {
            let mut seen = std::collections::HashSet::new();
            for &n in &p.nodes {
                assert!(seen.insert(n), "loop in {:?}", p.nodes);
            }
        }
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
    }

    #[test]
    fn fewer_paths_than_requested() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let paths = k_shortest_paths(&g, 0, 2, 5);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn zero_k_and_unreachable_target() {
        let g = yen_graph();
        assert!(k_shortest_paths(&g, 0, 5, 0).is_empty());
        let mut g2 = Graph::new(3);
        g2.add_edge(0, 1, 1.0);
        assert!(k_shortest_paths(&g2, 0, 2, 3).is_empty());
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let g = yen_graph();
        let d = shortest_path(&g, 0, 5).unwrap();
        let y = k_shortest_paths(&g, 0, 5, 1);
        assert_eq!(y[0], d);
    }
}

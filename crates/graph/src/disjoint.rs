//! Iterative node-disjoint shortest paths.
//!
//! §3.3 / Fig. 4(b) of the paper: for the long Illinois–California link, the
//! authors repeatedly find the shortest tower path, remove all towers used by
//! it, and find the next shortest path using only the remaining towers. This
//! measures how much parallel capacity the existing tower stock can support
//! and how quickly stretch grows as towers are consumed.
//!
//! The procedure here is exactly that greedy iteration: it does **not**
//! compute a max-flow style optimal disjoint set (neither does the paper),
//! because the question it answers is "what does the *next* parallel route
//! cost once the best towers are taken".

use crate::dijkstra::{shortest_path, Path};
use crate::graph::{Graph, NodeId};

/// Result of the disjoint-path iteration.
#[derive(Debug, Clone)]
pub struct DisjointPaths {
    /// The paths found, in discovery order (costs non-decreasing in typical
    /// graphs, though not guaranteed for adversarial ones).
    pub paths: Vec<Path>,
}

impl DisjointPaths {
    /// Costs of the found paths, in order.
    pub fn costs(&self) -> Vec<f64> {
        self.paths.iter().map(|p| p.cost).collect()
    }

    /// Number of paths found.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no path was found at all.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Find up to `max_paths` interior-node-disjoint paths from `source` to
/// `target` by repeatedly removing the interior nodes of each shortest path
/// found. The endpoints themselves are never removed (in the paper's setting
/// they are the cities, which host many towers).
pub fn iterative_disjoint_paths(
    graph: &Graph,
    source: NodeId,
    target: NodeId,
    max_paths: usize,
) -> DisjointPaths {
    let mut working = graph.clone();
    let mut paths = Vec::new();

    for _ in 0..max_paths {
        match shortest_path(&working, source, target) {
            Some(p) => {
                let interior: Vec<NodeId> = p.interior_nodes().to_vec();
                working = working.without_nodes(&interior);
                paths.push(p);
                if paths.last().map(|p| p.hop_count()) == Some(1) {
                    // Direct source→target edge: removing interior nodes
                    // changes nothing, so every further iteration would
                    // return the same single-hop path. Stop here.
                    break;
                }
            }
            None => break,
        }
    }

    DisjointPaths { paths }
}

/// Check that a set of paths is pairwise interior-node-disjoint (test and
/// validation helper).
pub fn are_interior_disjoint(paths: &[Path]) -> bool {
    let mut seen = std::collections::HashSet::new();
    for p in paths {
        for &n in p.interior_nodes() {
            if !seen.insert(n) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A "ladder" graph with several parallel routes of increasing length
    /// between node 0 and node 1. Interior nodes 2.. form the rungs.
    fn parallel_routes_graph() -> Graph {
        let mut g = Graph::new(2 + 3 * 3);
        // Route A: 0-2-3-4-1, each edge 1.0 (total 4)
        // Route B: 0-5-6-7-1, each edge 1.5 (total 6)
        // Route C: 0-8-9-10-1, each edge 2.0 (total 8)
        let routes = [(2, 1.0), (5, 1.5), (8, 2.0)];
        for &(start, w) in &routes {
            g.add_undirected_edge(0, start, w);
            g.add_undirected_edge(start, start + 1, w);
            g.add_undirected_edge(start + 1, start + 2, w);
            g.add_undirected_edge(start + 2, 1, w);
        }
        g
    }

    #[test]
    fn finds_parallel_routes_in_cost_order() {
        let g = parallel_routes_graph();
        let result = iterative_disjoint_paths(&g, 0, 1, 10);
        assert_eq!(result.len(), 3);
        let costs = result.costs();
        assert_eq!(costs, vec![4.0, 6.0, 8.0]);
        assert!(are_interior_disjoint(&result.paths));
    }

    #[test]
    fn respects_max_paths() {
        let g = parallel_routes_graph();
        let result = iterative_disjoint_paths(&g, 0, 1, 2);
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn stops_when_exhausted() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0);
        g.add_undirected_edge(1, 2, 1.0);
        g.add_undirected_edge(2, 3, 1.0);
        // Only one route 0→3; after removing nodes 1, 2 nothing is left.
        let result = iterative_disjoint_paths(&g, 0, 3, 10);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn direct_edge_stops_iteration() {
        let mut g = Graph::new(4);
        g.add_undirected_edge(0, 1, 1.0); // direct edge
        g.add_undirected_edge(0, 2, 1.0);
        g.add_undirected_edge(2, 1, 1.0);
        let result = iterative_disjoint_paths(&g, 0, 1, 10);
        // The direct edge is found first and the iteration stops (further
        // "paths" would reuse the same physical edge).
        assert_eq!(result.len(), 1);
        assert_eq!(result.paths[0].hop_count(), 1);
    }

    #[test]
    fn no_path_gives_empty_result() {
        let g = Graph::new(3);
        let result = iterative_disjoint_paths(&g, 0, 2, 5);
        assert!(result.is_empty());
    }

    #[test]
    fn costs_nondecreasing_on_random_like_grid() {
        // A 6x6 grid between opposite corners: successive disjoint paths can
        // only get longer or equal.
        let n = 6;
        let id = |r: usize, c: usize| r * n + c;
        let mut g = Graph::new(n * n);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    g.add_undirected_edge(id(r, c), id(r, c + 1), 1.0);
                }
                if r + 1 < n {
                    g.add_undirected_edge(id(r, c), id(r + 1, c), 1.0);
                }
            }
        }
        let result = iterative_disjoint_paths(&g, id(0, 0), id(n - 1, n - 1), 4);
        assert!(!result.is_empty());
        let costs = result.costs();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "{costs:?}");
        }
        assert!(are_interior_disjoint(&result.paths));
    }

    #[test]
    fn disjointness_checker_detects_overlap() {
        let p1 = Path {
            nodes: vec![0, 1, 2, 3],
            cost: 3.0,
        };
        let p2 = Path {
            nodes: vec![0, 4, 2, 3],
            cost: 3.0,
        };
        assert!(!are_interior_disjoint(&[p1.clone(), p2]));
        assert!(are_interior_disjoint(&[p1]));
    }
}

//! Balanced link partitions and conservative lookahead for the windowed
//! packet engine.
//!
//! The simulator's link-disjoint component decomposition leaves the paper's
//! actual workload — one giant single-component mesh — serial. Conservative
//! time-windowed execution parallelises *inside* a component: its links are
//! split into per-worker shards, each shard simulates only the events on its
//! own links, and a packet crossing from one shard's link onto another's is
//! exchanged at a window barrier. That is safe exactly when the window never
//! exceeds the partition's *lookahead*: a packet leaving link `a` reaches the
//! next link no earlier than `delay[a]` (its propagation) after the event
//! that sent it, so any window no longer than the minimum such delay over
//! boundary transitions cannot miss a cross-shard event.
//!
//! This module provides the two partition-side pieces:
//!
//! * [`partition_path_links`] — a deterministic balanced edge-partition
//!   heuristic over the links referenced by a set of paths (BFS-grown
//!   clusters over the consecutive-in-some-path adjacency, seeded in
//!   first-appearance order, each grown to the balanced target size on the
//!   currently least-loaded shard). BFS growth keeps route segments
//!   together, which is what keeps the cut — and with it the number of
//!   boundary exchanges — small.
//! * [`partition_lookahead`] — the conservative window bound of a partition:
//!   the minimum `delay` of any link immediately upstream of a shard
//!   boundary, `+∞` when no path crosses shards.
//!
//! Both operate on the flat CSR-style link-id world of [`crate::PathStore`]
//! paths: a path is a `&[u32]` of link ids, and per-link attributes are flat
//! arrays indexed by id.

use std::collections::VecDeque;

/// Partition the links referenced by `paths` into at most `shards` balanced
/// groups, writing the shard id of every referenced link into `owner`
/// (entries for unreferenced links are left untouched). Returns the number
/// of distinct links assigned.
///
/// The heuristic is deterministic: clusters are seeded in first-appearance
/// order, grown breadth-first over the consecutive-in-some-path link
/// adjacency up to the balanced target size `ceil(used / shards)`, and each
/// cluster lands on the currently least-loaded shard (ties to the lowest
/// shard id).
pub fn partition_path_links(paths: &[&[u32]], shards: usize, owner: &mut [u32]) -> usize {
    assert!(shards > 0, "at least one shard");
    // Local ids in first-appearance order make the result independent of
    // how sparse the global link-id space is.
    let mut local: Vec<u32> = vec![u32::MAX; owner.len()];
    let mut used: Vec<u32> = Vec::new();
    for path in paths {
        for &l in *path {
            if local[l as usize] == u32::MAX {
                local[l as usize] = used.len() as u32;
                used.push(l);
            }
        }
    }
    if used.is_empty() {
        return 0;
    }
    if shards == 1 {
        for &l in &used {
            owner[l as usize] = 0;
        }
        return used.len();
    }

    // Adjacency between links that appear consecutively in some path — the
    // transitions that become boundary exchanges if cut.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); used.len()];
    for path in paths {
        for pair in path.windows(2) {
            let (a, b) = (local[pair[0] as usize], local[pair[1] as usize]);
            if a != b {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
    }

    let target = used.len().div_ceil(shards);
    let mut assigned = vec![false; used.len()];
    let mut shard_sizes = vec![0usize; shards];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for seed in 0..used.len() as u32 {
        if assigned[seed as usize] {
            continue;
        }
        let shard = (0..shards)
            .min_by_key(|&s| (shard_sizes[s], s))
            .expect("at least one shard");
        queue.clear();
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            if assigned[v as usize] {
                continue;
            }
            assigned[v as usize] = true;
            owner[used[v as usize] as usize] = shard as u32;
            shard_sizes[shard] += 1;
            if shard_sizes[shard] >= target {
                // Cluster full: links still queued stay unassigned and seed
                // later clusters.
                break;
            }
            for &nb in &adj[v as usize] {
                if !assigned[nb as usize] {
                    queue.push_back(nb);
                }
            }
        }
    }
    used.len()
}

/// Conservative lookahead of a partition: the minimum `delay[a]` over every
/// consecutive pair `(a, b)` in `paths` with `owner[a] != owner[b]`, or
/// `+∞` when no path crosses a shard boundary. A packet finishing on link
/// `a` at any time `t` cannot generate an event on `b` before `t + delay[a]`,
/// so windows of at most this length never need mid-window exchanges.
pub fn partition_lookahead(paths: &[&[u32]], owner: &[u32], delay: &[f64]) -> f64 {
    let mut lookahead = f64::INFINITY;
    for path in paths {
        for pair in path.windows(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            if owner[a] != owner[b] {
                lookahead = lookahead.min(delay[a]);
            }
        }
    }
    lookahead
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain of paths over 8 links: 0–1–2–3 and 4–5–6–7 plus a bridge 3–4.
    fn chain_paths() -> Vec<Vec<u32>> {
        vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![3, 4]]
    }

    #[test]
    fn partition_is_balanced_and_covers_every_used_link() {
        let paths = chain_paths();
        let views: Vec<&[u32]> = paths.iter().map(|p| p.as_slice()).collect();
        let mut owner = vec![u32::MAX; 8];
        let used = partition_path_links(&views, 2, &mut owner);
        assert_eq!(used, 8);
        let mut sizes = [0usize; 2];
        for &o in &owner {
            assert!(o < 2, "every used link assigned");
            sizes[o as usize] += 1;
        }
        assert_eq!(sizes, [4, 4], "balanced halves: {owner:?}");
        // BFS growth keeps the chain contiguous: exactly one cut transition.
        let delay = vec![1.0; 8];
        let cuts: usize = views
            .iter()
            .flat_map(|p| p.windows(2))
            .filter(|pair| owner[pair[0] as usize] != owner[pair[1] as usize])
            .count();
        assert_eq!(cuts, 1, "{owner:?}");
        assert_eq!(partition_lookahead(&views, &owner, &delay), 1.0);
    }

    #[test]
    fn single_shard_has_infinite_lookahead() {
        let paths = chain_paths();
        let views: Vec<&[u32]> = paths.iter().map(|p| p.as_slice()).collect();
        let mut owner = vec![u32::MAX; 8];
        partition_path_links(&views, 1, &mut owner);
        assert!(owner.iter().all(|&o| o == 0));
        assert_eq!(
            partition_lookahead(&views, &owner, &[0.5; 8]),
            f64::INFINITY
        );
    }

    #[test]
    fn lookahead_is_minimum_upstream_delay_of_the_cut() {
        // Two links in different shards; the upstream link's delay bounds
        // the window, whatever the downstream delay is.
        let paths: Vec<&[u32]> = vec![&[0, 1]];
        let owner = vec![0, 1];
        assert_eq!(partition_lookahead(&paths, &owner, &[0.002, 1e9]), 0.002);
    }

    #[test]
    fn more_shards_than_links_leaves_no_shard_oversized() {
        let paths: Vec<&[u32]> = vec![&[2, 5]];
        let mut owner = vec![u32::MAX; 6];
        let used = partition_path_links(&paths, 4, &mut owner);
        assert_eq!(used, 2);
        assert!(owner[2] < 4 && owner[5] < 4);
        // Unreferenced links are untouched.
        assert_eq!(owner[0], u32::MAX);
        assert_eq!(owner[1], u32::MAX);
    }

    #[test]
    fn empty_and_degenerate_paths_assign_nothing() {
        let views: Vec<&[u32]> = vec![&[]];
        let mut owner = vec![7u32; 3];
        assert_eq!(partition_path_links(&views, 3, &mut owner), 0);
        assert_eq!(owner, vec![7, 7, 7]);
        assert_eq!(
            partition_lookahead(&views, &owner, &[1.0; 3]),
            f64::INFINITY
        );
    }

    #[test]
    fn disconnected_islands_fill_least_loaded_shards() {
        // Four independent 2-link paths, 3 shards: 8 links, target 3 — the
        // heuristic must still assign every link to a valid shard.
        let paths: Vec<&[u32]> = vec![&[0, 1], &[2, 3], &[4, 5], &[6, 7]];
        let mut owner = vec![u32::MAX; 8];
        let used = partition_path_links(&paths, 3, &mut owner);
        assert_eq!(used, 8);
        let mut sizes = [0usize; 3];
        for &o in &owner {
            assert!(o < 3);
            sizes[o as usize] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 8);
        assert!(sizes.iter().all(|&s| s <= 3), "{sizes:?}");
        // Islands have no inter-island adjacency, so at most the island that
        // hits the balanced size cap is split — the cut stays small.
        let cuts = paths
            .iter()
            .flat_map(|p| p.windows(2))
            .filter(|pair| owner[pair[0] as usize] != owner[pair[1] as usize])
            .count();
        assert!(cuts <= 1, "{owner:?}");
    }
}

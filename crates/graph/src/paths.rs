//! Arena-backed storage for many short paths.
//!
//! The packet simulator installs one source route per demand; at the
//! ROADMAP's "millions of users" target a `Vec<Vec<LinkId>>` routing table
//! is millions of separate heap allocations, each its own cache miss.
//! [`PathStore`] packs every path into two flat arrays — a shared link-id
//! arena plus an offset array — so the whole table is two allocations,
//! `path(k)` is a slice view, and iterating routes streams memory linearly.
//! Link ids are stored as `u32` (4 billion links is far beyond any network
//! here), halving the arena's footprint relative to `usize` ids.

use serde::{Deserialize, Serialize};

/// A compact arena of paths: `offsets[k]..offsets[k + 1]` delimits path `k`
/// in the shared `links` array. `offsets` always starts with 0 (and so is
/// never empty) — `Default` goes through [`PathStore::new`] to uphold that.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStore {
    offsets: Vec<usize>,
    links: Vec<u32>,
}

impl Default for PathStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PathStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            links: Vec::new(),
        }
    }

    /// An empty store with room for `paths` paths of `total_links` links in
    /// aggregate (no reallocation until those are exceeded).
    pub fn with_capacity(paths: usize, total_links: usize) -> Self {
        let mut offsets = Vec::with_capacity(paths + 1);
        offsets.push(0);
        Self {
            offsets,
            links: Vec::with_capacity(total_links),
        }
    }

    /// Append a path; returns its index. An empty slice records an empty
    /// path (unroutable / zero-hop demands keep their slot).
    pub fn push_path(&mut self, links: &[u32]) -> usize {
        self.links.extend_from_slice(links);
        self.offsets.push(self.links.len());
        self.offsets.len() - 2
    }

    /// Append a path from an iterator; returns its index.
    pub fn push_path_from(&mut self, links: impl IntoIterator<Item = u32>) -> usize {
        self.links.extend(links);
        self.offsets.push(self.links.len());
        self.offsets.len() - 2
    }

    /// Path `k` as a slice of link ids.
    #[inline]
    pub fn path(&self, k: usize) -> &[u32] {
        &self.links[self.offsets[k]..self.offsets[k + 1]]
    }

    /// Number of links in path `k` without materialising the slice.
    #[inline]
    pub fn path_len(&self, k: usize) -> usize {
        self.offsets[k + 1] - self.offsets[k]
    }

    /// Number of stored paths.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` when no paths are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of links across all paths (the arena length).
    #[inline]
    pub fn total_links(&self) -> usize {
        self.links.len()
    }

    /// Iterate all paths in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |k| self.path(k))
    }

    /// Drop every path, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.offsets.truncate(1);
        self.links.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_valid_empty_store() {
        let mut store = PathStore::default();
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        assert_eq!(store.push_path(&[3]), 0);
        assert_eq!(store.path(0), &[3]);
    }

    #[test]
    fn push_and_read_back() {
        let mut store = PathStore::new();
        assert!(store.is_empty());
        assert_eq!(store.push_path(&[1, 2, 3]), 0);
        assert_eq!(store.push_path(&[]), 1);
        assert_eq!(store.push_path_from([7u32, 8]), 2);
        assert_eq!(store.len(), 3);
        assert_eq!(store.path(0), &[1, 2, 3]);
        assert_eq!(store.path(1), &[] as &[u32]);
        assert_eq!(store.path(2), &[7, 8]);
        assert_eq!(store.path_len(0), 3);
        assert_eq!(store.path_len(1), 0);
        assert_eq!(store.total_links(), 5);
    }

    #[test]
    fn iter_visits_paths_in_order() {
        let mut store = PathStore::with_capacity(2, 4);
        store.push_path(&[4]);
        store.push_path(&[5, 6]);
        let collected: Vec<Vec<u32>> = store.iter().map(|p| p.to_vec()).collect();
        assert_eq!(collected, vec![vec![4], vec![5, 6]]);
    }

    #[test]
    fn clear_keeps_allocations() {
        let mut store = PathStore::with_capacity(4, 16);
        store.push_path(&[1, 2]);
        store.push_path(&[3]);
        let arena_ptr = store.links.as_ptr();
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.total_links(), 0);
        store.push_path(&[9]);
        assert_eq!(store.path(0), &[9]);
        assert_eq!(store.links.as_ptr(), arena_ptr, "arena reused");
    }

    #[test]
    #[should_panic]
    fn out_of_range_path_panics() {
        PathStore::new().path(0);
    }
}

//! Offline stand-in for the subset of `rayon` the workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! drop-in for the rayon API surface the design engine relies on:
//! `par_iter()` / `into_par_iter()` on slices, `Vec`s and `Range<usize>`,
//! followed by `map`, `filter`, `enumerate`, `collect`, `min_by`, `max_by`,
//! `for_each` and `sum`. Code written against this shim compiles unchanged
//! against real rayon.
//!
//! The execution model is deliberately simple: adapters are *eager*. `map`
//! splits the items into one contiguous chunk per available core, runs the
//! closure on `std::thread::scope` threads, and reassembles the results in
//! input order; everything downstream of the parallel map is sequential.
//! That matches how the design engine uses parallelism (one expensive O(n²)
//! scoring closure per item, trivial reduction) — work-stealing would buy
//! nothing there. Results are deterministic: output order never depends on
//! thread scheduling.

use std::cmp::Ordering;
use std::iter::Sum;
use std::ops::Range;
use std::thread;

/// Number of worker threads a parallel map fans out to.
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// An eager "parallel iterator": a materialised, ordered batch of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// `rayon::prelude` parity so `use rayon::prelude::*;` works unchanged.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Convert.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Run `f` over `items` on scoped threads, one contiguous chunk per core,
/// preserving input order in the output.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into `workers` contiguous chunks whose sizes differ by ≤ 1.
    let base = len / workers;
    let remainder = len % workers;
    let mut rest = items;
    let mut chunks = Vec::with_capacity(workers);
    for w in 0..workers {
        let size = base + usize::from(w < remainder);
        let tail = rest.split_off(size);
        chunks.push(rest);
        rest = tail;
    }
    debug_assert!(rest.is_empty());

    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel (this is where the fan-out runs).
    pub fn map<R: Send>(self, f: impl Fn(T) -> R + Sync) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Keep items matching the predicate (evaluated in parallel).
    pub fn filter(self, pred: impl Fn(&T) -> bool + Sync) -> ParIter<T> {
        let keep: Vec<(T, bool)> = parallel_map(self.items, |item| {
            let k = pred(&item);
            (item, k)
        });
        ParIter {
            items: keep
                .into_iter()
                .filter_map(|(item, k)| k.then_some(item))
                .collect(),
        }
    }

    /// Pair every item with its input-order index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` on every item in parallel, discarding results.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        parallel_map(self.items, f);
    }

    /// Collect into any `FromIterator` collection, preserving input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Minimum under a comparator (first minimum in input order, like rayon
    /// over an indexed iterator).
    pub fn min_by(self, cmp: impl Fn(&T, &T) -> Ordering) -> Option<T> {
        self.items.into_iter().reduce(|best, x| {
            if cmp(&x, &best) == Ordering::Less {
                x
            } else {
                best
            }
        })
    }

    /// Maximum under a comparator (last maximum in input order).
    pub fn max_by(self, cmp: impl Fn(&T, &T) -> Ordering) -> Option<T> {
        self.items.into_iter().reduce(|best, x| {
            if cmp(&x, &best) == Ordering::Less {
                best
            } else {
                x
            }
        })
    }

    /// Sum the items.
    pub fn sum<S: Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..17usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 17);
        assert_eq!(out[0], 1);
        assert_eq!(out[16], 17);
    }

    #[test]
    fn min_by_matches_sequential() {
        let v = vec![5.0, 2.0, 9.0, 2.0, 7.0];
        let m = v
            .par_iter()
            .map(|&x| x)
            .min_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(m, Some(2.0));
    }

    #[test]
    fn filter_and_sum() {
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v.into_par_iter().filter(|x| x % 2 == 0).sum();
        assert_eq!(s, (0..100).filter(|x| x % 2 == 0).sum::<u64>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}

//! Offline stand-in for the subset of `rand` 0.8 the workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen::<T>()`
//! for the primitive types. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, portable, and statistically solid for the
//! synthetic-dataset generation this repo does. Streams are NOT bit-compatible
//! with the real `rand` crate; everything downstream only relies on
//! determinism, not on specific values.

use std::ops::Range;

/// Core source of randomness (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (stand-in for `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of a primitive type uniformly (`Standard` distribution).
    fn gen<T: SampleUniformPrimitive>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types samplable from raw bits (stand-in for `Standard`).
pub trait SampleUniformPrimitive {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformPrimitive for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformPrimitive for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniformPrimitive for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleUniformPrimitive for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniformPrimitive for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformPrimitive for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable with [`Rng::gen_range`] over a half-open range.
pub trait SampleRange: Sized {
    /// Draw one value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_u64() % (range.end - range.start)
    }
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..4.5);
            assert!((-2.0..4.5).contains(&f));
        }
    }
}

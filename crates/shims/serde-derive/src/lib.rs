//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a minimal serde facade (see the sibling `serde` shim). Types only ever use
//! `#[derive(Serialize, Deserialize)]` as a marker — nothing in the workspace
//! actually serialises — so the derives accept the attribute syntax
//! (including `#[serde(...)]` field/variant attributes) and expand to nothing.
//! The shim `serde` crate provides blanket trait impls instead.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

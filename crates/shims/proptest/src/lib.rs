//! Offline stand-in for the subset of `proptest` the workspace's property
//! tests use: range strategies over the numeric primitives, tuple strategies,
//! `prop_map`, `Just`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design: no shrinking (a failing case
//! panics with the generated inputs unshrunk) and a fixed deterministic seed
//! per test (derived from the test's name), so failures are reproducible
//! across runs and machines.

use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration (`ProptestConfig` parity).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            max_global_rejects: cases.saturating_mul(64).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject(String),
    /// `prop_assert!`-family failure; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Construct a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Per-case result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator driving the strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so every test has its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (`proptest::strategy::Strategy` parity, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy (`Just` parity).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Drive one property: run `body` until `config.cases` accepted cases pass.
/// Panics on the first failing case, printing the failure message.
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    body: impl Fn(&mut TestRng) -> TestCaseResult,
) {
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}) for {} accepted cases",
                        accepted
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest '{name}' failed after {accepted} passing cases: {message}");
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// The test-defining macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            $crate::run_proptest($config, stringify!($name), |proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), proptest_rng);)*
                $body
                Ok(())
            });
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!`: fail the current case (with no shrinking) if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!` parity.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert_ne!` parity.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// `prop_assume!`: reject the current case if the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3.0..7.0f64, n in 10usize..20) {
            prop_assert!((3.0..7.0).contains(&x));
            prop_assert!((10..20).contains(&n));
        }

        #[test]
        fn prop_map_and_tuples(p in (0.0..1.0f64, 5u64..9).prop_map(|(a, b)| a + b as f64)) {
            prop_assert!((5.0..10.0).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn default_config_has_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        crate::run_proptest(ProptestConfig::with_cases(8), "direct", |rng| {
            let v = crate::Strategy::generate(&(0u8..4), rng);
            if v > 3 {
                return Err(TestCaseError::fail("out of range"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        crate::run_proptest(ProptestConfig::with_cases(8), "fails", |_rng| {
            Err(TestCaseError::fail("always"))
        });
    }
}

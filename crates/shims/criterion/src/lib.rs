//! Offline stand-in for the subset of `criterion` the workspace's benches
//! use: `Criterion::bench_function`, benchmark groups with `sample_size` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Benches are declared with
//! `harness = false`, exactly as with real criterion, so swapping the real
//! crate back in is a manifest-only change.
//!
//! Measurement is deliberately simple: each benchmark is warmed up, the
//! iteration count is calibrated so one sample takes ~`target_sample_time`,
//! and the mean/min over the samples is printed as text. There is no HTML
//! report and no statistical regression analysis — the point is a stable
//! relative signal (e.g. serial vs parallel scoring) in an offline build.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once, so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample target time for calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(120);

/// The benchmark driver.
pub struct Criterion {
    /// `--test` mode: run each body once and skip measurement.
    quick: bool,
    /// Substring filter from the command line (first free argument).
    filter: Option<String>,
    /// Samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick =
            args.iter().any(|a| a == "--test") || std::env::var_os("CISP_BENCH_QUICK").is_some();
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Self {
            quick,
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(
            name,
            self.quick,
            self.filter.as_deref(),
            self.sample_size,
            f,
        );
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the per-sample measurement time (accepted for API parity).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(
            &full,
            self.criterion.quick,
            self.criterion.filter.as_deref(),
            samples,
            f,
        );
        self
    }

    /// Run one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.to_string(), |b| f(b, input))
    }

    /// Close the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayable parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark body; `iter` does the timing.
pub struct Bencher {
    mode: BenchMode,
    /// Mean nanoseconds per iteration over measured samples.
    result_ns: Option<(f64, f64)>, // (mean, min)
}

enum BenchMode {
    /// Run the routine exactly once (`--test`).
    Once,
    /// Calibrate then measure `samples` samples.
    Measure { samples: usize },
}

impl Bencher {
    /// Time the routine.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Once => {
                black_box(routine());
            }
            BenchMode::Measure { samples } => {
                // Warm-up + calibration: find an iteration count whose batch
                // takes roughly TARGET_SAMPLE_TIME.
                let mut iters: u64 = 1;
                let per_iter_ns = loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(20) || iters >= 1 << 24 {
                        break elapsed.as_nanos() as f64 / iters as f64;
                    }
                    iters *= 8;
                };
                let batch = ((TARGET_SAMPLE_TIME.as_nanos() as f64 / per_iter_ns).ceil() as u64)
                    .clamp(1, 1 << 24);

                let mut total_ns = 0.0;
                let mut min_ns = f64::INFINITY;
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let sample_ns = start.elapsed().as_nanos() as f64 / batch as f64;
                    total_ns += sample_ns;
                    min_ns = min_ns.min(sample_ns);
                }
                self.result_ns = Some((total_ns / samples as f64, min_ns));
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    quick: bool,
    filter: Option<&str>,
    samples: usize,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    if quick {
        let mut bencher = Bencher {
            mode: BenchMode::Once,
            result_ns: None,
        };
        f(&mut bencher);
        println!("bench {name:<48} ... ok (--test mode)");
        return;
    }
    let mut bencher = Bencher {
        mode: BenchMode::Measure {
            samples: samples.max(2),
        },
        result_ns: None,
    };
    f(&mut bencher);
    match bencher.result_ns {
        Some((mean, min)) => {
            println!(
                "bench {name:<48} mean {:>12}  min {:>12}",
                format_ns(mean),
                format_ns(min)
            );
        }
        None => println!("bench {name:<48} ... no measurement (iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("solve", 12).to_string(), "solve/12");
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}

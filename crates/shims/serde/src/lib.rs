//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that
//! a real serde can be dropped in when the build environment has registry
//! access, but no code path in the repo actually serialises anything. This
//! shim keeps the same names importable — trait + derive macro under each of
//! `serde::Serialize` and `serde::Deserialize`, exactly like serde with the
//! `derive` feature — while the traits are satisfied by blanket impls and the
//! derives (from the sibling `serde_derive` shim) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace parity with `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

//! The hybrid microwave + fiber topology and its latency evaluation.
//!
//! A [`HybridTopology`] holds the designed network: the sites, the
//! latency-equivalent fiber distance between every pair (always available, at
//! negligible cost), and the subset of direct microwave links that were
//! built. Its central operation is the all-pairs *effective distance* — the
//! shortest latency-equivalent distance over any mix of fiber and built MW
//! links — from which per-pair stretch and the traffic-weighted mean stretch
//! (the design objective) follow.
//!
//! The same incremental-update primitive the evaluation uses
//! ([`improve_with_link`]) is what makes the greedy designer fast: adding a
//! single edge to a metric-closed distance matrix can only reroute a pair
//! through that edge once, so the update `D'[s][t] = min(D[s][t],
//! D[s][i]+m+D[j][t], D[s][j]+m+D[i][t])` is exact.

use cisp_geo::{geodesic, latency, GeoPoint};
use serde::{Deserialize, Serialize};

use crate::links::CandidateLink;

/// Apply the exact one-edge improvement to a metric-closed distance matrix.
///
/// `matrix` must be symmetric and satisfy the triangle inequality (which the
/// fiber matrix and every matrix produced by repeated application of this
/// function do). Returns the number of pairs whose distance improved.
pub fn improve_with_link(matrix: &mut [Vec<f64>], i: usize, j: usize, length: f64) -> usize {
    let n = matrix.len();
    assert!(i < n && j < n && i != j);
    assert!(length >= 0.0);
    let mut improved = 0;
    for s in 0..n {
        // Pre-read column entries to avoid aliasing issues.
        let d_si = matrix[s][i];
        let d_sj = matrix[s][j];
        for t in 0..n {
            let via_ij = d_si + length + matrix[j][t];
            let via_ji = d_sj + length + matrix[i][t];
            let best = via_ij.min(via_ji);
            if best < matrix[s][t] {
                matrix[s][t] = best;
                improved += 1;
            }
        }
    }
    improved
}

/// The designed hybrid network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridTopology {
    /// Site locations.
    sites: Vec<GeoPoint>,
    /// Traffic weight `h_ij ∈ [0, 1]` for each unordered pair, stored as a
    /// full symmetric matrix with zero diagonal.
    traffic: Vec<Vec<f64>>,
    /// Geodesic distance between every pair of sites (km).
    geodesic_km: Vec<Vec<f64>>,
    /// Latency-equivalent fiber distance between every pair (km, already
    /// including the 1.5× propagation factor). `INFINITY` if no fiber.
    fiber_km: Vec<Vec<f64>>,
    /// Built microwave links.
    mw_links: Vec<CandidateLink>,
    /// Cached effective distance matrix (fiber ∪ built MW links).
    effective_km: Vec<Vec<f64>>,
}

impl HybridTopology {
    /// Create a topology with no microwave links built yet.
    ///
    /// `traffic` and `fiber_km` must be `n × n`; the traffic matrix is used
    /// as weights and is not required to be normalised.
    pub fn new(sites: Vec<GeoPoint>, traffic: Vec<Vec<f64>>, fiber_km: Vec<Vec<f64>>) -> Self {
        let n = sites.len();
        assert!(n >= 2, "need at least two sites");
        assert_eq!(traffic.len(), n);
        assert_eq!(fiber_km.len(), n);
        for row in traffic.iter().chain(fiber_km.iter()) {
            assert_eq!(row.len(), n);
        }
        let geodesic_km: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]))
                    .collect()
            })
            .collect();
        let effective_km = fiber_km.clone();
        Self {
            sites,
            traffic,
            geodesic_km,
            fiber_km,
            mw_links: Vec::new(),
            effective_km,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Site locations.
    pub fn sites(&self) -> &[GeoPoint] {
        &self.sites
    }

    /// The built microwave links.
    pub fn mw_links(&self) -> &[CandidateLink] {
        &self.mw_links
    }

    /// The traffic weight matrix.
    pub fn traffic(&self) -> &[Vec<f64>] {
        &self.traffic
    }

    /// Geodesic distance between two sites in km.
    pub fn geodesic_km(&self, a: usize, b: usize) -> f64 {
        self.geodesic_km[a][b]
    }

    /// Latency-equivalent fiber distance between two sites in km.
    pub fn fiber_km(&self, a: usize, b: usize) -> f64 {
        self.fiber_km[a][b]
    }

    /// Effective latency-equivalent distance between two sites in km over the
    /// built network.
    pub fn effective_km(&self, a: usize, b: usize) -> f64 {
        self.effective_km[a][b]
    }

    /// The full effective distance matrix.
    pub fn effective_matrix(&self) -> &[Vec<f64>] {
        &self.effective_km
    }

    /// One-way latency between two sites in milliseconds over the built
    /// network.
    pub fn latency_ms(&self, a: usize, b: usize) -> f64 {
        latency::c_latency_ms(self.effective_km[a][b])
    }

    /// Add a microwave link to the topology, updating the effective distance
    /// matrix incrementally (exact).
    pub fn add_mw_link(&mut self, link: CandidateLink) {
        assert!(link.site_a < self.num_sites() && link.site_b < self.num_sites());
        improve_with_link(
            &mut self.effective_km,
            link.site_a,
            link.site_b,
            link.mw_length_km,
        );
        self.mw_links.push(link);
    }

    /// Stretch of a pair over the built network (effective latency relative
    /// to c-latency of the geodesic).
    pub fn stretch(&self, a: usize, b: usize) -> f64 {
        latency::distance_stretch(self.effective_km[a][b], self.geodesic_km[a][b])
    }

    /// Traffic-weighted mean stretch over all pairs — the design objective.
    /// Pairs with zero traffic or zero geodesic distance are skipped.
    pub fn mean_stretch(&self) -> f64 {
        let n = self.num_sites();
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let h = self.traffic[i][j];
                if h > 0.0 && self.geodesic_km[i][j] > 0.0 && self.effective_km[i][j].is_finite() {
                    pairs.push((h, self.stretch(i, j)));
                }
            }
        }
        latency::weighted_mean_stretch(&pairs).unwrap_or(1.0)
    }

    /// Unweighted stretch values for every pair with positive geodesic
    /// distance (used for CDFs such as Fig. 7).
    pub fn all_stretches(&self) -> Vec<f64> {
        let n = self.num_sites();
        let mut out = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.geodesic_km[i][j] > 0.0 && self.effective_km[i][j].is_finite() {
                    out.push(self.stretch(i, j));
                }
            }
        }
        out
    }

    /// Mean stretch that would result from additionally building `link`,
    /// without mutating the topology. Used by the greedy designer to score
    /// candidates.
    pub fn mean_stretch_with(&self, link: &CandidateLink) -> f64 {
        let n = self.num_sites();
        let (i, j, m) = (link.site_a, link.site_b, link.mw_length_km);
        let mut num = 0.0;
        let mut den = 0.0;
        for s in 0..n {
            let d_si = self.effective_km[s][i];
            let d_sj = self.effective_km[s][j];
            for t in (s + 1)..n {
                let h = self.traffic[s][t];
                let geo = self.geodesic_km[s][t];
                if h <= 0.0 || geo <= 0.0 {
                    continue;
                }
                let current = self.effective_km[s][t];
                let candidate = (d_si + m + self.effective_km[j][t])
                    .min(d_sj + m + self.effective_km[i][t])
                    .min(current);
                if candidate.is_finite() {
                    num += h * candidate / geo;
                    den += h;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            1.0
        }
    }

    /// Total cost, in towers, of the built microwave links (the budget
    /// currency of the design problem).
    pub fn total_tower_cost(&self) -> usize {
        self.mw_links.iter().map(|l| l.tower_count).sum()
    }

    /// Rebuild the effective matrix from scratch (fiber plus all built MW
    /// links). Only needed by callers that mutate links wholesale, e.g. the
    /// weather failure analysis which removes links.
    pub fn recompute_effective(&mut self) {
        self.effective_km = self.fiber_km.clone();
        let links = self.mw_links.clone();
        for l in &links {
            improve_with_link(&mut self.effective_km, l.site_a, l.site_b, l.mw_length_km);
        }
    }

    /// Effective distance matrix that would result from disabling the given
    /// subset of built MW links (by index into [`Self::mw_links`]); the
    /// topology itself is not modified. Used for weather-failure analysis.
    pub fn effective_matrix_without(&self, disabled: &[usize]) -> Vec<Vec<f64>> {
        let mut matrix = self.fiber_km.clone();
        for (idx, l) in self.mw_links.iter().enumerate() {
            if !disabled.contains(&idx) {
                improve_with_link(&mut matrix, l.site_a, l.site_b, l.mw_length_km);
            }
        }
        matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three sites in a line: A (west), B (middle), C (east), ~400 km apart.
    fn line_sites() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -95.3),
            GeoPoint::new(40.0, -90.6),
        ]
    }

    fn uniform_traffic(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
            .collect()
    }

    /// Fiber at 2× geodesic-equivalent (circuitous + slow).
    fn fiber_matrix(sites: &[GeoPoint]) -> Vec<Vec<f64>> {
        (0..sites.len())
            .map(|i| {
                (0..sites.len())
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 2.0)
                    .collect()
            })
            .collect()
    }

    fn mw_link(a: usize, b: usize, length: f64, towers: usize) -> CandidateLink {
        CandidateLink {
            site_a: a.min(b),
            site_b: a.max(b),
            mw_length_km: length,
            tower_count: towers,
            tower_path: (0..towers).collect(),
        }
    }

    #[test]
    fn fiber_only_topology_has_fiber_stretch() {
        let sites = line_sites();
        let fiber = fiber_matrix(&sites);
        let topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber);
        // Stretch = 2.0 everywhere by construction.
        assert!((topo.mean_stretch() - 2.0).abs() < 1e-9);
        assert!((topo.stretch(0, 2) - 2.0).abs() < 1e-9);
        assert_eq!(topo.total_tower_cost(), 0);
    }

    #[test]
    fn adding_a_direct_mw_link_reduces_stretch_for_that_pair() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        assert!((topo.stretch(0, 2) - 1.02).abs() < 1e-9);
        // Other pairs may also improve (via the new link), never get worse.
        assert!(topo.stretch(0, 1) <= 2.0 + 1e-9);
        assert!(topo.mean_stretch() < 2.0);
        assert_eq!(topo.total_tower_cost(), 8);
    }

    #[test]
    fn mw_links_compose_across_hops() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.01, 5));
        topo.add_mw_link(mw_link(1, 2, geo12 * 1.01, 5));
        // A–C should now route over the two MW links (sites are collinear, so
        // the concatenation is ≈1.01× the A–C geodesic).
        let stretch = topo.stretch(0, 2);
        assert!(stretch < 1.05, "stretch = {stretch}");
        assert!((topo.effective_km(0, 2) - (geo01 + geo12) * 1.01).abs() < 1e-6);
        assert!(topo.effective_km(0, 2) < geo02 * 2.0);
    }

    #[test]
    fn mean_stretch_with_matches_actual_addition() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber.clone());
        let link = mw_link(0, 2, geo02 * 1.03, 8);
        let predicted = topo.mean_stretch_with(&link);
        let mut topo2 = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo2.add_mw_link(link);
        assert!((predicted - topo2.mean_stretch()).abs() < 1e-9);
    }

    #[test]
    fn improve_with_link_is_exact_vs_recompute() {
        let sites = line_sites();
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber);
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.02, 4));
        topo.add_mw_link(mw_link(1, 2, geo12 * 1.04, 4));
        let incremental = topo.effective_matrix().to_vec();
        topo.recompute_effective();
        for i in 0..3 {
            for j in 0..3 {
                assert!((incremental[i][j] - topo.effective_km(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn effective_matrix_without_disables_links() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        let without = topo.effective_matrix_without(&[0]);
        assert!((without[0][2] - geo02 * 2.0).abs() < 1e-9, "back to fiber");
        // Disabling nothing reproduces the current matrix.
        let with = topo.effective_matrix_without(&[]);
        assert!((with[0][2] - geo02 * 1.02).abs() < 1e-9);
    }

    #[test]
    fn stretch_never_below_one_with_sane_links() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.0, 3));
        for s in topo.all_stretches() {
            assert!(s >= 1.0 - 1e-9, "stretch {s} below physical bound");
        }
    }

    #[test]
    fn traffic_weights_bias_mean_stretch() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        // Heavy traffic on the 0–1 pair only.
        let mut traffic = uniform_traffic(3);
        traffic[0][1] = 100.0;
        traffic[1][0] = 100.0;
        let mut topo = HybridTopology::new(sites, traffic, fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.01, 3));
        // Mean stretch is dominated by the improved pair.
        assert!(topo.mean_stretch() < 1.1);
    }

    #[test]
    #[should_panic]
    fn mismatched_matrix_sizes_panic() {
        let sites = line_sites();
        HybridTopology::new(sites, uniform_traffic(2), vec![vec![0.0; 3]; 3]);
    }
}

//! The hybrid microwave + fiber topology and its latency evaluation.
//!
//! A [`HybridTopology`] holds the designed network: the sites, the
//! latency-equivalent fiber distance between every pair (always available, at
//! negligible cost), and the subset of direct microwave links that were
//! built. Its central operation is the all-pairs *effective distance* — the
//! shortest latency-equivalent distance over any mix of fiber and built MW
//! links — from which per-pair stretch and the traffic-weighted mean stretch
//! (the design objective) follow.
//!
//! All matrices live in the flat row-major [`DistMatrix`] engine from
//! `cisp_graph` — one contiguous allocation per matrix, slice-view rows, and
//! a `memcpy`-refillable scratch representation — because these all-pairs
//! sweeps are the design loop's hot path.
//!
//! The same incremental-update primitive the evaluation uses
//! ([`improve_with_link`]) is what makes the greedy designer fast: adding a
//! single edge to a metric-closed distance matrix can only reroute a pair
//! through that edge once, so the update `D'[s][t] = min(D[s][t],
//! D[s][i]+m+D[j][t], D[s][j]+m+D[i][t])` is exact.

use cisp_geo::latency::StretchAccumulator;
use cisp_geo::units::FIBER_LATENCY_FACTOR;
use cisp_geo::{geodesic, latency, GeoPoint};
use cisp_graph::{pair_index, BitSet, DistMatrix, PathStore, UpperTriangleMatrix};
use serde::{Deserialize, Serialize};

use crate::links::CandidateLink;

// The exact one-edge improvement kernels live in the `cisp_graph` matrix
// engine next to the storage they sweep; re-exported here because the design
// and weather layers reach them through the topology module.
pub use cisp_graph::matrix::{improve_with_link, improve_with_link_tracked, ImprovedPairs};

// Conduit-backed topologies are built from (and hand out) the data layer's
// conduit types; re-exported so consumers of the conduit API need not
// depend on `cisp_data` directly.
pub use cisp_data::fiber::{FiberLink, FiberNetwork};

/// Traffic-weighted mean stretch of `effective` against `geodesic`, weighted
/// by `traffic`, over the strict upper triangle. Pairs with zero traffic,
/// zero geodesic distance or non-finite effective distance are skipped;
/// returns 1.0 when no pair qualifies. The weighted-average convention is
/// [`cisp_geo::latency::StretchAccumulator`]'s — shared with the slice-based
/// `cisp_geo::latency::weighted_mean_stretch`.
pub fn weighted_mean_stretch(
    effective: &DistMatrix,
    geodesic: &DistMatrix,
    traffic: &DistMatrix,
) -> f64 {
    let n = effective.n();
    let mut acc = StretchAccumulator::new();
    for s in 0..n {
        let eff_row = effective.row(s);
        let geo_row = geodesic.row(s);
        let h_row = traffic.row(s);
        for t in (s + 1)..n {
            let geo = geo_row[t];
            if geo > 0.0 && eff_row[t].is_finite() {
                acc.add(h_row[t], eff_row[t] / geo);
            }
        }
    }
    acc.mean().unwrap_or(1.0)
}

/// Traffic-weighted mean stretch that would result from adding one link of
/// latency-equivalent length `m` between `i` and `j` to the metric-closed
/// matrix `effective`, without mutating anything. This is the designer's
/// candidate-scoring kernel: O(n²), allocation-free, and safe to run from
/// many threads against the same matrices.
pub fn mean_stretch_with_link(
    effective: &DistMatrix,
    geodesic: &DistMatrix,
    traffic: &DistMatrix,
    i: usize,
    j: usize,
    m: f64,
) -> f64 {
    let n = effective.n();
    let mut num = 0.0;
    let mut den = 0.0;
    let row_i = effective.row(i);
    let row_j = effective.row(j);
    for s in 0..n {
        let d_si = effective.get(s, i);
        let d_sj = effective.get(s, j);
        let eff_row = effective.row(s);
        let geo_row = geodesic.row(s);
        let h_row = traffic.row(s);
        for t in (s + 1)..n {
            let h = h_row[t];
            let geo = geo_row[t];
            if h <= 0.0 || geo <= 0.0 {
                continue;
            }
            let candidate = (d_si + m + row_j[t])
                .min(d_sj + m + row_i[t])
                .min(eff_row[t]);
            if candidate.is_finite() {
                num += h * candidate / geo;
                den += h;
            }
        }
    }
    if den > 0.0 {
        num / den
    } else {
        1.0
    }
}

/// Accumulator lanes of the compact scoring kernel. Eight f64 lanes span two
/// AVX2 registers (or four SSE2 ones); the fixed width keeps the horizontal
/// reduction order — and therefore the result — identical on every machine
/// and across serial vs sharded runs.
const LANES: usize = 8;

/// Precomputed, compacted scoring weights for one design run.
///
/// [`mean_stretch_with_link`] re-derives `h/geo` and re-tests the
/// `h <= 0 || geo <= 0` skip and the finiteness of every effective distance
/// on each of its O(n²) iterations. Over a design run none of that changes:
/// traffic and geodesic distances are fixed, and once every scored pair has a
/// finite effective distance it stays finite (link additions only shrink
/// distances). `ScoringWeights` hoists all of it out — a dense symmetric
/// `h/geo` weight matrix (zero where a pair is skipped), per-row nonzero
/// column spans over the strict upper triangle, and the constant denominator
/// `Σh` — so the per-candidate kernel
/// ([`mean_stretch_with_link_compact`]) becomes a branchless fused
/// multiply-add sweep.
///
/// [`ScoringWeights::compute`] returns `None` when the invariant does not
/// hold (some scored pair is unreachable, or no pair carries traffic);
/// callers then stay on the scalar kernel, whose per-pair finiteness test
/// handles pairs that become reachable mid-run.
#[derive(Debug, Clone)]
pub struct ScoringWeights {
    /// Dense symmetric `h/geo` weight matrix; zero where the pair is skipped.
    weights: DistMatrix,
    /// Per-row `[lo, hi)` column span containing every nonzero weight in the
    /// strict upper triangle (`lo >= hi` for rows with none).
    span: Vec<(u32, u32)>,
    /// `Σ h` over scored pairs — the kernel's constant denominator.
    den: f64,
    /// `Σ h/geo` over scored pairs — the gain bound's total weight mass.
    wsum: f64,
    /// Gain-bound parameters, set by [`Self::enable_gain_bounds`] once the
    /// effective matrix is verified metric.
    bounds: Option<GainBoundParams>,
}

#[derive(Debug, Clone, Copy)]
struct GainBoundParams {
    /// Absolute distance slack absorbing float noise in triangle-inequality
    /// arguments (a few ulps of the largest finite distance).
    slack_km: f64,
}

/// Relative tolerance of the one-time metricity check gating the gain
/// bounds. Great-circle distances of near-collinear triples computed
/// independently violate the triangle inequality by ~1e-10 relative; 1e-8
/// leaves two orders of margin while staying far below any real detour.
const METRIC_REL_TOL: f64 = 1e-8;

impl ScoringWeights {
    /// Precompute the compact weights for scoring against matrices that
    /// start from `effective`. Returns `None` when some traffic-carrying
    /// pair has a non-finite effective distance (the constant-denominator
    /// invariant would not hold) or when no pair qualifies at all.
    pub fn compute(
        effective: &DistMatrix,
        geodesic: &DistMatrix,
        traffic: &DistMatrix,
    ) -> Option<Self> {
        let n = effective.n();
        let mut weights = DistMatrix::zeros(n);
        let mut span = vec![(0u32, 0u32); n];
        let mut den = 0.0;
        let mut wsum = 0.0;
        for (s, sp) in span.iter_mut().enumerate() {
            let eff_row = effective.row(s);
            let geo_row = geodesic.row(s);
            let h_row = traffic.row(s);
            let mut lo = n;
            let mut hi = 0;
            for t in (s + 1)..n {
                let h = h_row[t];
                let geo = geo_row[t];
                if h <= 0.0 || geo <= 0.0 {
                    continue;
                }
                if !eff_row[t].is_finite() {
                    return None;
                }
                let w = h / geo;
                weights.set_sym(s, t, w);
                den += h;
                wsum += w;
                lo = lo.min(t);
                hi = t + 1;
            }
            if lo < hi {
                *sp = (lo as u32, hi as u32);
            }
        }
        if den <= 0.0 {
            return None;
        }
        Some(Self {
            weights,
            span,
            den,
            wsum,
            bounds: None,
        })
    }

    /// The dense symmetric `h/geo` weight matrix (zero where skipped).
    pub fn weights(&self) -> &DistMatrix {
        &self.weights
    }

    /// The constant scoring denominator `Σ h`.
    pub fn den(&self) -> f64 {
        self.den
    }

    /// Total weight mass `Σ h/geo` over scored pairs.
    pub fn wsum(&self) -> f64 {
        self.wsum
    }

    /// Verify that `effective` satisfies the triangle inequality (within
    /// float tolerance) and, if so, arm the O(1) pruning bounds
    /// ([`Self::gain_upper_bound`], [`Self::row_skip_slack_km`]). Returns
    /// whether bounds were armed.
    ///
    /// The bounds' soundness rests on metricity, which
    /// [`improve_with_link`] preserves — so one check against the run's
    /// starting matrix covers every later round. Non-metric inputs (e.g.
    /// arbitrary test fixtures) simply leave bounds disabled: every bound
    /// degenerates to `+∞` and nothing is ever pruned.
    pub fn enable_gain_bounds(&mut self, effective: &DistMatrix) -> bool {
        if effective.is_metric_within(METRIC_REL_TOL) {
            let max_finite = effective
                .as_slice()
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(0.0, f64::max);
            self.bounds = Some(GainBoundParams {
                slack_km: 4.0 * METRIC_REL_TOL * max_finite,
            });
            true
        } else {
            false
        }
    }

    /// Whether [`Self::enable_gain_bounds`] armed the pruning bounds.
    pub fn has_gain_bounds(&self) -> bool {
        self.bounds.is_some()
    }

    /// Distance slack for the repair row-skip test, when bounds are armed:
    /// a candidate `(i, j, m)` can only improve some pair in row `s` of a
    /// metric matrix if `|d(s,i) - d(s,j)| > m - slack`.
    ///
    /// Proof sketch: `d(s,i) + m + d(j,t) < d(s,t) <= d(s,j) + d(j,t)`
    /// forces `d(s,i) + m < d(s,j)` (and symmetrically for the other via
    /// orientation); the slack absorbs the metricity check's tolerance.
    pub fn row_skip_slack_km(&self) -> Option<f64> {
        self.bounds.map(|b| b.slack_km)
    }

    /// Upper bound on the mean-stretch gain any candidate link `(i, j)` of
    /// length `m` can achieve when the endpoints are currently `d_ij` apart
    /// (`+∞` when bounds are disabled or `d_ij` is not finite).
    ///
    /// On a metric matrix no pair can improve by more than `d_ij - m`
    /// (`d(s,t) <= d(s,i) + d_ij + d(j,t)`, while the via costs
    /// `d(s,i) + m + d(j,t)`), so the gain is at most
    /// `Σw · (d_ij - m) / Σh`. The bound is inflated by the float slack so
    /// it stays an over-estimate of the computed (not just mathematical)
    /// gain; an inflated bound only costs an unnecessary exact score, never
    /// a wrong pruning decision.
    pub fn gain_upper_bound(&self, d_ij: f64, m: f64) -> f64 {
        match self.bounds {
            Some(b) if d_ij.is_finite() => {
                let headroom = ((d_ij - m) + b.slack_km).max(0.0);
                (self.wsum * headroom / self.den) * (1.0 + 1e-9) + 1e-12
            }
            _ => f64::INFINITY,
        }
    }
}

/// Compact-weights variant of [`mean_stretch_with_link`]: the designer's
/// vectorisable exact scoring kernel.
///
/// Requires a [`ScoringWeights`] computed against a matrix this `effective`
/// descends from by link additions (distances only shrink, so every scored
/// pair stays finite and the denominator stays constant). The inner loop is
/// branchless — the skip branch lives in the precomputed weights (zero
/// weight) and per-row spans, the finiteness test in a `min(f64::MAX)`
/// clamp (exact for scored pairs, which are finite; it only guards the
/// `0 · ∞ = NaN` hazard on zero-weight lanes) — and accumulates in
/// [`LANES`] fixed lanes with a deterministic pairwise horizontal
/// reduction, so results are reproducible run-to-run and identical serial
/// vs sharded.
pub fn mean_stretch_with_link_compact(
    effective: &DistMatrix,
    sw: &ScoringWeights,
    i: usize,
    j: usize,
    m: f64,
) -> f64 {
    let row_i = effective.row(i);
    let row_j = effective.row(j);
    let mut acc = [0.0f64; LANES];
    let mut tail = 0.0;
    for (s, &(lo, hi)) in sw.span.iter().enumerate() {
        let (lo, hi) = (lo as usize, hi as usize);
        if lo >= hi {
            continue;
        }
        let d_si_m = row_i[s] + m;
        let d_sj_m = row_j[s] + m;
        let eff = effective.row_segment(s, lo, hi);
        let w = sw.weights.row_segment(s, lo, hi);
        let bi = &row_i[lo..hi];
        let bj = &row_j[lo..hi];
        let chunks = eff
            .chunks_exact(LANES)
            .zip(w.chunks_exact(LANES))
            .zip(bi.chunks_exact(LANES))
            .zip(bj.chunks_exact(LANES));
        for (((e, wv), vi), vj) in chunks {
            for l in 0..LANES {
                let cand = (d_si_m + vj[l]).min(d_sj_m + vi[l]).min(e[l]).min(f64::MAX);
                acc[l] += wv[l] * cand;
            }
        }
        let full = eff.len() - eff.len() % LANES;
        for l in full..eff.len() {
            let cand = (d_si_m + bj[l])
                .min(d_sj_m + bi[l])
                .min(eff[l])
                .min(f64::MAX);
            tail += w[l] * cand;
        }
    }
    let num = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    (num + tail) / sw.den
}

/// One directed hop of a conduit route: which physical segment the route
/// traverses and in which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConduitHop {
    /// Index into [`ConduitLayer::segments`].
    pub segment: u32,
    /// `true` when the segment is traversed `a → b`, `false` for `b → a`.
    pub forward: bool,
}

/// The physical fiber conduit layer of a conduit-backed topology: the
/// long-haul conduit segments plus the shortest conduit route realising
/// every site pair's fiber distance.
///
/// This is what makes conduit sharing expressible downstream: the
/// evaluation lowering emits one simulator link per *segment* (not per
/// pair), and each demand's fiber fallback rides its pair's stored hops —
/// so concurrent demands queue against each other on shared conduits, and
/// cutting a segment severs every route that traverses it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConduitLayer {
    /// The physical conduit segments, in the fiber network's order.
    segments: Vec<FiberLink>,
    /// Directed conduit-edge path per unordered site pair
    /// ([`pair_index`] order, stored `i → j` for `i < j`), in the
    /// `2·segment + direction` id convention of
    /// [`FiberNetwork::route_csr`]. Empty where unconnected.
    paths: PathStore,
    /// Number of sites the pair indexing is over.
    num_sites: usize,
}

impl ConduitLayer {
    /// The physical conduit segments.
    pub fn segments(&self) -> &[FiberLink] {
        &self.segments
    }

    /// Number of conduit segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The raw per-pair directed-conduit-edge path arena.
    pub fn paths(&self) -> &PathStore {
        &self.paths
    }

    /// The directed conduit hops of the shortest fiber route `src → dst`
    /// (empty when `src == dst` or the pair is not conduit-connected).
    pub fn hops(&self, src: usize, dst: usize) -> Vec<ConduitHop> {
        if src == dst {
            return Vec::new();
        }
        let stored = self
            .paths
            .path(pair_index(self.num_sites, src.min(dst), src.max(dst)));
        let decode = |e: u32, flip: bool| ConduitHop {
            segment: e / 2,
            forward: e.is_multiple_of(2) != flip,
        };
        if src < dst {
            stored.iter().map(|&e| decode(e, false)).collect()
        } else {
            // Stored low → high: reverse the hop order and flip each
            // traversal direction.
            stored.iter().rev().map(|&e| decode(e, true)).collect()
        }
    }
}

/// The designed hybrid network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridTopology {
    /// Site locations.
    sites: Vec<GeoPoint>,
    /// Traffic weight `h_ij ∈ [0, 1]` for each unordered pair, stored as a
    /// full symmetric matrix with zero diagonal.
    traffic: DistMatrix,
    /// Geodesic distance between every pair of sites (km).
    geodesic_km: DistMatrix,
    /// Latency-equivalent fiber distance between every pair (km, already
    /// including the 1.5× propagation factor). `INFINITY` if no fiber.
    fiber_km: DistMatrix,
    /// Built microwave links.
    mw_links: Vec<CandidateLink>,
    /// Cached effective distance matrix (fiber ∪ built MW links).
    effective_km: DistMatrix,
    /// The physical conduit layer, when the topology was built from a
    /// conduit graph ([`HybridTopology::with_conduits`]); `None` for
    /// matrix-backed topologies, whose fiber layer is purely abstract.
    conduits: Option<ConduitLayer>,
}

impl HybridTopology {
    /// Create a topology with no microwave links built yet.
    ///
    /// `traffic` and `fiber_km` must be `n × n` (anything convertible into a
    /// [`DistMatrix`], e.g. a nested `Vec<Vec<f64>>`); the traffic matrix is
    /// used as weights and is not required to be normalised.
    pub fn new(
        sites: Vec<GeoPoint>,
        traffic: impl Into<DistMatrix>,
        fiber_km: impl Into<DistMatrix>,
    ) -> Self {
        let traffic = traffic.into();
        let fiber_km = fiber_km.into();
        let n = sites.len();
        assert!(n >= 2, "need at least two sites");
        assert_eq!(traffic.n(), n, "traffic matrix must be n × n");
        assert_eq!(fiber_km.n(), n, "fiber matrix must be n × n");
        let geodesic_km = DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]));
        let effective_km = fiber_km.clone();
        Self {
            sites,
            traffic,
            geodesic_km,
            fiber_km,
            mw_links: Vec::new(),
            effective_km,
            conduits: None,
        }
    }

    /// Create a topology whose fiber layer is grounded in a physical
    /// conduit graph instead of a pre-flattened distance matrix.
    ///
    /// The dense latency-equivalent fiber matrix becomes a *derived cache*:
    /// it is computed here from the conduit graph's per-source CSR Dijkstra
    /// trees (times the 1.5× fiber propagation factor), exactly the way
    /// [`FiberNetwork::latency_equivalent_matrix`] computes it — so a
    /// conduit-backed topology is bit-identical to a matrix-backed one fed
    /// that matrix, and the design engine runs on it unchanged. What the
    /// conduit layer adds is the physical realisation: the segment list and
    /// each pair's conduit route, which the evaluation lowering and the
    /// conduit-cut scenarios consume.
    ///
    /// `fiber` must be over the same sites (same order, same coordinates).
    pub fn with_conduits(
        sites: Vec<GeoPoint>,
        traffic: impl Into<DistMatrix>,
        fiber: &FiberNetwork,
    ) -> Self {
        assert_eq!(
            fiber.sites().len(),
            sites.len(),
            "conduit graph must cover the sites"
        );
        for (s, f) in sites.iter().zip(fiber.sites()) {
            assert!(
                s.lat_deg == f.lat_deg && s.lon_deg == f.lon_deg,
                "conduit graph sites must match the topology sites exactly"
            );
        }
        let routes = fiber.shortest_routes();
        let mut fiber_km = routes.route_km;
        fiber_km.map_in_place(|d| d * FIBER_LATENCY_FACTOR);
        let mut topo = Self::new(sites, traffic, fiber_km);
        topo.conduits = Some(ConduitLayer {
            segments: fiber.links().to_vec(),
            paths: routes.paths,
            num_sites: topo.num_sites(),
        });
        topo
    }

    /// The physical conduit layer, when this topology is conduit-backed.
    pub fn conduits(&self) -> Option<&ConduitLayer> {
        self.conduits.as_ref()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Site locations.
    pub fn sites(&self) -> &[GeoPoint] {
        &self.sites
    }

    /// The built microwave links.
    pub fn mw_links(&self) -> &[CandidateLink] {
        &self.mw_links
    }

    /// The traffic weight matrix.
    pub fn traffic(&self) -> &DistMatrix {
        &self.traffic
    }

    /// The geodesic distance matrix (km).
    pub fn geodesic_matrix(&self) -> &DistMatrix {
        &self.geodesic_km
    }

    /// The fiber distance matrix (km, latency-equivalent).
    pub fn fiber_matrix(&self) -> &DistMatrix {
        &self.fiber_km
    }

    /// Geodesic distance between two sites in km.
    pub fn geodesic_km(&self, a: usize, b: usize) -> f64 {
        self.geodesic_km.get(a, b)
    }

    /// Latency-equivalent fiber distance between two sites in km.
    pub fn fiber_km(&self, a: usize, b: usize) -> f64 {
        self.fiber_km.get(a, b)
    }

    /// Effective latency-equivalent distance between two sites in km over the
    /// built network.
    pub fn effective_km(&self, a: usize, b: usize) -> f64 {
        self.effective_km.get(a, b)
    }

    /// The full effective distance matrix.
    pub fn effective_matrix(&self) -> &DistMatrix {
        &self.effective_km
    }

    /// One-way latency between two sites in milliseconds over the built
    /// network.
    pub fn latency_ms(&self, a: usize, b: usize) -> f64 {
        latency::c_latency_ms(self.effective_km.get(a, b))
    }

    /// Add a microwave link to the topology, updating the effective distance
    /// matrix incrementally (exact).
    pub fn add_mw_link(&mut self, link: CandidateLink) {
        assert!(link.site_a < self.num_sites() && link.site_b < self.num_sites());
        improve_with_link(
            &mut self.effective_km,
            link.site_a,
            link.site_b,
            link.mw_length_km,
        );
        self.mw_links.push(link);
    }

    /// Stretch of a pair over the built network (effective latency relative
    /// to c-latency of the geodesic).
    pub fn stretch(&self, a: usize, b: usize) -> f64 {
        latency::distance_stretch(self.effective_km.get(a, b), self.geodesic_km.get(a, b))
    }

    /// Traffic-weighted mean stretch over all pairs — the design objective.
    /// Pairs with zero traffic or zero geodesic distance are skipped.
    pub fn mean_stretch(&self) -> f64 {
        weighted_mean_stretch(&self.effective_km, &self.geodesic_km, &self.traffic)
    }

    /// Unweighted stretch values for every pair with positive geodesic
    /// distance (used for CDFs such as Fig. 7).
    pub fn all_stretches(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (i, j, eff) in self.effective_km.upper_triangle() {
            if self.geodesic_km.get(i, j) > 0.0 && eff.is_finite() {
                out.push(self.stretch(i, j));
            }
        }
        out
    }

    /// Mean stretch that would result from additionally building `link`,
    /// without mutating the topology. Used by the greedy designer to score
    /// candidates.
    pub fn mean_stretch_with(&self, link: &CandidateLink) -> f64 {
        mean_stretch_with_link(
            &self.effective_km,
            &self.geodesic_km,
            &self.traffic,
            link.site_a,
            link.site_b,
            link.mw_length_km,
        )
    }

    /// Total cost, in towers, of the built microwave links (the budget
    /// currency of the design problem).
    pub fn total_tower_cost(&self) -> usize {
        self.mw_links.iter().map(|l| l.tower_count).sum()
    }

    /// Rebuild the effective matrix from scratch (fiber plus all built MW
    /// links), committing every link in one batched pass
    /// ([`cisp_graph::improve_with_links`]). Only needed by callers that
    /// mutate links wholesale, e.g. the weather failure analysis which
    /// removes links.
    pub fn recompute_effective(&mut self) {
        self.effective_km.copy_from(&self.fiber_km);
        let links: Vec<(usize, usize, f64)> = self
            .mw_links
            .iter()
            .map(|l| (l.site_a, l.site_b, l.mw_length_km))
            .collect();
        cisp_graph::improve_with_links(&mut self.effective_km, &links);
    }

    /// The surviving links of a disabled-set as batch-commit triples.
    fn enabled_link_triples(&self, disabled: &[usize]) -> Vec<(usize, usize, f64)> {
        let mut mask = BitSet::new(self.mw_links.len());
        for &idx in disabled {
            // Indices beyond the current link count are tolerated (a stale
            // failure list simply has nothing to disable), matching the
            // pre-bitset `contains` behaviour.
            if idx < self.mw_links.len() {
                mask.insert(idx);
            }
        }
        self.mw_links
            .iter()
            .enumerate()
            .filter(|&(idx, _)| !mask.contains(idx))
            .map(|(_, l)| (l.site_a, l.site_b, l.mw_length_km))
            .collect()
    }

    /// Effective distance matrix that would result from disabling the given
    /// subset of built MW links (by index into [`Self::mw_links`]); the
    /// topology itself is not modified. Used for weather-failure analysis.
    pub fn effective_matrix_without(&self, disabled: &[usize]) -> DistMatrix {
        let mut matrix = self.fiber_km.clone();
        self.effective_matrix_without_into(disabled, &mut matrix);
        matrix
    }

    /// Scratch-buffer variant of [`Self::effective_matrix_without`]: refills
    /// `out` (reusing its allocation) with the effective matrix that results
    /// from disabling the given links. Callers that evaluate many failure
    /// sets — the year-long weather sweep — reuse one buffer across calls.
    /// The surviving links are committed in one batched pass
    /// ([`cisp_graph::improve_with_links`]): one matrix sweep instead of one
    /// per surviving link.
    pub fn effective_matrix_without_into(&self, disabled: &[usize], out: &mut DistMatrix) {
        out.copy_from(&self.fiber_km);
        cisp_graph::improve_with_links(out, &self.enabled_link_triples(disabled));
    }

    /// [`Self::effective_matrix_without_into`] over symmetric
    /// upper-triangle-only storage: refills `out` (reusing its allocation)
    /// with the effective distances that result from disabling the given
    /// links. Sweeps that only read unordered pairs — the weather year
    /// analysis — use this variant to halve the scratch matrix's memory
    /// traffic; the triangle batch kernel is bit-identical to the
    /// full-storage one.
    pub fn effective_matrix_without_into_tri(
        &self,
        disabled: &[usize],
        out: &mut UpperTriangleMatrix,
    ) {
        out.copy_from_dist(&self.fiber_km);
        out.improve_with_links(&self.enabled_link_triples(disabled));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three sites in a line: A (west), B (middle), C (east), ~400 km apart.
    fn line_sites() -> Vec<GeoPoint> {
        vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -95.3),
            GeoPoint::new(40.0, -90.6),
        ]
    }

    fn uniform_traffic(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| if i == j { 0.0 } else { 1.0 }).collect())
            .collect()
    }

    /// Fiber at 2× geodesic-equivalent (circuitous + slow).
    fn fiber_matrix(sites: &[GeoPoint]) -> Vec<Vec<f64>> {
        (0..sites.len())
            .map(|i| {
                (0..sites.len())
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 2.0)
                    .collect()
            })
            .collect()
    }

    fn mw_link(a: usize, b: usize, length: f64, towers: usize) -> CandidateLink {
        CandidateLink {
            site_a: a.min(b),
            site_b: a.max(b),
            mw_length_km: length,
            tower_count: towers,
            tower_path: (0..towers).collect(),
        }
    }

    #[test]
    fn fiber_only_topology_has_fiber_stretch() {
        let sites = line_sites();
        let fiber = fiber_matrix(&sites);
        let topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber);
        // Stretch = 2.0 everywhere by construction.
        assert!((topo.mean_stretch() - 2.0).abs() < 1e-9);
        assert!((topo.stretch(0, 2) - 2.0).abs() < 1e-9);
        assert_eq!(topo.total_tower_cost(), 0);
    }

    #[test]
    fn adding_a_direct_mw_link_reduces_stretch_for_that_pair() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        assert!((topo.stretch(0, 2) - 1.02).abs() < 1e-9);
        // Other pairs may also improve (via the new link), never get worse.
        assert!(topo.stretch(0, 1) <= 2.0 + 1e-9);
        assert!(topo.mean_stretch() < 2.0);
        assert_eq!(topo.total_tower_cost(), 8);
    }

    #[test]
    fn mw_links_compose_across_hops() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.01, 5));
        topo.add_mw_link(mw_link(1, 2, geo12 * 1.01, 5));
        // A–C should now route over the two MW links (sites are collinear, so
        // the concatenation is ≈1.01× the A–C geodesic).
        let stretch = topo.stretch(0, 2);
        assert!(stretch < 1.05, "stretch = {stretch}");
        assert!((topo.effective_km(0, 2) - (geo01 + geo12) * 1.01).abs() < 1e-6);
        assert!(topo.effective_km(0, 2) < geo02 * 2.0);
    }

    #[test]
    fn mean_stretch_with_matches_actual_addition() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber.clone());
        let link = mw_link(0, 2, geo02 * 1.03, 8);
        let predicted = topo.mean_stretch_with(&link);
        let mut topo2 = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo2.add_mw_link(link);
        assert!((predicted - topo2.mean_stretch()).abs() < 1e-9);
    }

    #[test]
    fn compact_kernel_matches_scalar_reference() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        // Mixed traffic (one zero pair) exercises the weight compaction.
        let mut traffic = uniform_traffic(3);
        traffic[0][1] = 0.0;
        traffic[1][0] = 0.0;
        traffic[1][2] = 3.5;
        traffic[2][1] = 3.5;
        let mut topo = HybridTopology::new(sites, traffic, fiber);
        let sw = ScoringWeights::compute(
            topo.effective_matrix(),
            topo.geodesic_matrix(),
            topo.traffic(),
        )
        .expect("all scored pairs finite");
        for (i, j, len) in [(0, 2, geo02 * 1.02), (0, 1, 350.0), (1, 2, 410.0)] {
            let scalar = mean_stretch_with_link(
                topo.effective_matrix(),
                topo.geodesic_matrix(),
                topo.traffic(),
                i,
                j,
                len,
            );
            let compact = mean_stretch_with_link_compact(topo.effective_matrix(), &sw, i, j, len);
            assert!(
                (scalar - compact).abs() < 1e-12,
                "({i}, {j}, {len}): scalar {scalar} vs compact {compact}"
            );
        }
        // The weights stay valid after link additions (distances only
        // shrink), which is exactly how the design engine reuses them.
        topo.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        let scalar = mean_stretch_with_link(
            topo.effective_matrix(),
            topo.geodesic_matrix(),
            topo.traffic(),
            0,
            1,
            300.0,
        );
        let compact = mean_stretch_with_link_compact(topo.effective_matrix(), &sw, 0, 1, 300.0);
        assert!((scalar - compact).abs() < 1e-12);
    }

    #[test]
    fn scoring_weights_reject_unreachable_and_empty_inputs() {
        let sites = line_sites();
        let geo = DistMatrix::from_fn(3, |i, j| geodesic::distance_km(sites[i], sites[j]));
        let mut fiber = DistMatrix::from_nested(fiber_matrix(&sites));
        let traffic = DistMatrix::from_nested(uniform_traffic(3));
        // A traffic-carrying pair with no fiber breaks the constant-
        // denominator invariant.
        fiber.set_sym(0, 2, f64::INFINITY);
        assert!(ScoringWeights::compute(&fiber, &geo, &traffic).is_none());
        // …unless that pair carries no traffic.
        let mut sparse = traffic.clone();
        sparse.set_sym(0, 2, 0.0);
        assert!(ScoringWeights::compute(&fiber, &geo, &sparse).is_some());
        // No traffic at all → no denominator.
        let zero = DistMatrix::zeros(3);
        let full = DistMatrix::from_nested(fiber_matrix(&sites));
        assert!(ScoringWeights::compute(&full, &geo, &zero).is_none());
    }

    #[test]
    fn gain_bounds_are_sound_on_metric_matrices() {
        let sites = line_sites();
        let fiber = fiber_matrix(&sites);
        let topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        let mut sw = ScoringWeights::compute(
            topo.effective_matrix(),
            topo.geodesic_matrix(),
            topo.traffic(),
        )
        .unwrap();
        // Unarmed bounds never prune.
        assert!(sw.gain_upper_bound(100.0, 50.0).is_infinite());
        assert!(
            sw.enable_gain_bounds(topo.effective_matrix()),
            "2× geodesic is metric"
        );
        let current = topo.mean_stretch();
        for (i, j) in [(0, 1), (0, 2), (1, 2)] {
            let d_ij = topo.effective_km(i, j);
            for factor in [1.0, 1.02, 1.3] {
                let m = topo.geodesic_km(i, j) * factor;
                let link = mw_link(i, j, m, 4);
                let gain = current - topo.mean_stretch_with(&link);
                let bound = sw.gain_upper_bound(d_ij, m);
                assert!(
                    gain <= bound,
                    "({i}, {j}) × {factor}: gain {gain} exceeds bound {bound}"
                );
            }
        }
        // A link no shorter than the current distance provably gains nothing.
        let d_01 = topo.effective_km(0, 1);
        assert!(sw.gain_upper_bound(d_01, d_01 + 1.0) < 1e-9);
        // Non-metric matrices leave bounds unarmed.
        let mut broken = topo.effective_matrix().clone();
        broken.set_sym(0, 2, 1e7);
        let mut sw2 =
            ScoringWeights::compute(&broken, topo.geodesic_matrix(), topo.traffic()).unwrap();
        assert!(!sw2.enable_gain_bounds(&broken));
        assert!(sw2.gain_upper_bound(100.0, 50.0).is_infinite());
    }

    #[test]
    fn improve_with_link_is_exact_vs_recompute() {
        let sites = line_sites();
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites.clone(), uniform_traffic(3), fiber);
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.02, 4));
        topo.add_mw_link(mw_link(1, 2, geo12 * 1.04, 4));
        let incremental = topo.effective_matrix().clone();
        topo.recompute_effective();
        for i in 0..3 {
            for j in 0..3 {
                assert!((incremental.get(i, j) - topo.effective_km(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn effective_matrix_without_disables_links() {
        let sites = line_sites();
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        let without = topo.effective_matrix_without(&[0]);
        assert!((without[0][2] - geo02 * 2.0).abs() < 1e-9, "back to fiber");
        // Disabling nothing reproduces the current matrix.
        let with = topo.effective_matrix_without(&[]);
        assert!((with[0][2] - geo02 * 1.02).abs() < 1e-9);
    }

    #[test]
    fn effective_matrix_without_tolerates_stale_indices() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.02, 4));
        // Indices beyond the link count (e.g. a stale failure list) disable
        // nothing rather than panicking.
        let matrix = topo.effective_matrix_without(&[7, 99]);
        assert_eq!(&matrix, topo.effective_matrix());
    }

    #[test]
    fn effective_matrix_without_into_reuses_buffer() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.02, 4));
        let mut scratch = DistMatrix::zeros(3);
        topo.effective_matrix_without_into(&[], &mut scratch);
        assert_eq!(&scratch, topo.effective_matrix());
        topo.effective_matrix_without_into(&[0], &mut scratch);
        assert_eq!(&scratch, topo.fiber_matrix());
    }

    #[test]
    fn effective_matrix_without_into_tri_matches_full_storage() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.02, 4));
        topo.add_mw_link(mw_link(1, 2, geo12 * 1.03, 4));
        let mut tri = UpperTriangleMatrix::zeros(3);
        for disabled in [vec![], vec![0], vec![1], vec![0, 1]] {
            let full = topo.effective_matrix_without(&disabled);
            topo.effective_matrix_without_into_tri(&disabled, &mut tri);
            for (i, j, v) in full.upper_triangle() {
                assert_eq!(tri.get(i, j), v, "disabled {disabled:?}, pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn stretch_never_below_one_with_sane_links() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        let mut topo = HybridTopology::new(sites, uniform_traffic(3), fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.0, 3));
        for s in topo.all_stretches() {
            assert!(s >= 1.0 - 1e-9, "stretch {s} below physical bound");
        }
    }

    #[test]
    fn traffic_weights_bias_mean_stretch() {
        let sites = line_sites();
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let fiber = fiber_matrix(&sites);
        // Heavy traffic on the 0–1 pair only.
        let mut traffic = uniform_traffic(3);
        traffic[0][1] = 100.0;
        traffic[1][0] = 100.0;
        let mut topo = HybridTopology::new(sites, traffic, fiber);
        topo.add_mw_link(mw_link(0, 1, geo01 * 1.01, 3));
        // Mean stretch is dominated by the improved pair.
        assert!(topo.mean_stretch() < 1.1);
    }

    #[test]
    #[should_panic]
    fn mismatched_matrix_sizes_panic() {
        let sites = line_sites();
        HybridTopology::new(sites, uniform_traffic(2), vec![vec![0.0; 3]; 3]);
    }

    /// A conduit network over the line sites: direct segments 0–1 and 1–2
    /// plus a long detour segment 0–2.
    fn line_conduits(sites: &[GeoPoint]) -> FiberNetwork {
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        FiberNetwork::from_parts(
            sites.to_vec(),
            vec![
                FiberLink {
                    a: 0,
                    b: 1,
                    route_km: geo01 * 1.2,
                },
                FiberLink {
                    a: 1,
                    b: 2,
                    route_km: geo12 * 1.2,
                },
                FiberLink {
                    a: 0,
                    b: 2,
                    route_km: geo02 * 1.45,
                },
            ],
        )
    }

    #[test]
    fn conduit_backed_topology_matches_matrix_backed_constructor() {
        let sites = line_sites();
        let fiber = line_conduits(&sites);
        let conduit = HybridTopology::with_conduits(sites.clone(), uniform_traffic(3), &fiber);
        let matrix = HybridTopology::new(
            sites.clone(),
            uniform_traffic(3),
            fiber.latency_equivalent_matrix(),
        );
        // The derived fiber cache and the effective matrix are bit-identical
        // to the matrix-backed constructor fed the flattened matrix.
        assert_eq!(conduit.fiber_matrix(), matrix.fiber_matrix());
        assert_eq!(conduit.effective_matrix(), matrix.effective_matrix());
        assert!(conduit.conduits().is_some());
        assert!(matrix.conduits().is_none());
        // MW links behave identically on both.
        let geo02 = geodesic::distance_km(sites[0], sites[2]);
        let mut a = conduit.clone();
        let mut b = matrix.clone();
        a.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        b.add_mw_link(mw_link(0, 2, geo02 * 1.02, 8));
        assert_eq!(a.effective_matrix(), b.effective_matrix());
        assert!(a.conduits().is_some(), "conduit layer survives MW builds");
    }

    #[test]
    fn conduit_hops_realise_shortest_routes_in_both_directions() {
        let sites = line_sites();
        let fiber = line_conduits(&sites);
        let topo = HybridTopology::with_conduits(sites.clone(), uniform_traffic(3), &fiber);
        let layer = topo.conduits().unwrap();
        assert_eq!(layer.num_segments(), 3);
        // 0 → 2: the two-segment route (1.2× each) beats the 1.45× direct
        // conduit on this collinear layout.
        let hops = layer.hops(0, 2);
        assert_eq!(
            hops,
            vec![
                ConduitHop {
                    segment: 0,
                    forward: true
                },
                ConduitHop {
                    segment: 1,
                    forward: true
                },
            ]
        );
        // The reverse direction is the same segments, reversed and flipped.
        let back = layer.hops(2, 0);
        assert_eq!(
            back,
            vec![
                ConduitHop {
                    segment: 1,
                    forward: false
                },
                ConduitHop {
                    segment: 0,
                    forward: false
                },
            ]
        );
        // Hop route lengths sum to the fiber distance (modulo the 1.5×).
        let total: f64 = hops
            .iter()
            .map(|h| layer.segments()[h.segment as usize].route_km)
            .sum();
        assert!((total * 1.5 - topo.fiber_km(0, 2)).abs() < 1e-9);
        // Self pairs have no hops.
        assert!(layer.hops(1, 1).is_empty());
    }

    #[test]
    #[should_panic]
    fn conduit_constructor_rejects_mismatched_sites() {
        let sites = line_sites();
        let fiber = line_conduits(&sites);
        let mut other = sites.clone();
        other[1] = GeoPoint::new(41.0, -95.3);
        HybridTopology::with_conduits(other, uniform_traffic(3), &fiber);
    }
}

//! Step 1(b): build candidate site-to-site microwave links.
//!
//! After hop feasibility has produced the tower-to-tower hop graph, the
//! designer finds, for every pair of sites, the shortest path through that
//! graph (§3.1: "for each pair of sites, we find the shortest path through a
//! graph containing these hops, which we call a link"). The path's length is
//! the link's latency-equivalent distance `m_ij` and its tower count is the
//! link's cost `c_ij`, the two inputs the topology optimiser needs.
//!
//! Sites are attached to the tower graph through every tower within a
//! configurable radius of the site, reflecting the paper's observation that
//! each city hosts plenty of towers suitable as path starting points.

use std::time::Instant;

use cisp_data::towers::TowerRegistry;
use cisp_geo::{geodesic, GeoPoint};
use cisp_graph::{dijkstra, CsrGraph, DistMatrix, Graph, SearchCore};
use serde::{Deserialize, Serialize};

use crate::hops::FeasibleHop;

/// Split `0..len` into at most `workers` contiguous ranges whose sizes
/// differ by ≤ 1 (used to fan sweeps out with a deterministic merge order).
pub(crate) fn chunk_ranges(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let w = workers.min(len).max(1);
    let base = len / w;
    let remainder = len % w;
    let mut out = Vec::with_capacity(w);
    let mut start = 0;
    for k in 0..w {
        let size = base + usize::from(k < remainder);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Resolve a worker-count knob: `0` means one worker per core.
pub(crate) fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        rayon::current_num_threads()
    } else {
        workers
    }
}

/// A candidate direct microwave link between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateLink {
    /// Index of the first site (lower index).
    pub site_a: usize,
    /// Index of the second site (higher index).
    pub site_b: usize,
    /// Length of the microwave path in kilometres (`m_ij` in the paper).
    pub mw_length_km: f64,
    /// Number of towers used by the path (`c_ij`, the link's cost in towers).
    pub tower_count: usize,
    /// The tower indices along the path, in order from `site_a` to `site_b`.
    pub tower_path: Vec<usize>,
}

impl CandidateLink {
    /// Stretch of the microwave path over the geodesic between the sites.
    pub fn stretch_over(&self, geodesic_km: f64) -> f64 {
        if geodesic_km <= 0.0 {
            1.0
        } else {
            self.mw_length_km / geodesic_km
        }
    }
}

/// Configuration for attaching sites to the tower graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBuilderConfig {
    /// Towers within this distance of a site can serve as the first/last
    /// tower of its links.
    pub site_attach_radius_km: f64,
}

impl Default for LinkBuilderConfig {
    fn default() -> Self {
        Self {
            site_attach_radius_km: 25.0,
        }
    }
}

/// Per-site tower-attachment report produced by [`LinkBuilder::new`].
///
/// A site with zero attached towers can never originate a microwave link
/// no matter how dense the hop graph is; surfacing those sites up front
/// turns a silent empty-pool symptom into a diagnosable input problem.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttachmentReport {
    /// Number of towers attached to each site, indexed by site.
    pub attached_per_site: Vec<usize>,
}

impl AttachmentReport {
    /// Sites with no tower within the attach radius, ascending.
    pub fn zero_attached(&self) -> Vec<usize> {
        self.attached_per_site
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == 0)
            .map(|(s, _)| s)
            .collect()
    }

    /// Smallest per-site attachment count (0 when any site is stranded).
    pub fn min_attached(&self) -> usize {
        self.attached_per_site.iter().copied().min().unwrap_or(0)
    }
}

/// Wall-clock split of one pool-generation run, summed across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolSearchTimings {
    /// Time spent in per-site shortest-path searches, milliseconds.
    pub search_ms: f64,
    /// Time spent extracting paths and assembling links, milliseconds.
    pub extract_ms: f64,
}

impl PoolSearchTimings {
    fn absorb(&mut self, other: PoolSearchTimings) {
        self.search_ms += other.search_ms;
        self.extract_ms += other.extract_ms;
    }
}

/// Builds candidate links from sites, towers and feasible hops.
pub struct LinkBuilder<'a> {
    sites: &'a [GeoPoint],
    towers: &'a TowerRegistry,
    graph: Graph,
    csr: CsrGraph,
    config: LinkBuilderConfig,
    attachment: AttachmentReport,
}

impl<'a> LinkBuilder<'a> {
    /// Construct the combined tower + site graph.
    ///
    /// Graph layout: nodes `0..T` are towers, nodes `T..T+S` are sites.
    pub fn new(
        sites: &'a [GeoPoint],
        towers: &'a TowerRegistry,
        hops: &[FeasibleHop],
        config: LinkBuilderConfig,
    ) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(config.site_attach_radius_km > 0.0);
        let t = towers.len();
        let mut graph = Graph::new(t + sites.len());
        for hop in hops {
            graph.add_undirected_edge(hop.tower_a, hop.tower_b, hop.length_km);
        }
        let mut attached_per_site = Vec::with_capacity(sites.len());
        let mut near: Vec<usize> = Vec::new();
        for (s, &site) in sites.iter().enumerate() {
            towers.towers_within_into(site, config.site_attach_radius_km, &mut near);
            for &tower_idx in &near {
                let d = geodesic::distance_km(site, towers.towers()[tower_idx].location);
                graph.add_undirected_edge(t + s, tower_idx, d);
            }
            attached_per_site.push(near.len());
        }
        let csr = CsrGraph::from_graph(&graph);
        Self {
            sites,
            towers,
            graph,
            csr,
            config,
            attachment: AttachmentReport { attached_per_site },
        }
    }

    /// The node id of a site in the combined graph.
    pub fn site_node(&self, site: usize) -> usize {
        self.towers.len() + site
    }

    /// The combined tower + site graph (towers first, then sites).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The CSR mirror of the combined graph that the search core runs over.
    pub fn csr_graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// Per-site tower-attachment report (see [`AttachmentReport`]).
    pub fn attachment_report(&self) -> &AttachmentReport {
        &self.attachment
    }

    /// The configuration in use.
    pub fn config(&self) -> LinkBuilderConfig {
        self.config
    }

    /// Number of towers attached to a given site.
    pub fn attached_towers(&self, site: usize) -> usize {
        self.graph.neighbors(self.site_node(site)).len()
    }

    /// Find the candidate link between two sites, if the tower graph connects
    /// them.
    pub fn candidate_link(&self, a: usize, b: usize) -> Option<CandidateLink> {
        assert!(a < self.sites.len() && b < self.sites.len());
        if a == b {
            return None;
        }
        let (a, b) = (a.min(b), a.max(b));
        let path = dijkstra::shortest_path(&self.graph, self.site_node(a), self.site_node(b))?;
        let tower_path: Vec<usize> = path
            .interior_nodes()
            .iter()
            .copied()
            .filter(|&n| n < self.towers.len())
            .collect();
        Some(CandidateLink {
            site_a: a,
            site_b: b,
            mw_length_km: path.cost,
            tower_count: tower_path.len(),
            tower_path,
        })
    }

    /// Compute candidate links for every connected pair of sites.
    ///
    /// Runs one single-source search per site over the combined graph and
    /// extracts every site-to-site path, so the overall cost is `S`
    /// single-source runs rather than `S²` point-to-point runs. The search
    /// runs on the CSR core ([`SearchCore`]) with multi-target early
    /// termination: once every site `b > a` is settled the frontier is
    /// abandoned. Settle order and distances match the exhaustive
    /// binary-heap Dijkstra bitwise (pinned in `tests/design_pool_pruning.rs`).
    pub fn all_candidate_links(&self) -> Vec<CandidateLink> {
        self.all_candidate_links_with(1)
    }

    /// [`Self::all_candidate_links`] fanned out over `workers` threads
    /// (`0` = one per core). Sites are split into contiguous chunks and the
    /// per-chunk results concatenated in order, so the output is identical
    /// to the serial run for every worker count.
    pub fn all_candidate_links_with(&self, workers: usize) -> Vec<CandidateLink> {
        self.all_candidate_links_profiled(workers).0
    }

    /// [`Self::all_candidate_links_with`] plus a wall-clock split of the
    /// search and extraction stages (summed across workers).
    pub fn all_candidate_links_profiled(
        &self,
        workers: usize,
    ) -> (Vec<CandidateLink>, PoolSearchTimings) {
        let n = self.sites.len();
        let workers = resolve_workers(workers);
        if workers <= 1 || n <= 2 {
            let mut ctx = SiteSearchCtx::default();
            let mut links = Vec::new();
            for a in 0..n {
                self.full_links_for_site(a, &mut ctx, &mut links);
            }
            return (links, ctx.timings);
        }
        use rayon::prelude::*;
        let chunks = chunk_ranges(n, workers);
        let per_chunk: Vec<(Vec<CandidateLink>, PoolSearchTimings)> = chunks
            .into_par_iter()
            .map(|(start, end)| {
                let mut ctx = SiteSearchCtx::default();
                let mut links = Vec::new();
                for a in start..end {
                    self.full_links_for_site(a, &mut ctx, &mut links);
                }
                (links, ctx.timings)
            })
            .collect();
        let mut links = Vec::new();
        let mut timings = PoolSearchTimings::default();
        for (chunk_links, chunk_timings) in per_chunk {
            links.extend(chunk_links);
            timings.absorb(chunk_timings);
        }
        (links, timings)
    }

    /// Search from site `a` and append the links to every site `b > a`.
    fn full_links_for_site(
        &self,
        a: usize,
        ctx: &mut SiteSearchCtx,
        links: &mut Vec<CandidateLink>,
    ) {
        let n = self.sites.len();
        if a + 1 >= n {
            return;
        }
        ctx.nodes.clear();
        ctx.nodes.extend((a + 1..n).map(|b| self.site_node(b)));
        let t0 = Instant::now();
        ctx.core
            .search(&self.csr, self.site_node(a), &ctx.nodes, f64::INFINITY);
        ctx.timings.search_ms += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for b in (a + 1)..n {
            let node = self.site_node(b);
            if ctx.core.node_path_into(node, &mut ctx.path) {
                // Paths that route *through* another site node are still
                // valid microwave paths (the intermediate site hosts
                // towers); we only count towers for cost purposes.
                links.push(self.assemble_link(a, b, ctx.core.dist(node), &ctx.path));
            }
        }
        ctx.timings.extract_ms += t1.elapsed().as_secs_f64() * 1e3;
    }

    /// Build a [`CandidateLink`] from an extracted node path.
    fn assemble_link(&self, a: usize, b: usize, dist_km: f64, nodes: &[usize]) -> CandidateLink {
        let interior = if nodes.len() <= 2 {
            &[][..]
        } else {
            &nodes[1..nodes.len() - 1]
        };
        let tower_path: Vec<usize> = interior
            .iter()
            .copied()
            .filter(|&v| v < self.towers.len())
            .collect();
        CandidateLink {
            site_a: a,
            site_b: b,
            mw_length_km: dist_km,
            tower_count: tower_path.len(),
            tower_path,
        }
    }

    /// Compute candidate links for every connected pair of sites, pruned
    /// against the fiber oracle *during* generation instead of after it.
    ///
    /// Exactly the links of [`Self::all_candidate_links`] that survive the
    /// fiber-oracle elimination (`mw_length_km < fiber_km[a][b]`) are
    /// emitted, bit-identical and in the same a-major b-ascending order —
    /// pinned by `tests/design_pool_pruning.rs` — but three bounds avoid
    /// paying for provably useless pairs:
    ///
    /// 1. **Grid bound**: sites are bucketed into a geographic grid; a whole
    ///    bucket is skipped for source `a` when even its *closest possible*
    ///    member (`geodesic(a, centroid) − radius`, a triangle-inequality
    ///    lower bound that holds wherever the centroid lands) is at least
    ///    the bucket's largest fiber distance from `a` — a microwave path
    ///    can never be shorter than the geodesic, so no member can beat
    ///    fiber.
    /// 2. **Pair bound**: same test per surviving pair with the exact
    ///    geodesic.
    /// 3. **Search bound**: the per-source Dijkstra abandons its frontier
    ///    beyond the largest fiber distance of the surviving targets
    ///    ([`dijkstra::shortest_path_tree_within`]); tower paths longer than
    ///    every remaining oracle are unextractable anyway.
    ///
    /// All three prune only candidates the oracle would discard: the bounds
    /// sit a safety margin (`GEO_SAFETY_KM`) above the exact `<` comparison,
    /// so float noise in summed geodesic legs cannot drop a useful link.
    pub fn pruned_candidate_links(
        &self,
        fiber_km: &DistMatrix,
    ) -> (Vec<CandidateLink>, PoolPruneStats) {
        let (links, stats, _) = self.pruned_candidate_links_profiled(fiber_km, 1);
        (links, stats)
    }

    /// [`Self::pruned_candidate_links`] fanned out over `workers` threads
    /// (`0` = one per core). Deterministic: sites are split into contiguous
    /// chunks, chunk outputs concatenated in order and stats summed, so
    /// links and stats are identical to the serial run for every worker
    /// count.
    pub fn pruned_candidate_links_with(
        &self,
        fiber_km: &DistMatrix,
        workers: usize,
    ) -> (Vec<CandidateLink>, PoolPruneStats) {
        let (links, stats, _) = self.pruned_candidate_links_profiled(fiber_km, workers);
        (links, stats)
    }

    /// [`Self::pruned_candidate_links_with`] plus a wall-clock split of the
    /// search and extraction stages (summed across workers).
    pub fn pruned_candidate_links_profiled(
        &self,
        fiber_km: &DistMatrix,
        workers: usize,
    ) -> (Vec<CandidateLink>, PoolPruneStats, PoolSearchTimings) {
        let n = self.sites.len();
        assert_eq!(fiber_km.n(), n, "fiber matrix size must match site count");
        let grid = SiteGrid::build(self.sites);
        let workers = resolve_workers(workers);
        let mut stats = PoolPruneStats {
            pairs_total: (n * n.saturating_sub(1) / 2) as u64,
            ..PoolPruneStats::default()
        };
        let mut timings = PoolSearchTimings::default();
        let mut links = Vec::new();
        if workers <= 1 || n <= 2 {
            let mut ctx = SiteSearchCtx::default();
            for a in 0..n {
                self.pruned_links_for_site(a, fiber_km, &grid, &mut ctx, &mut links, &mut stats);
            }
            timings = ctx.timings;
        } else {
            use rayon::prelude::*;
            let chunks = chunk_ranges(n, workers);
            let per_chunk: Vec<(Vec<CandidateLink>, PoolPruneStats, PoolSearchTimings)> = chunks
                .into_par_iter()
                .map(|(start, end)| {
                    let mut ctx = SiteSearchCtx::default();
                    let mut chunk_links = Vec::new();
                    let mut chunk_stats = PoolPruneStats::default();
                    for a in start..end {
                        self.pruned_links_for_site(
                            a,
                            fiber_km,
                            &grid,
                            &mut ctx,
                            &mut chunk_links,
                            &mut chunk_stats,
                        );
                    }
                    (chunk_links, chunk_stats, ctx.timings)
                })
                .collect();
            for (chunk_links, chunk_stats, chunk_timings) in per_chunk {
                links.extend(chunk_links);
                stats.bucket_pruned += chunk_stats.bucket_pruned;
                stats.pair_pruned += chunk_stats.pair_pruned;
                stats.unreachable += chunk_stats.unreachable;
                stats.oracle_dropped += chunk_stats.oracle_dropped;
                stats.emitted += chunk_stats.emitted;
                timings.absorb(chunk_timings);
            }
        }
        (links, stats, timings)
    }

    /// Run the pruned generation for source site `a`: bucket and pair
    /// bounds, then one capped multi-target search over the CSR core.
    fn pruned_links_for_site(
        &self,
        a: usize,
        fiber_km: &DistMatrix,
        grid: &SiteGrid,
        ctx: &mut SiteSearchCtx,
        links: &mut Vec<CandidateLink>,
        stats: &mut PoolPruneStats,
    ) {
        // Margin between "geodesic already at fiber" and the prune decision:
        // microwave path lengths are sums of geodesic legs, mathematically
        // >= the direct geodesic but computed with ~ulp noise. One
        // millimetre dwarfs that noise by many orders of magnitude while
        // pruning everything the oracle would reject by more than it.
        const GEO_SAFETY_KM: f64 = 1e-6;
        let fib_row = fiber_km.row(a);
        ctx.targets.clear();
        for bucket in &grid.buckets {
            // Members paired as (a, b) with b > a only, so every
            // unordered pair is examined exactly once.
            let members = || bucket.members.iter().copied().filter(|&b| b > a);
            let pairs = members().count();
            if pairs == 0 {
                continue;
            }
            let max_fib = members().fold(0.0f64, |acc, b| acc.max(fib_row[b]));
            let lb_geo =
                (geodesic::distance_km(self.sites[a], bucket.centroid) - bucket.radius_km).max(0.0);
            if lb_geo >= max_fib + GEO_SAFETY_KM {
                stats.bucket_pruned += pairs as u64;
                continue;
            }
            for b in members() {
                if geodesic::distance_km(self.sites[a], self.sites[b]) >= fib_row[b] + GEO_SAFETY_KM
                {
                    stats.pair_pruned += 1;
                } else {
                    ctx.targets.push(b);
                }
            }
        }
        if ctx.targets.is_empty() {
            return;
        }
        ctx.targets.sort_unstable();
        // Every settled distance below the cap is bit-identical to the
        // unbounded run's, and every unsettled node's tentative distance
        // exceeds the cap — so the strict `< fiber` extraction below sees
        // exactly the unbounded run's output. The search additionally stops
        // once every target is settled; that only skips work past the last
        // extraction the loop below would perform.
        let cap = ctx
            .targets
            .iter()
            .fold(0.0f64, |acc, &b| acc.max(fib_row[b]));
        ctx.nodes.clear();
        ctx.nodes
            .extend(ctx.targets.iter().map(|&b| self.site_node(b)));
        let t0 = Instant::now();
        ctx.core
            .search(&self.csr, self.site_node(a), &ctx.nodes, cap);
        ctx.timings.search_ms += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        for &b in &ctx.targets {
            let node = self.site_node(b);
            let dist = ctx.core.dist(node);
            if !dist.is_finite() {
                stats.unreachable += 1;
            } else if dist < fib_row[b] {
                let found = ctx.core.node_path_into(node, &mut ctx.path);
                assert!(found, "settled node has a path");
                links.push(self.assemble_link(a, b, dist, &ctx.path));
                stats.emitted += 1;
            } else {
                stats.oracle_dropped += 1;
            }
        }
        ctx.timings.extract_ms += t1.elapsed().as_secs_f64() * 1e3;
    }
}

/// Reusable per-worker scratch for the per-site searches: the search core's
/// generation-stamped buffers plus target/path vectors, so a sweep over
/// many sites allocates once per worker instead of once per site.
#[derive(Default)]
struct SiteSearchCtx {
    core: SearchCore,
    /// Surviving target *site* indices (pruned mode scratch).
    targets: Vec<usize>,
    /// Target *node* ids handed to the search core.
    nodes: Vec<usize>,
    /// Extracted node path scratch.
    path: Vec<usize>,
    timings: PoolSearchTimings,
}

/// Observational counters of one [`LinkBuilder::pruned_candidate_links`]
/// run: how each unordered site pair was resolved. The categories partition
/// `pairs_total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolPruneStats {
    /// Unordered site pairs considered (`n·(n−1)/2`).
    pub pairs_total: u64,
    /// Pairs discarded wholesale by the grid-bucket geodesic lower bound.
    pub bucket_pruned: u64,
    /// Pairs discarded by the exact per-pair geodesic-vs-fiber bound.
    pub pair_pruned: u64,
    /// Pairs whose tower search found no path within the fiber cap at all.
    pub unreachable: u64,
    /// Pairs whose tower path exists but is no shorter than fiber (includes
    /// paths abandoned beyond the search cap).
    pub oracle_dropped: u64,
    /// Pairs emitted as useful candidate links.
    pub emitted: u64,
}

impl PoolPruneStats {
    /// Fraction of pairs resolved without running a tower-path search
    /// (grid- or pair-bounded out), in `[0, 1]`.
    pub fn generation_prune_ratio(&self) -> f64 {
        if self.pairs_total == 0 {
            0.0
        } else {
            (self.bucket_pruned + self.pair_pruned) as f64 / self.pairs_total as f64
        }
    }
}

/// A geographic bucketing of the sites: grid cells over the lat/lon
/// bounding box, each carrying its member centroid and covering radius.
/// Only the *bound* `geodesic(x, member) >= geodesic(x, centroid) − radius`
/// is relied on, which the triangle inequality gives for any centroid — a
/// skewed centroid (e.g. near the antimeridian) only weakens pruning,
/// never correctness.
struct SiteGrid {
    buckets: Vec<SiteBucket>,
}

struct SiteBucket {
    /// Site indices in this cell, ascending.
    members: Vec<usize>,
    centroid: GeoPoint,
    radius_km: f64,
}

impl SiteGrid {
    fn build(sites: &[GeoPoint]) -> Self {
        let side = (sites.len() as f64).sqrt().ceil().max(1.0) as usize;
        let mut min_lat = f64::INFINITY;
        let mut max_lat = f64::NEG_INFINITY;
        let mut min_lon = f64::INFINITY;
        let mut max_lon = f64::NEG_INFINITY;
        for p in sites {
            min_lat = min_lat.min(p.lat_deg);
            max_lat = max_lat.max(p.lat_deg);
            min_lon = min_lon.min(p.lon_deg);
            max_lon = max_lon.max(p.lon_deg);
        }
        let dlat = ((max_lat - min_lat) / side as f64).max(1e-9);
        let dlon = ((max_lon - min_lon) / side as f64).max(1e-9);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); side * side];
        for (i, p) in sites.iter().enumerate() {
            let r = (((p.lat_deg - min_lat) / dlat) as usize).min(side - 1);
            let c = (((p.lon_deg - min_lon) / dlon) as usize).min(side - 1);
            members[r * side + c].push(i);
        }
        let buckets = members
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|m| {
                let lat = m.iter().map(|&i| sites[i].lat_deg).sum::<f64>() / m.len() as f64;
                let lon = m.iter().map(|&i| sites[i].lon_deg).sum::<f64>() / m.len() as f64;
                let centroid = GeoPoint::new(lat, lon);
                let radius_km = m
                    .iter()
                    .map(|&i| geodesic::distance_km(centroid, sites[i]))
                    .fold(0.0, f64::max);
                SiteBucket {
                    members: m,
                    centroid,
                    radius_km,
                }
            })
            .collect();
        Self { buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hops::{HopConfig, HopFeasibility};
    use cisp_data::towers::{Tower, TowerSource};
    use cisp_terrain::{clutter::ClutterModel, TerrainModel};

    fn tower(lat: f64, lon: f64) -> Tower {
        Tower {
            location: GeoPoint::new(lat, lon),
            height_m: 200.0,
            source: TowerSource::RentalCompany,
        }
    }

    /// Two sites 300 km apart along latitude 40°N with a chain of towers
    /// every ~50 km between them, plus towers at each site.
    fn chain_setup() -> (Vec<GeoPoint>, TowerRegistry) {
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -96.5); // ~298 km east
        let mut towers = Vec::new();
        for i in 0..=6 {
            let frac = i as f64 / 6.0;
            let p = geodesic::intermediate(site_a, site_b, frac);
            towers.push(tower(p.lat_deg, p.lon_deg));
        }
        (vec![site_a, site_b], TowerRegistry::from_towers(towers))
    }

    fn feasible_hops(reg: &TowerRegistry) -> Vec<crate::hops::FeasibleHop> {
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(reg, &terrain, &clutter, HopConfig::default());
        engine.all_feasible_hops()
    }

    #[test]
    fn chain_of_towers_yields_near_geodesic_link() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        assert!(!hops.is_empty());
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let link = builder.candidate_link(0, 1).expect("link should exist");
        let geo = geodesic::distance_km(sites[0], sites[1]);
        assert!(
            link.stretch_over(geo) < 1.05,
            "stretch {}",
            link.stretch_over(geo)
        );
        assert!(link.tower_count >= 5, "towers {}", link.tower_count);
        assert_eq!(link.site_a, 0);
        assert_eq!(link.site_b, 1);
    }

    #[test]
    fn unreachable_sites_have_no_link() {
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -90.0); // ~850 km away, no towers
        let reg = TowerRegistry::from_towers(vec![tower(40.0, -100.05)]);
        let hops = feasible_hops(&reg);
        let sites = vec![site_a, site_b];
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        assert!(builder.candidate_link(0, 1).is_none());
        assert_eq!(builder.all_candidate_links().len(), 0);
    }

    #[test]
    fn all_candidate_links_matches_pointwise_queries() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let all = builder.all_candidate_links();
        assert_eq!(all.len(), 1);
        let single = builder.candidate_link(0, 1).unwrap();
        assert_eq!(all[0], single);
    }

    #[test]
    fn same_site_has_no_link_and_panics_out_of_range() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        assert!(builder.candidate_link(0, 0).is_none());
        assert_eq!(builder.attached_towers(0), 1);
    }

    #[test]
    fn site_attach_radius_controls_connectivity() {
        // Towers strictly in the interior of the corridor, ~50 km from each
        // site: with the default 25 km attach radius neither site can reach
        // the tower chain, with a generous 60 km radius both can.
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -96.5);
        let towers: Vec<Tower> = (1..=5)
            .map(|i| {
                let p = geodesic::intermediate(site_a, site_b, i as f64 / 6.0);
                tower(p.lat_deg, p.lon_deg)
            })
            .collect();
        let reg = TowerRegistry::from_towers(towers);
        let hops = feasible_hops(&reg);
        let sites = vec![site_a, site_b];
        let narrow = LinkBuilder::new(
            &sites,
            &reg,
            &hops,
            LinkBuilderConfig {
                site_attach_radius_km: 25.0,
            },
        );
        assert!(narrow.candidate_link(0, 1).is_none());
        let wide = LinkBuilder::new(
            &sites,
            &reg,
            &hops,
            LinkBuilderConfig {
                site_attach_radius_km: 60.0,
            },
        );
        assert!(wide.candidate_link(0, 1).is_some());
    }

    #[test]
    fn tower_path_is_ordered_from_site_a() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let link = builder.candidate_link(0, 1).unwrap();
        // Towers were created west-to-east, so the path indices must be
        // increasing.
        let mut sorted = link.tower_path.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, link.tower_path);
    }

    /// Four sites spread along a ~300 km west-east corridor with a tower
    /// chain every ~25 km, so several site pairs have real tower paths.
    fn corridor_setup() -> (Vec<GeoPoint>, TowerRegistry) {
        let west = GeoPoint::new(40.0, -100.0);
        let east = GeoPoint::new(40.0, -96.5);
        let sites: Vec<GeoPoint> = (0..4)
            .map(|i| geodesic::intermediate(west, east, i as f64 / 3.0))
            .collect();
        let towers: Vec<Tower> = (0..=12)
            .map(|i| {
                let p = geodesic::intermediate(west, east, i as f64 / 12.0);
                tower(p.lat_deg, p.lon_deg)
            })
            .collect();
        (sites, TowerRegistry::from_towers(towers))
    }

    #[test]
    fn pruned_links_equal_oracle_filtered_full_generation() {
        let (sites, reg) = corridor_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let full = builder.all_candidate_links();
        assert!(!full.is_empty());
        // Generous fiber (2× geodesic): every tower path is useful.
        let fiber = DistMatrix::from_fn(sites.len(), |i, j| {
            geodesic::distance_km(sites[i], sites[j]) * 2.0
        });
        let (pruned, stats) = builder.pruned_candidate_links(&fiber);
        let filtered: Vec<CandidateLink> = full
            .iter()
            .filter(|l| l.mw_length_km < fiber.get(l.site_a, l.site_b))
            .cloned()
            .collect();
        assert_eq!(pruned, filtered);
        assert_eq!(stats.emitted, pruned.len() as u64);
        assert_eq!(
            stats.bucket_pruned
                + stats.pair_pruned
                + stats.unreachable
                + stats.oracle_dropped
                + stats.emitted,
            stats.pairs_total
        );
    }

    #[test]
    fn pruned_links_drop_pairs_fiber_already_wins() {
        let (sites, reg) = corridor_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        // Fiber at 0.9× geodesic: no microwave path can beat it anywhere, so
        // every pair must be bounded out before any Dijkstra pays for it.
        let fiber = DistMatrix::from_fn(sites.len(), |i, j| {
            geodesic::distance_km(sites[i], sites[j]) * 0.9
        });
        let (pruned, stats) = builder.pruned_candidate_links(&fiber);
        assert!(pruned.is_empty());
        assert_eq!(stats.bucket_pruned + stats.pair_pruned, stats.pairs_total);
        assert_eq!(stats.generation_prune_ratio(), 1.0);
        // And the full generation still finds links — the prune, not the
        // tower graph, removed them.
        assert!(!builder.all_candidate_links().is_empty());
    }

    #[test]
    fn attachment_report_surfaces_stranded_sites() {
        // Site 0 sits on the tower chain; site 1 is ~850 km away with no
        // tower within the attach radius and must show up as zero-attached.
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -90.0);
        let reg = TowerRegistry::from_towers(vec![tower(40.0, -100.05)]);
        let hops = feasible_hops(&reg);
        let sites = vec![site_a, site_b];
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let report = builder.attachment_report();
        assert_eq!(report.attached_per_site, vec![1, 0]);
        assert_eq!(report.zero_attached(), vec![1]);
        assert_eq!(report.min_attached(), 0);
        // The report mirrors the graph's own attachment counts.
        for s in 0..sites.len() {
            assert_eq!(report.attached_per_site[s], builder.attached_towers(s));
        }
    }

    #[test]
    fn attachment_report_all_attached_has_no_zero_sites() {
        let (sites, reg) = corridor_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let report = builder.attachment_report();
        assert!(report.zero_attached().is_empty());
        assert!(report.min_attached() >= 1);
    }

    #[test]
    fn parallel_pool_generation_is_worker_count_invariant() {
        let (sites, reg) = corridor_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let fiber = DistMatrix::from_fn(sites.len(), |i, j| {
            geodesic::distance_km(sites[i], sites[j]) * 1.3
        });
        let serial_full = builder.all_candidate_links();
        let (serial_pruned, serial_stats) = builder.pruned_candidate_links(&fiber);
        for workers in [0, 2, 3, 7] {
            assert_eq!(builder.all_candidate_links_with(workers), serial_full);
            let (pruned, stats) = builder.pruned_candidate_links_with(&fiber, workers);
            assert_eq!(pruned, serial_pruned);
            assert_eq!(stats, serial_stats);
        }
    }

    #[test]
    fn profiled_generation_reports_timings_and_same_pool() {
        let (sites, reg) = corridor_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let fiber = DistMatrix::from_fn(sites.len(), |i, j| {
            geodesic::distance_km(sites[i], sites[j]) * 2.0
        });
        let (expected, expected_stats) = builder.pruned_candidate_links(&fiber);
        let (pool, stats, timings) = builder.pruned_candidate_links_profiled(&fiber, 1);
        assert_eq!(pool, expected);
        assert_eq!(stats, expected_stats);
        assert!(timings.search_ms >= 0.0 && timings.extract_ms >= 0.0);
        assert!(!pool.is_empty());
    }

    #[test]
    fn chunk_ranges_cover_input_exactly() {
        for len in [0usize, 1, 2, 5, 7, 16, 119] {
            for workers in [1usize, 2, 3, 8, 200] {
                let chunks = chunk_ranges(len, workers);
                assert!(chunks.len() <= workers.max(1));
                let mut expect = 0;
                for &(start, end) in &chunks {
                    assert_eq!(start, expect);
                    assert!(end >= start);
                    expect = end;
                }
                assert_eq!(expect, len);
            }
        }
    }

    #[test]
    fn stretch_over_zero_geodesic_is_one() {
        let link = CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: 10.0,
            tower_count: 2,
            tower_path: vec![0, 1],
        };
        assert_eq!(link.stretch_over(0.0), 1.0);
        assert!((link.stretch_over(8.0) - 1.25).abs() < 1e-12);
    }
}

//! Step 1(b): build candidate site-to-site microwave links.
//!
//! After hop feasibility has produced the tower-to-tower hop graph, the
//! designer finds, for every pair of sites, the shortest path through that
//! graph (§3.1: "for each pair of sites, we find the shortest path through a
//! graph containing these hops, which we call a link"). The path's length is
//! the link's latency-equivalent distance `m_ij` and its tower count is the
//! link's cost `c_ij`, the two inputs the topology optimiser needs.
//!
//! Sites are attached to the tower graph through every tower within a
//! configurable radius of the site, reflecting the paper's observation that
//! each city hosts plenty of towers suitable as path starting points.

use cisp_data::towers::TowerRegistry;
use cisp_geo::{geodesic, GeoPoint};
use cisp_graph::{dijkstra, Graph};
use serde::{Deserialize, Serialize};

use crate::hops::FeasibleHop;

/// A candidate direct microwave link between two sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateLink {
    /// Index of the first site (lower index).
    pub site_a: usize,
    /// Index of the second site (higher index).
    pub site_b: usize,
    /// Length of the microwave path in kilometres (`m_ij` in the paper).
    pub mw_length_km: f64,
    /// Number of towers used by the path (`c_ij`, the link's cost in towers).
    pub tower_count: usize,
    /// The tower indices along the path, in order from `site_a` to `site_b`.
    pub tower_path: Vec<usize>,
}

impl CandidateLink {
    /// Stretch of the microwave path over the geodesic between the sites.
    pub fn stretch_over(&self, geodesic_km: f64) -> f64 {
        if geodesic_km <= 0.0 {
            1.0
        } else {
            self.mw_length_km / geodesic_km
        }
    }
}

/// Configuration for attaching sites to the tower graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkBuilderConfig {
    /// Towers within this distance of a site can serve as the first/last
    /// tower of its links.
    pub site_attach_radius_km: f64,
}

impl Default for LinkBuilderConfig {
    fn default() -> Self {
        Self {
            site_attach_radius_km: 25.0,
        }
    }
}

/// Builds candidate links from sites, towers and feasible hops.
pub struct LinkBuilder<'a> {
    sites: &'a [GeoPoint],
    towers: &'a TowerRegistry,
    graph: Graph,
    config: LinkBuilderConfig,
}

impl<'a> LinkBuilder<'a> {
    /// Construct the combined tower + site graph.
    ///
    /// Graph layout: nodes `0..T` are towers, nodes `T..T+S` are sites.
    pub fn new(
        sites: &'a [GeoPoint],
        towers: &'a TowerRegistry,
        hops: &[FeasibleHop],
        config: LinkBuilderConfig,
    ) -> Self {
        assert!(!sites.is_empty(), "need at least one site");
        assert!(config.site_attach_radius_km > 0.0);
        let t = towers.len();
        let mut graph = Graph::new(t + sites.len());
        for hop in hops {
            graph.add_undirected_edge(hop.tower_a, hop.tower_b, hop.length_km);
        }
        for (s, &site) in sites.iter().enumerate() {
            for tower_idx in towers.towers_within(site, config.site_attach_radius_km) {
                let d = geodesic::distance_km(site, towers.towers()[tower_idx].location);
                graph.add_undirected_edge(t + s, tower_idx, d);
            }
        }
        Self {
            sites,
            towers,
            graph,
            config,
        }
    }

    /// The node id of a site in the combined graph.
    pub fn site_node(&self, site: usize) -> usize {
        self.towers.len() + site
    }

    /// The combined tower + site graph (towers first, then sites).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The configuration in use.
    pub fn config(&self) -> LinkBuilderConfig {
        self.config
    }

    /// Number of towers attached to a given site.
    pub fn attached_towers(&self, site: usize) -> usize {
        self.graph.neighbors(self.site_node(site)).len()
    }

    /// Find the candidate link between two sites, if the tower graph connects
    /// them.
    pub fn candidate_link(&self, a: usize, b: usize) -> Option<CandidateLink> {
        assert!(a < self.sites.len() && b < self.sites.len());
        if a == b {
            return None;
        }
        let (a, b) = (a.min(b), a.max(b));
        let path = dijkstra::shortest_path(&self.graph, self.site_node(a), self.site_node(b))?;
        let tower_path: Vec<usize> = path
            .interior_nodes()
            .iter()
            .copied()
            .filter(|&n| n < self.towers.len())
            .collect();
        Some(CandidateLink {
            site_a: a,
            site_b: b,
            mw_length_km: path.cost,
            tower_count: tower_path.len(),
            tower_path,
        })
    }

    /// Compute candidate links for every connected pair of sites.
    ///
    /// Runs one Dijkstra per site over the combined graph and extracts every
    /// site-to-site path, so the overall cost is `S` single-source runs
    /// rather than `S²` point-to-point runs.
    pub fn all_candidate_links(&self) -> Vec<CandidateLink> {
        let n = self.sites.len();
        let mut links = Vec::new();
        for a in 0..n {
            let tree = dijkstra::shortest_path_tree(&self.graph, self.site_node(a), None);
            for b in (a + 1)..n {
                if let Some(path) = tree.path_to(self.site_node(b)) {
                    let tower_path: Vec<usize> = path
                        .interior_nodes()
                        .iter()
                        .copied()
                        .filter(|&n| n < self.towers.len())
                        .collect();
                    // Paths that route *through* another site node are still
                    // valid microwave paths (the intermediate site hosts
                    // towers); we only count towers for cost purposes.
                    links.push(CandidateLink {
                        site_a: a,
                        site_b: b,
                        mw_length_km: path.cost,
                        tower_count: tower_path.len(),
                        tower_path,
                    });
                }
            }
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hops::{HopConfig, HopFeasibility};
    use cisp_data::towers::{Tower, TowerSource};
    use cisp_terrain::{clutter::ClutterModel, TerrainModel};

    fn tower(lat: f64, lon: f64) -> Tower {
        Tower {
            location: GeoPoint::new(lat, lon),
            height_m: 200.0,
            source: TowerSource::RentalCompany,
        }
    }

    /// Two sites 300 km apart along latitude 40°N with a chain of towers
    /// every ~50 km between them, plus towers at each site.
    fn chain_setup() -> (Vec<GeoPoint>, TowerRegistry) {
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -96.5); // ~298 km east
        let mut towers = Vec::new();
        for i in 0..=6 {
            let frac = i as f64 / 6.0;
            let p = geodesic::intermediate(site_a, site_b, frac);
            towers.push(tower(p.lat_deg, p.lon_deg));
        }
        (vec![site_a, site_b], TowerRegistry::from_towers(towers))
    }

    fn feasible_hops(reg: &TowerRegistry) -> Vec<crate::hops::FeasibleHop> {
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(reg, &terrain, &clutter, HopConfig::default());
        engine.all_feasible_hops()
    }

    #[test]
    fn chain_of_towers_yields_near_geodesic_link() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        assert!(!hops.is_empty());
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let link = builder.candidate_link(0, 1).expect("link should exist");
        let geo = geodesic::distance_km(sites[0], sites[1]);
        assert!(
            link.stretch_over(geo) < 1.05,
            "stretch {}",
            link.stretch_over(geo)
        );
        assert!(link.tower_count >= 5, "towers {}", link.tower_count);
        assert_eq!(link.site_a, 0);
        assert_eq!(link.site_b, 1);
    }

    #[test]
    fn unreachable_sites_have_no_link() {
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -90.0); // ~850 km away, no towers
        let reg = TowerRegistry::from_towers(vec![tower(40.0, -100.05)]);
        let hops = feasible_hops(&reg);
        let sites = vec![site_a, site_b];
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        assert!(builder.candidate_link(0, 1).is_none());
        assert_eq!(builder.all_candidate_links().len(), 0);
    }

    #[test]
    fn all_candidate_links_matches_pointwise_queries() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let all = builder.all_candidate_links();
        assert_eq!(all.len(), 1);
        let single = builder.candidate_link(0, 1).unwrap();
        assert_eq!(all[0], single);
    }

    #[test]
    fn same_site_has_no_link_and_panics_out_of_range() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        assert!(builder.candidate_link(0, 0).is_none());
        assert_eq!(builder.attached_towers(0), 1);
    }

    #[test]
    fn site_attach_radius_controls_connectivity() {
        // Towers strictly in the interior of the corridor, ~50 km from each
        // site: with the default 25 km attach radius neither site can reach
        // the tower chain, with a generous 60 km radius both can.
        let site_a = GeoPoint::new(40.0, -100.0);
        let site_b = GeoPoint::new(40.0, -96.5);
        let towers: Vec<Tower> = (1..=5)
            .map(|i| {
                let p = geodesic::intermediate(site_a, site_b, i as f64 / 6.0);
                tower(p.lat_deg, p.lon_deg)
            })
            .collect();
        let reg = TowerRegistry::from_towers(towers);
        let hops = feasible_hops(&reg);
        let sites = vec![site_a, site_b];
        let narrow = LinkBuilder::new(
            &sites,
            &reg,
            &hops,
            LinkBuilderConfig {
                site_attach_radius_km: 25.0,
            },
        );
        assert!(narrow.candidate_link(0, 1).is_none());
        let wide = LinkBuilder::new(
            &sites,
            &reg,
            &hops,
            LinkBuilderConfig {
                site_attach_radius_km: 60.0,
            },
        );
        assert!(wide.candidate_link(0, 1).is_some());
    }

    #[test]
    fn tower_path_is_ordered_from_site_a() {
        let (sites, reg) = chain_setup();
        let hops = feasible_hops(&reg);
        let builder = LinkBuilder::new(&sites, &reg, &hops, LinkBuilderConfig::default());
        let link = builder.candidate_link(0, 1).unwrap();
        // Towers were created west-to-east, so the path indices must be
        // increasing.
        let mut sorted = link.tower_path.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, link.tower_path);
    }

    #[test]
    fn stretch_over_zero_geodesic_is_one() {
        let link = CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: 10.0,
            tower_count: 2,
            tower_path: vec![0, 1],
        };
        assert_eq!(link.stretch_over(0.0), 1.0);
        assert!((link.stretch_over(8.0) - 1.25).abs() < 1e-12);
    }
}

//! The incremental delta-scoring engine and its persistent worker shards.
//!
//! The greedy designer's cost used to be dominated by full O(n²) rescoring
//! sweeps: after every accepted link, every surviving candidate's predicted
//! mean stretch was recomputed from scratch. This module replaces that with
//! per-candidate *cached* predictions that are repaired incrementally from
//! the accepted link's [`ImprovedPairs`] delta:
//!
//! A candidate's predicted stretch is `Σ w(s,t) · min(D[s][t], via(s,t))`
//! (over the objective's pairs, divided by `Σ w · g`-weights), where
//! `via(s,t)` uses only rows `i` and `j` of the matrix — the candidate's
//! endpoints. After a link is accepted, a pair's term can change only if one
//! of its five inputs changed: `(s,t)` itself improved, or `s`/`t` is a
//! *changed neighbour* of an endpoint (its distance to `i` or `j`
//! improved). [`ShardState::apply`] therefore repairs each cached value by
//! visiting exactly those pairs — the improved list plus the rows of the
//! candidate's changed neighbours — reconstructing each pair's old term from
//! the delta's recorded old distances ([`RoundUpdate::old_dist`]) and
//! subtracting it from the new term. Distances only shrink, so a
//! monotonicity fast path skips most row entries without touching the old
//! values at all. A candidate whose repair would visit at least as many
//! pairs as a full sweep is re-scored with the exact kernel instead
//! (deterministically in the accepted link, so serial and parallel runs stay
//! bit-identical).
//!
//! The repair is mathematically identical to a full rescore — only
//! floating-point summation order differs, which the designer absorbs by
//! re-scoring the winning candidate with the exact kernel before accepting
//! it. The residual caveat: candidates whose exact scores tie to within the
//! repair's ulp-level noise (~1e-14 relative) could in principle be ranked
//! differently than by full rescoring; the parity property tests pin the
//! two engines equal on every fixture tried.
//!
//! Parallelism comes from **persistent worker shards** ([`ShardPool`]):
//! instead of re-fanning a fresh rayon batch per scoring round, worker
//! threads are spawned once per design run, each *owning a stable contiguous
//! slice of the candidate pool* (and that slice's cached predictions) across
//! all greedy rounds and swap passes. Rounds are one command broadcast and
//! one reply collection per worker; the matrix being scored against is
//! shared behind a [`RwLock`] that the designer write-locks only to apply an
//! accepted link.

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, RwLock};
use std::thread::Scope;

use cisp_graph::{pair_count, pair_index, DistMatrix, ImprovedPairs};

use crate::links::CandidateLink;
use crate::topology::{mean_stretch_with_link, mean_stretch_with_link_compact, ScoringWeights};

/// Everything a scoring shard needs to score its candidates: the candidate
/// pool, the weighting matrices, and the (designer-updated) matrix scored
/// against. Shared immutably with every worker for the lifetime of a design
/// run.
pub struct ScoreContext<'a> {
    /// All candidate links of the design input.
    pub candidates: &'a [CandidateLink],
    /// The candidate pool: indices into `candidates`, in selection-priority
    /// tie-break order. Shards own stable contiguous ranges of this slice.
    pub pool: &'a [usize],
    /// Geodesic distances (stretch denominator weights).
    pub geodesic: &'a DistMatrix,
    /// Traffic weights.
    pub traffic: &'a DistMatrix,
    /// The matrix candidates are scored against — the greedy's effective
    /// matrix, or the swap polish's trial scratch. The designer write-locks
    /// it between rounds; shards read-lock it while scoring.
    pub matrix: &'a RwLock<DistMatrix>,
    /// Compacted per-run scoring weights ([`ScoringWeights::compute`]),
    /// when the run's starting matrix admits them. `Some` routes every
    /// exact score through the vectorised compact kernel and feeds the
    /// repair sweeps' `h/g` weights; `None` (some scored pair unreachable)
    /// keeps everything on the scalar kernel — which the incremental
    /// engine never does, since it falls back to full rescoring instead.
    pub sw: Option<&'a ScoringWeights>,
}

/// Width of the repair sweep's blockwise row scan: candidate-beats-pair
/// tests are evaluated `REPAIR_BLOCK` pairs at a time, with a one-compare
/// per-block lower-bound skip in front of the branchless any-hit fold.
const REPAIR_BLOCK: usize = 16;

/// The per-round delta the designer broadcasts to every shard after
/// accepting a link, with the lookup structures the repair sweeps need
/// (built once, shared by every shard).
#[derive(Debug)]
pub struct RoundUpdate {
    /// The accepted link's improved-pair set (old distances included), from
    /// [`cisp_graph::improve_with_link_tracked`].
    improved: ImprovedPairs,
    /// Pool position of the accepted candidate — removed from scoring.
    removed_pos: Option<usize>,
    /// Exact kernel values the designer computed during selection (pool
    /// position, predicted stretch *before* the accepted link). Applied
    /// before the delta so shard caches match what the designer compared.
    overrides: Vec<(usize, f64)>,
    /// Old distance of each improved pair, dense over [`pair_index`]
    /// (meaningful only where the improved-pair bitset is set).
    old_overlay: Vec<f64>,
    /// `changed_nbrs[v]` = vertices whose distance to `v` improved.
    changed_nbrs: Vec<Vec<u32>>,
    /// The direct part's scored pairs `(a, b, old, new, weight)` (positive
    /// objective weight only).
    direct_pairs: Vec<(u32, u32, f64, f64, f64)>,
    /// The direct part's candidate-independent base,
    /// `Σ w·(new − old) / den`, in predicted-stretch units.
    direct_base: f64,
    /// Largest current distance per row — the via part's row-prune bound.
    row_max: Vec<f64>,
    /// Largest current distance per [`REPAIR_BLOCK`]-wide block of each row
    /// (row-major, `n.div_ceil(REPAIR_BLOCK)` entries per row) — the via
    /// part's per-block prune bound.
    row_blockmax: Vec<f64>,
    /// Distance slack of the metric row-skip test
    /// ([`ScoringWeights::row_skip_slack_km`]); `None` when the run's
    /// matrix was not verified metric, disabling the skip.
    row_skip_slack: Option<f64>,
}

impl RoundUpdate {
    /// Package one accepted link's delta for broadcast. `matrix` is the
    /// updated (post-link) matrix the shards will score against; the
    /// candidate-independent per-round constants — the direct part's pair
    /// list and base sum, and the row maxima — are computed here once
    /// rather than by every shard.
    pub fn new(
        improved: ImprovedPairs,
        removed_pos: Option<usize>,
        overrides: Vec<(usize, f64)>,
        matrix: &DistMatrix,
        sw: &ScoringWeights,
    ) -> Self {
        let n = improved.n();
        let den = sw.den();
        let mut old_overlay = vec![0.0; pair_count(n)];
        let mut changed_nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b, old) in improved.pairs() {
            old_overlay[pair_index(n, a as usize, b as usize)] = old;
            changed_nbrs[a as usize].push(b);
            changed_nbrs[b as usize].push(a);
        }
        let direct_pairs: Vec<(u32, u32, f64, f64, f64)> = improved
            .pairs()
            .iter()
            .filter_map(|&(a, b, old_d)| {
                let w = sw.weights().get(a as usize, b as usize);
                (w > 0.0).then(|| (a, b, old_d, matrix.get(a as usize, b as usize), w))
            })
            .collect();
        let direct_base = direct_pairs
            .iter()
            .map(|&(_, _, old_d, new_d, w)| w * (new_d - old_d) / den)
            .sum();
        let nb = n.div_ceil(REPAIR_BLOCK);
        let mut row_max = vec![0.0_f64; n];
        let mut row_blockmax = vec![0.0_f64; n * nb];
        for s in 0..n {
            for (b, chunk) in matrix.row(s).chunks(REPAIR_BLOCK).enumerate() {
                let m = chunk.iter().copied().fold(0.0_f64, f64::max);
                row_blockmax[s * nb + b] = m;
                row_max[s] = row_max[s].max(m);
            }
        }
        Self {
            improved,
            removed_pos,
            overrides,
            old_overlay,
            changed_nbrs,
            direct_pairs,
            direct_base,
            row_max,
            row_blockmax,
            row_skip_slack: sw.row_skip_slack_km(),
        }
    }

    /// The accepted link's improved-pair set.
    pub fn improved(&self) -> &ImprovedPairs {
        &self.improved
    }

    /// The pre-update distance of `(x, y)`, reconstructed from the delta:
    /// the recorded old value for improved pairs, the (unchanged) current
    /// value otherwise.
    #[inline]
    fn old_dist(&self, matrix: &DistMatrix, x: usize, y: usize) -> f64 {
        if x == y {
            return matrix.get(x, y);
        }
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        let p = pair_index(self.improved.n(), a, b);
        if self.improved.pair_set().contains(p) {
            self.old_overlay[p]
        } else {
            matrix.get(x, y)
        }
    }
}

/// Counters of how one shard's repair rounds split their work, accumulated
/// across every [`ShardState::apply`] call. Purely observational (the bench
/// binary records the pruning ratios); never read by the engine itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairStats {
    /// Candidates re-scored with the exact kernel (repair would have cost
    /// at least as much).
    pub exact_fallbacks: u64,
    /// Candidates repaired incrementally.
    pub repaired: u64,
    /// Changed-neighbour rows visited by the via-part sweeps.
    pub rows_affected: u64,
    /// Of those, rows skipped in O(1) by the metric or row-max bound.
    pub rows_skipped: u64,
}

/// One shard: a stable contiguous range of pool positions and their cached
/// predicted-stretch values. [`ShardPool`] workers each own one; the serial
/// path owns a single shard spanning the whole pool. All scoring math lives
/// here, so serial and sharded runs are identical by construction.
#[derive(Clone)]
pub struct ShardState {
    range: Range<usize>,
    /// Cached predicted mean stretch per owned pool position.
    values: Vec<f64>,
    /// Owned pool positions already accepted into the design.
    removed: Vec<bool>,
    /// Owned candidates as `(mw_length_km, pool_position)`, ascending by
    /// length — the pair-major correction pass iterates the prefix whose
    /// length (a lower bound on any via through the candidate) stays below
    /// an improved pair's old distance. Built by [`Self::init_score`].
    by_m: Vec<(f64, u32)>,
    /// The endpoint sites of each `by_m` entry, same order — a compact
    /// parallel array so the correction pass streams sequentially instead
    /// of chasing `candidates[pool[pos]]` pointers per prefix entry.
    by_m_sites: Vec<(u32, u32)>,
    /// Work counters across all rounds.
    stats: RepairStats,
}

impl ShardState {
    /// A shard owning `range` of the pool (values start unscored).
    pub fn new(range: Range<usize>) -> Self {
        let len = range.len();
        Self {
            range,
            values: vec![f64::INFINITY; len],
            removed: vec![false; len],
            by_m: Vec::new(),
            by_m_sites: Vec::new(),
            stats: RepairStats::default(),
        }
    }

    /// The owned pool-position range.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Cached values, indexed by `pool_position - range.start`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Accumulated repair-work counters.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// Exact kernel score of one pool position against `matrix`: the
    /// compact vectorised kernel when the run precomputed
    /// [`ScoringWeights`], the scalar reference kernel otherwise.
    #[inline]
    fn exact(ctx: &ScoreContext, matrix: &DistMatrix, pos: usize) -> f64 {
        let l = &ctx.candidates[ctx.pool[pos]];
        match ctx.sw {
            Some(sw) => {
                mean_stretch_with_link_compact(matrix, sw, l.site_a, l.site_b, l.mw_length_km)
            }
            None => mean_stretch_with_link(
                matrix,
                ctx.geodesic,
                ctx.traffic,
                l.site_a,
                l.site_b,
                l.mw_length_km,
            ),
        }
    }

    /// The *via part* of one cached prediction's incremental repair: the
    /// signed change contributed by pairs whose via term moved — pairs
    /// incident to a *changed neighbour* (a vertex whose distance to a
    /// candidate endpoint improved) — with the direct term read as-is:
    /// `min(via_new, d) − min(via_old, d)` with `d` the current direct
    /// distance. Vias only shrink, so rows are swept with a single-compare
    /// fast path: a pair the candidate does not beat *now* was not beaten
    /// before either, contributing zero.
    ///
    /// Together with the *direct part* ([`ShardState::apply`]'s
    /// candidate-independent base plus pair-major corrections), the repair
    /// telescopes to exactly `min(via_new, d_new) − min(via_old, d_old)`
    /// per pair — a full rescore's change.
    #[allow(clippy::too_many_arguments)]
    fn via_repair(
        sw: &ScoringWeights,
        matrix: &DistMatrix,
        link: &CandidateLink,
        update: &RoundUpdate,
        in_affected: &mut [bool],
        affected: &mut Vec<u32>,
        blockmin: &mut Vec<f64>,
        stats: &mut RepairStats,
    ) -> f64 {
        let n = matrix.n();
        let nb = n.div_ceil(REPAIR_BLOCK);
        let (i, j, m) = (link.site_a, link.site_b, link.mw_length_km);
        let row_i = matrix.row(i);
        let row_j = matrix.row(j);
        let mut dnum = 0.0;
        // Per-block minima of the endpoint rows, for the per-block skip
        // below. Built lazily: candidates whose every affected row is
        // dismissed by the O(1) row tests never pay the 2n-op build.
        let mut blockmin_ready = false;

        // The candidate's changed neighbours: vertices whose via-term
        // inputs (distance to an endpoint) moved.
        affected.clear();
        for list in [&update.changed_nbrs[i], &update.changed_nbrs[j]] {
            for &v in list {
                if !in_affected[v as usize] {
                    in_affected[v as usize] = true;
                    affected.push(v);
                }
            }
        }
        stats.rows_affected += affected.len() as u64;
        // Metric row skip: on a verified-metric matrix a via through this
        // candidate can only beat some pair of row `s` if the endpoints'
        // distances to `s` differ by more than the link length
        // (`d_si + m < d_st ≤ d_sj + d_jt` minus the common `d_jt` leg
        // forces `d_si + m < d_sj`, and symmetrically) — an O(1) test that
        // skips the whole row scan, with the slack absorbing float noise
        // in the triangle inequality.
        let m_slack = m - update.row_skip_slack.unwrap_or(f64::INFINITY);

        // Via part: every pair incident to a changed neighbour (each
        // unordered pair visited once — a pair inside the affected set is
        // handled by its larger vertex).
        for &s in affected.iter() {
            let s = s as usize;
            if (row_i[s] - row_j[s]).abs() <= m_slack {
                stats.rows_skipped += 1;
                continue;
            }
            let d_si_m = row_i[s] + m;
            let d_sj_m = row_j[s] + m;
            // Row prune: every via through this row is at least
            // `min(d_si, d_sj) + m`; if that already exceeds the row's
            // largest current distance, no pair of the row can be beaten
            // and the whole row contributes nothing.
            if d_si_m.min(d_sj_m) >= update.row_max[s] {
                stats.rows_skipped += 1;
                continue;
            }
            let d_si_old = update.old_dist(matrix, s, i);
            let d_sj_old = update.old_dist(matrix, s, j);
            let eff_row = matrix.row(s);
            let w_row = sw.weights().row(s);
            if !blockmin_ready {
                blockmin.clear();
                blockmin.extend(
                    row_i
                        .chunks(REPAIR_BLOCK)
                        .map(|c| c.iter().copied().fold(f64::INFINITY, f64::min)),
                );
                blockmin.extend(
                    row_j
                        .chunks(REPAIR_BLOCK)
                        .map(|c| c.iter().copied().fold(f64::INFINITY, f64::min)),
                );
                blockmin_ready = true;
            }
            let (bmin_i, bmin_j) = blockmin.split_at(nb);
            let row_bmax = &update.row_blockmax[s * nb..(s + 1) * nb];
            // Blockwise scan, two tiers per block: a one-compare lower-bound
            // skip (the cheapest via anyone in the block could offer, from
            // the endpoint rows' block minima, against the block's largest
            // current distance), then a branchless vector-friendly pass
            // asking "does the candidate beat any pair in this block?" —
            // only blocks with a hit (rare — the fast-path rate is a few
            // percent) are re-walked scalar. A pair the candidate does not
            // beat now was (vias only shrink) not beaten before either and
            // contributes nothing.
            let mut t0 = 0;
            for b in 0..nb {
                let t1 = (t0 + REPAIR_BLOCK).min(n);
                if (d_si_m + bmin_j[b]).min(d_sj_m + bmin_i[b]) >= row_bmax[b] {
                    t0 = t1;
                    continue;
                }
                let any_hit = row_j[t0..t1]
                    .iter()
                    .zip(&row_i[t0..t1])
                    .zip(&eff_row[t0..t1])
                    .fold(false, |acc, ((&d_jt, &d_it), &d_st)| {
                        acc | ((d_si_m + d_jt).min(d_sj_m + d_it) < d_st)
                    });
                if !any_hit {
                    t0 = t1;
                    continue;
                }
                for t in t0..t1 {
                    let (d_jt, d_it, d_st) = (row_j[t], row_i[t], eff_row[t]);
                    let via_new = (d_si_m + d_jt).min(d_sj_m + d_it);
                    if via_new >= d_st {
                        continue;
                    }
                    if t == s || (in_affected[t] && t < s) {
                        continue;
                    }
                    let w = w_row[t];
                    if w <= 0.0 {
                        continue;
                    }
                    // Old t-side via inputs moved only for changed
                    // neighbours.
                    let (old_jt, old_it) = if in_affected[t] {
                        (update.old_dist(matrix, j, t), update.old_dist(matrix, i, t))
                    } else {
                        (d_jt, d_it)
                    };
                    let via_old = (d_si_old + m + old_jt).min(d_sj_old + m + old_it);
                    let new_term = via_new.min(d_st);
                    let old_term = via_old.min(d_st);
                    if new_term != old_term {
                        dnum += w * (new_term - old_term);
                    }
                }
                t0 = t1;
            }
        }

        for &v in affected.iter() {
            in_affected[v as usize] = false;
        }
        dnum / sw.den()
    }

    /// Score every owned candidate with the exact kernel (round 0), and
    /// build the length-sorted candidate index the correction pass uses.
    pub fn init_score(&mut self, ctx: &ScoreContext) {
        let matrix = ctx.matrix.read().unwrap();
        for (k, pos) in self.range.clone().enumerate() {
            if !self.removed[k] {
                self.values[k] = Self::exact(ctx, &matrix, pos);
            }
        }
        self.by_m = self
            .range
            .clone()
            .map(|pos| (ctx.candidates[ctx.pool[pos]].mw_length_km, pos as u32))
            .collect();
        self.by_m
            .sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1)));
        self.by_m_sites = self
            .by_m
            .iter()
            .map(|&(_, pos)| {
                let l = &ctx.candidates[ctx.pool[pos as usize]];
                (l.site_a as u32, l.site_b as u32)
            })
            .collect();
    }

    /// Apply one accepted-link round: sync the designer's exact overrides,
    /// drop the accepted candidate, then repair every surviving cached
    /// value. A candidate whose repair would visit at least as many pairs as
    /// a full sweep is re-scored with the exact kernel instead.
    pub fn apply(&mut self, ctx: &ScoreContext, update: &RoundUpdate) {
        for &(pos, v) in &update.overrides {
            if self.range.contains(&pos) {
                self.values[pos - self.range.start] = v;
            }
        }
        if let Some(pos) = update.removed_pos {
            if self.range.contains(&pos) {
                self.removed[pos - self.range.start] = true;
            }
        }
        let n = ctx.geodesic.n();
        let pairs = pair_count(n);
        let improved_len = update.improved.len();
        debug_assert_eq!(self.by_m.len(), self.range.len(), "init_score not run");
        let sw = ctx
            .sw
            .expect("incremental repair requires precomputed ScoringWeights");
        let mut in_affected = vec![false; n];
        let mut affected: Vec<u32> = Vec::with_capacity(n);
        let mut blockmin: Vec<f64> = Vec::with_capacity(2 * n.div_ceil(REPAIR_BLOCK));
        let matrix = ctx.matrix.read().unwrap();

        // Pass 1, candidate-major: the via part plus the direct base. A
        // candidate whose repair would visit more pairs than a full sweep
        // costs is deferred to an exact kernel re-score instead (pass 3).
        // With the metric row skip armed most affected rows are dismissed
        // in O(1), so a repaired row is far cheaper than a swept one and
        // the break-even point moves towards repair accordingly.
        let row_cost_div = if update.row_skip_slack.is_some() {
            4
        } else {
            1
        };
        let mut needs_exact: Vec<u32> = Vec::new();
        for (k, pos) in self.range.clone().enumerate() {
            if self.removed[k] {
                continue;
            }
            let l = &ctx.candidates[ctx.pool[pos]];
            let neighbour_rows =
                update.changed_nbrs[l.site_a].len() + update.changed_nbrs[l.site_b].len();
            if neighbour_rows * n / row_cost_div + improved_len >= pairs {
                needs_exact.push(k as u32);
            } else {
                self.stats.repaired += 1;
                self.values[k] += update.direct_base
                    + Self::via_repair(
                        sw,
                        &matrix,
                        l,
                        update,
                        &mut in_affected,
                        &mut affected,
                        &mut blockmin,
                        &mut self.stats,
                    );
            }
        }
        self.stats.exact_fallbacks += needs_exact.len() as u64;

        // Pass 2, pair-major: the direct part's corrections. A candidate
        // corrects the base only when one of its vias beats the pair's old
        // distance; every via is at least the candidate's own length, so
        // only the length-sorted prefix below `old_d` can contribute, and
        // the branchless clamp form makes non-contributing candidates add
        // an exact zero. Old distances are expanded into two row buffers
        // per pair, so the inner loop reads hot rows only.
        let shortest_m = self.by_m.first().map_or(f64::INFINITY, |&(m, _)| m);
        let mut old_row_a = vec![0.0; n];
        let mut old_row_b = vec![0.0; n];
        for &(a, b, old_d, new_d, w) in &update.direct_pairs {
            if shortest_m >= old_d {
                continue; // no owned candidate can beat this pair's old distance
            }
            let (a, b) = (a as usize, b as usize);
            for t in 0..n {
                old_row_a[t] = update.old_dist(&matrix, a, t);
                old_row_b[t] = update.old_dist(&matrix, b, t);
            }
            let dd = new_d - old_d;
            let w_den = w / sw.den();
            // Streams the compact parallel arrays only: no per-entry
            // `candidates[pool[pos]]` pointer chase, and no removed/deferred
            // mask test — a removed candidate's value is never read again,
            // and a deferred one's is overwritten by pass 3, so adding their
            // (exact) corrections is harmless.
            for (&(m_c, pos), &(i, j)) in self.by_m.iter().zip(&self.by_m_sites) {
                if m_c >= old_d {
                    break; // ascending: every later via is ≥ old_d
                }
                let (i, j) = (i as usize, j as usize);
                let via_old =
                    (old_row_a[i] + m_c + old_row_b[j]).min(old_row_a[j] + m_c + old_row_b[i]);
                let corr = (via_old.min(new_d) - via_old.min(old_d)) - dd;
                self.values[pos as usize - self.range.start] += w_den * corr;
            }
        }

        // Pass 3: the deferred exact re-scores (overwriting whatever the
        // correction pass added to them).
        for &k in &needs_exact {
            self.values[k as usize] = Self::exact(ctx, &matrix, self.range.start + k as usize);
        }
    }

    /// Exact-score the owned subset of `positions` (ascending pool
    /// positions) against the context matrix — the swap polish's trial
    /// evaluation. Returns `(pool_position, predicted_stretch)` pairs in
    /// ascending position order.
    pub fn score_trials(&self, ctx: &ScoreContext, positions: &[usize]) -> Vec<(usize, f64)> {
        let matrix = ctx.matrix.read().unwrap();
        positions
            .iter()
            .copied()
            .filter(|pos| self.range.contains(pos))
            .map(|pos| (pos, Self::exact(ctx, &matrix, pos)))
            .collect()
    }
}

enum Cmd {
    Init,
    Apply(Arc<RoundUpdate>),
    ScoreTrials(Arc<Vec<usize>>),
}

enum Reply {
    Values(Vec<f64>),
    Trials(Vec<(usize, f64)>),
}

/// Persistent worker shards: one scoped thread per shard, alive for the
/// whole design run, each owning a stable contiguous slice of the candidate
/// pool. Communication is one command and one reply per worker per round.
pub struct ShardPool {
    txs: Vec<Sender<Cmd>>,
    rxs: Vec<Receiver<Reply>>,
    ranges: Vec<Range<usize>>,
}

impl ShardPool {
    /// Split `ctx.pool` into `workers` contiguous shards (sizes differing by
    /// at most one) and spawn one persistent scoped worker per shard.
    /// Workers exit when the pool is dropped (their command channels close),
    /// which is before the scope joins.
    pub fn spawn<'scope, 'env>(
        scope: &'scope Scope<'scope, 'env>,
        ctx: &'env ScoreContext<'env>,
        workers: usize,
    ) -> Self {
        let len = ctx.pool.len();
        let workers = workers.clamp(1, len.max(1));
        let base = len / workers;
        let remainder = len % workers;
        let mut txs = Vec::with_capacity(workers);
        let mut rxs = Vec::with_capacity(workers);
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0;
        for w in 0..workers {
            let size = base + usize::from(w < remainder);
            let range = start..start + size;
            start += size;
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            let (reply_tx, reply_rx) = channel::<Reply>();
            let mut state = ShardState::new(range.clone());
            scope.spawn(move || {
                while let Ok(cmd) = cmd_rx.recv() {
                    let reply = match cmd {
                        Cmd::Init => {
                            state.init_score(ctx);
                            Reply::Values(state.values().to_vec())
                        }
                        Cmd::Apply(update) => {
                            state.apply(ctx, &update);
                            Reply::Values(state.values().to_vec())
                        }
                        Cmd::ScoreTrials(positions) => {
                            Reply::Trials(state.score_trials(ctx, &positions))
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        break;
                    }
                }
            });
            txs.push(cmd_tx);
            rxs.push(reply_rx);
            ranges.push(range);
        }
        Self { txs, rxs, ranges }
    }

    fn collect_values(&self, out: &mut [f64]) {
        for (rx, range) in self.rxs.iter().zip(&self.ranges) {
            match rx.recv().expect("scoring shard died") {
                Reply::Values(values) => out[range.clone()].copy_from_slice(&values),
                Reply::Trials(_) => unreachable!("values reply expected"),
            }
        }
    }
}

/// The designer-facing scorer: a single inline shard on the serial path, a
/// [`ShardPool`] on the parallel path. Identical numbers either way — the
/// shard math is shared — so `DesignConfig::parallel` stays a pure
/// performance switch.
pub enum PoolScorer {
    /// One shard spanning the whole pool, run on the calling thread.
    Inline(Box<ShardState>),
    /// Persistent worker shards.
    Sharded(ShardPool),
}

impl PoolScorer {
    /// An inline scorer over a pool of `len` candidates.
    pub fn inline(len: usize) -> Self {
        Self::Inline(Box::new(ShardState::new(0..len)))
    }

    /// Score the whole pool with the exact kernel into `out`
    /// (pool-position-indexed).
    pub fn init(&mut self, ctx: &ScoreContext, out: &mut [f64]) {
        match self {
            Self::Inline(state) => {
                state.init_score(ctx);
                out.copy_from_slice(state.values());
            }
            Self::Sharded(pool) => {
                for tx in &pool.txs {
                    tx.send(Cmd::Init).expect("scoring shard died");
                }
                pool.collect_values(out);
            }
        }
    }

    /// Broadcast one accepted-link round and collect the repaired values
    /// into `out`.
    pub fn apply(&mut self, ctx: &ScoreContext, update: RoundUpdate, out: &mut [f64]) {
        match self {
            Self::Inline(state) => {
                state.apply(ctx, &update);
                out.copy_from_slice(state.values());
            }
            Self::Sharded(pool) => {
                let update = Arc::new(update);
                for tx in &pool.txs {
                    tx.send(Cmd::Apply(Arc::clone(&update)))
                        .expect("scoring shard died");
                }
                pool.collect_values(out);
            }
        }
    }

    /// Exact-score `positions` (ascending pool positions) against the
    /// context matrix; the result is aligned with `positions`.
    pub fn score_trials(&mut self, ctx: &ScoreContext, positions: &[usize]) -> Vec<f64> {
        match self {
            Self::Inline(state) => state
                .score_trials(ctx, positions)
                .into_iter()
                .map(|(_, v)| v)
                .collect(),
            Self::Sharded(pool) => {
                let positions_arc = Arc::new(positions.to_vec());
                for tx in &pool.txs {
                    tx.send(Cmd::ScoreTrials(Arc::clone(&positions_arc)))
                        .expect("scoring shard died");
                }
                // Shard ranges are ascending and disjoint and each shard
                // replies in ascending position order, so concatenating the
                // replies re-creates exactly the ascending `positions` order.
                let mut merged = Vec::with_capacity(positions.len());
                for rx in &pool.rxs {
                    match rx.recv().expect("scoring shard died") {
                        Reply::Trials(part) => merged.extend(part),
                        Reply::Values(_) => unreachable!("trials reply expected"),
                    }
                }
                debug_assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
                debug_assert_eq!(merged.len(), positions.len());
                merged.into_iter().map(|(_, v)| v).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_graph::improve_with_link_tracked;

    /// A tiny synthetic pool: `n` collinear sites, fiber at 2× geodesic,
    /// uniform traffic, one candidate per pair at 1.05×.
    fn fixture(n: usize) -> (Vec<CandidateLink>, DistMatrix, DistMatrix, DistMatrix) {
        let geodesic = DistMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs() * 100.0);
        let fiber = DistMatrix::from_fn(n, |i, j| geodesic.get(i, j) * 2.0);
        let traffic = DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
        let mut candidates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                candidates.push(CandidateLink {
                    site_a: i,
                    site_b: j,
                    mw_length_km: geodesic.get(i, j) * 1.05,
                    tower_count: 1,
                    tower_path: vec![0],
                });
            }
        }
        (candidates, geodesic, fiber, traffic)
    }

    #[test]
    fn delta_repair_tracks_exact_rescoring() {
        let n = 7;
        let (candidates, geodesic, fiber, traffic) = fixture(n);
        let pool: Vec<usize> = (0..candidates.len()).collect();
        let mut sw = ScoringWeights::compute(&fiber, &geodesic, &traffic).unwrap();
        // The fixture's 2×-geodesic fiber is metric, so the repair's O(1)
        // metric row skip is exercised here too — repaired values must
        // still match the exact kernel.
        assert!(sw.enable_gain_bounds(&fiber));
        let matrix = RwLock::new(fiber.clone());
        let ctx = ScoreContext {
            candidates: &candidates,
            pool: &pool,
            geodesic: &geodesic,
            traffic: &traffic,
            matrix: &matrix,
            sw: Some(&sw),
        };
        let mut scorer = PoolScorer::inline(pool.len());
        let mut values = vec![0.0; pool.len()];
        scorer.init(&ctx, &mut values);

        // Accept candidate 0 and repair the caches incrementally.
        let accepted = candidates[0].clone();
        let mut improved = ImprovedPairs::new(n);
        {
            let mut m = matrix.write().unwrap();
            improve_with_link_tracked(
                &mut m,
                accepted.site_a,
                accepted.site_b,
                accepted.mw_length_km,
                &mut improved,
            );
        }
        scorer.apply(
            &ctx,
            RoundUpdate::new(improved, Some(0), Vec::new(), &matrix.read().unwrap(), &sw),
            &mut values,
        );

        // Every repaired value matches an exact rescore to ulp noise.
        let m = matrix.read().unwrap();
        for (pos, &v) in values.iter().enumerate().skip(1) {
            let exact = ShardState::exact(&ctx, &m, pos);
            assert!(
                (v - exact).abs() < 1e-12,
                "pos {pos}: repaired {v} vs exact {exact}"
            );
        }
    }

    /// The repair must stay exact when the metric row skip is *not* armed
    /// as well (non-metric fixtures take this path).
    #[test]
    fn delta_repair_tracks_exact_rescoring_without_metric_skip() {
        let n = 7;
        let (candidates, geodesic, fiber, traffic) = fixture(n);
        let pool: Vec<usize> = (0..candidates.len()).collect();
        let sw = ScoringWeights::compute(&fiber, &geodesic, &traffic).unwrap();
        let matrix = RwLock::new(fiber.clone());
        let ctx = ScoreContext {
            candidates: &candidates,
            pool: &pool,
            geodesic: &geodesic,
            traffic: &traffic,
            matrix: &matrix,
            sw: Some(&sw),
        };
        let mut state = ShardState::new(0..pool.len());
        state.init_score(&ctx);
        let accepted = candidates[1].clone();
        let mut improved = ImprovedPairs::new(n);
        {
            let mut m = matrix.write().unwrap();
            improve_with_link_tracked(
                &mut m,
                accepted.site_a,
                accepted.site_b,
                accepted.mw_length_km,
                &mut improved,
            );
        }
        let update = RoundUpdate::new(improved, Some(1), Vec::new(), &matrix.read().unwrap(), &sw);
        assert!(update.row_skip_slack.is_none());
        state.apply(&ctx, &update);
        let m = matrix.read().unwrap();
        for (pos, &v) in state.values().iter().enumerate() {
            if pos == 1 {
                continue;
            }
            let exact = ShardState::exact(&ctx, &m, pos);
            assert!((v - exact).abs() < 1e-12, "pos {pos}: {v} vs {exact}");
        }
    }

    /// Manual profiling probe (release only):
    /// `cargo test --release -p cisp-core --lib engine::tests::profile_round -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn profile_round() {
        use crate::design::{DesignConfig, DesignInput, Designer};
        use cisp_geo::geodesic;
        use cisp_geo::GeoPoint;
        let n = 120;
        let sites: Vec<GeoPoint> = (0..n)
            .map(|i| {
                GeoPoint::new(
                    30.0 + ((i * 13) % 17) as f64,
                    -120.0 + ((i * 7) % 43) as f64 * 1.2,
                )
            })
            .collect();
        let geodesic_m = DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]));
        let fiber = DistMatrix::from_fn(n, |i, j| geodesic_m.get(i, j) * 2.0);
        let traffic = DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
        let mut candidates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let geo = geodesic_m.get(i, j);
                candidates.push(CandidateLink {
                    site_a: i,
                    site_b: j,
                    mw_length_km: geo * 1.05,
                    tower_count: ((geo / 60.0).ceil() as usize).max(1),
                    tower_path: vec![0],
                });
            }
        }
        let input = DesignInput {
            sites,
            traffic: traffic.clone(),
            fiber_km: fiber.clone(),
            candidates: candidates.clone(),
        };
        let pool = input.useful_candidates();
        let config = DesignConfig {
            parallel: false,
            ..DesignConfig::default()
        };
        let trajectory = Designer::with_config(&input, config).greedy(480.0).selected;
        let split = trajectory.len() * 2 / 3;
        let mut m = fiber.clone();
        for &idx in &trajectory[..split] {
            let l = &candidates[idx];
            cisp_graph::improve_with_link(&mut m, l.site_a, l.site_b, l.mw_length_km);
        }
        let mut sw = ScoringWeights::compute(&m, &geodesic_m, &traffic).unwrap();
        assert!(sw.enable_gain_bounds(&m), "2× geodesic fiber is metric");
        let matrix = RwLock::new(m);
        let ctx = ScoreContext {
            candidates: &candidates,
            pool: &pool,
            geodesic: &geodesic_m,
            traffic: &traffic,
            matrix: &matrix,
            sw: Some(&sw),
        };
        let mut state = ShardState::new(0..pool.len());
        state.init_score(&ctx);
        let l = candidates[trajectory[split]].clone();
        let mut improved = ImprovedPairs::new(n);
        {
            let mut mm = matrix.write().unwrap();
            improve_with_link_tracked(&mut mm, l.site_a, l.site_b, l.mw_length_km, &mut improved);
        }
        let p_len = improved.len();
        let update = RoundUpdate::new(improved, None, Vec::new(), &matrix.read().unwrap(), &sw);
        println!("|P| = {p_len}, pool = {}", pool.len());
        let mut stats = RepairStats::default();
        let apply_best = (0..7)
            .map(|_| {
                let mut s2 = state.clone();
                let t = std::time::Instant::now();
                s2.apply(&ctx, &update);
                let dt = t.elapsed();
                stats = s2.stats();
                dt
            })
            .min()
            .unwrap();
        println!("apply (best of 7): {apply_best:?}, stats (last run): {stats:?}");
        let mg = matrix.read().unwrap();
        let full_best = (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                for (pos, _) in pool.iter().enumerate() {
                    std::hint::black_box(ShardState::exact(&ctx, &mg, pos));
                }
                t.elapsed()
            })
            .min()
            .unwrap();
        println!(
            "full rescore (best of 3): {full_best:?} — ratio {:.1}x",
            full_best.as_secs_f64() / apply_best.as_secs_f64()
        );
    }

    #[test]
    fn repair_stats_accumulate() {
        let n = 6;
        let (candidates, geodesic, fiber, traffic) = fixture(n);
        let pool: Vec<usize> = (0..candidates.len()).collect();
        let mut sw = ScoringWeights::compute(&fiber, &geodesic, &traffic).unwrap();
        sw.enable_gain_bounds(&fiber);
        let matrix = RwLock::new(fiber.clone());
        let ctx = ScoreContext {
            candidates: &candidates,
            pool: &pool,
            geodesic: &geodesic,
            traffic: &traffic,
            matrix: &matrix,
            sw: Some(&sw),
        };
        let mut state = ShardState::new(0..pool.len());
        state.init_score(&ctx);
        let accepted = candidates[0].clone();
        let mut improved = ImprovedPairs::new(n);
        {
            let mut m = matrix.write().unwrap();
            improve_with_link_tracked(
                &mut m,
                accepted.site_a,
                accepted.site_b,
                accepted.mw_length_km,
                &mut improved,
            );
        }
        let update = RoundUpdate::new(improved, Some(0), Vec::new(), &matrix.read().unwrap(), &sw);
        state.apply(&ctx, &update);
        let stats = state.stats();
        assert_eq!(
            stats.repaired + stats.exact_fallbacks,
            (pool.len() - 1) as u64,
            "every surviving candidate is either repaired or re-scored"
        );
        assert!(stats.rows_skipped <= stats.rows_affected);
    }
}

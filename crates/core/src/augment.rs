//! Step 3: routing traffic and augmenting capacity (§3.3, §4 Step 3).
//!
//! A single series of towers carries about 1 Gbps (§2). Once the topology is
//! designed, the traffic matrix is scaled to the target aggregate throughput
//! and routed over shortest paths; every microwave link whose load exceeds
//! one series' capacity is augmented with parallel series of towers. Thanks
//! to the k² trick (connecting each tower of `k` parallel series to the next
//! tower of every series, Fig. 1), `k` series provide `k²` Gbps, so the number
//! of series needed for a load `L` is `ceil(sqrt(L / capacity))`.
//!
//! Each additional series re-uses the link's route but needs new towers along
//! it (the paper charges one new tower per tower position per extra series,
//! which is deliberately conservative — §4 notes existing towers can often be
//! found). The resulting [`BuildInventory`] feeds the [`crate::cost`] model.

use std::collections::HashSet;

use cisp_graph::DistMatrix;
use serde::{Deserialize, Serialize};

use crate::cost::BuildInventory;
use crate::topology::HybridTopology;

/// Configuration of the augmentation step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Capacity of a single series of towers, in Gbps (paper: 1 Gbps).
    pub per_series_gbps: f64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            per_series_gbps: 1.0,
        }
    }
}

/// Provisioning decision for one built microwave link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProvision {
    /// Index of the link in `topology.mw_links()`.
    pub link_index: usize,
    /// Traffic carried by the link, in Gbps (sum over both directions).
    pub load_gbps: f64,
    /// Number of parallel tower series provisioned (≥ 1).
    pub series: usize,
}

impl LinkProvision {
    /// Number of *additional* series beyond the first.
    pub fn extra_series(&self) -> usize {
        self.series.saturating_sub(1)
    }

    /// Capacity provided by the provisioned series under the k² rule.
    pub fn capacity_gbps(&self, config: &AugmentConfig) -> f64 {
        (self.series * self.series) as f64 * config.per_series_gbps
    }
}

/// The result of routing and augmentation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Augmentation {
    /// Per-link provisioning, indexed like `topology.mw_links()`.
    pub links: Vec<LinkProvision>,
    /// Aggregate throughput the network was provisioned for, in Gbps.
    pub aggregate_gbps: f64,
    /// Fraction of total traffic that rides at least one microwave link.
    pub mw_traffic_fraction: f64,
}

impl Augmentation {
    /// Histogram of links by number of extra series: `result[k]` is the number
    /// of links needing `k` additional series (Fig. 3's link classes).
    pub fn extra_series_histogram(&self) -> Vec<usize> {
        let max_extra = self
            .links
            .iter()
            .map(|l| l.extra_series())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max_extra + 1];
        for l in &self.links {
            hist[l.extra_series()] += 1;
        }
        hist
    }

    /// Build inventory for the cost model.
    pub fn inventory(&self, topology: &HybridTopology) -> BuildInventory {
        let mut hop_installations = 0usize;
        let mut new_towers_built = 0usize;
        let mut existing: HashSet<usize> = HashSet::new();
        for provision in &self.links {
            let link = &topology.mw_links()[provision.link_index];
            let hops_per_series = link.tower_count + 1;
            hop_installations += hops_per_series * provision.series;
            // Extra series need a new tower at each tower position.
            new_towers_built += link.tower_count * provision.extra_series();
            existing.extend(link.tower_path.iter().copied());
        }
        BuildInventory {
            hop_installations,
            existing_towers_used: existing.len(),
            new_towers_built,
        }
    }
}

/// Scale a relative traffic matrix so that the sum over unordered pairs
/// equals `aggregate_gbps`. Returns the per-pair demand matrix in Gbps.
pub fn scale_traffic(traffic: &DistMatrix, aggregate_gbps: f64) -> DistMatrix {
    assert!(aggregate_gbps >= 0.0);
    let total = traffic.upper_triangle_sum();
    assert!(total > 0.0, "traffic matrix has no positive entries");
    let factor = aggregate_gbps / total;
    DistMatrix::from_fn(traffic.n(), |i, j| {
        if i == j {
            0.0
        } else {
            traffic.get(i, j) * factor
        }
    })
}

/// Per-pair routing over the built topology: for every unordered pair, the
/// shortest latency-equivalent path over fiber plus built MW links, recording
/// which MW links it uses.
///
/// Routing uses a Dijkstra over the *site* graph whose edges are all fiber
/// pairs plus the built MW links, matching how the paper's simulations
/// aggregate parallel tower series into site-to-site links (§5).
pub fn route_demands(
    topology: &HybridTopology,
    demands_gbps: &DistMatrix,
    config: &AugmentConfig,
    aggregate_gbps: f64,
) -> Augmentation {
    let n = topology.num_sites();
    assert_eq!(demands_gbps.n(), n);

    // Adjacency: (neighbor, length_km, Some(mw link index) or None for fiber).
    let mut adjacency: Vec<Vec<(usize, f64, Option<usize>)>> = vec![Vec::new(); n];
    for (i, neighbors) in adjacency.iter_mut().enumerate() {
        for j in 0..n {
            if i != j && topology.fiber_km(i, j).is_finite() {
                neighbors.push((j, topology.fiber_km(i, j), None));
            }
        }
    }
    for (idx, link) in topology.mw_links().iter().enumerate() {
        adjacency[link.site_a].push((link.site_b, link.mw_length_km, Some(idx)));
        adjacency[link.site_b].push((link.site_a, link.mw_length_km, Some(idx)));
    }

    let mut loads = vec![0.0f64; topology.mw_links().len()];
    let mut mw_traffic = 0.0f64;
    let mut total_traffic = 0.0f64;

    for s in 0..n {
        // Dijkstra from s, remembering the incoming edge kind.
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(usize, Option<usize>)>> = vec![None; n];
        let mut settled = vec![false; n];
        dist[s] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((ordered_float(0.0), s)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            let d = d.0;
            if settled[u] {
                continue;
            }
            settled[u] = true;
            for &(v, w, link) in &adjacency[u] {
                let nd = d + w;
                if nd < dist[v] - 1e-12 {
                    dist[v] = nd;
                    prev[v] = Some((u, link));
                    heap.push(std::cmp::Reverse((ordered_float(nd), v)));
                }
            }
        }

        for t in (s + 1)..n {
            let demand = demands_gbps[s][t];
            if demand <= 0.0 {
                continue;
            }
            total_traffic += demand;
            // Walk the predecessor chain, accumulating MW link loads.
            let mut used_mw = false;
            let mut cur = t;
            while cur != s {
                match prev[cur] {
                    Some((p, link)) => {
                        if let Some(idx) = link {
                            loads[idx] += demand;
                            used_mw = true;
                        }
                        cur = p;
                    }
                    None => break, // unreachable pair: demand stays on (absent) fiber
                }
            }
            if used_mw {
                mw_traffic += demand;
            }
        }
    }

    let links = loads
        .iter()
        .enumerate()
        .map(|(link_index, &load_gbps)| {
            let series = if load_gbps <= 0.0 {
                1
            } else {
                (load_gbps / config.per_series_gbps).sqrt().ceil().max(1.0) as usize
            };
            LinkProvision {
                link_index,
                load_gbps,
                series,
            }
        })
        .collect();

    Augmentation {
        links,
        aggregate_gbps,
        mw_traffic_fraction: if total_traffic > 0.0 {
            mw_traffic / total_traffic
        } else {
            0.0
        },
    }
}

/// Route a topology's own traffic matrix at a target aggregate throughput and
/// provision the links (the common entry point).
pub fn augment_for_throughput(
    topology: &HybridTopology,
    aggregate_gbps: f64,
    config: &AugmentConfig,
) -> Augmentation {
    let demands = scale_traffic(topology.traffic(), aggregate_gbps);
    route_demands(topology, &demands, config, aggregate_gbps)
}

/// A totally ordered f64 wrapper for the binary heap (all values are finite).
fn ordered_float(v: f64) -> OrderedF64 {
    OrderedF64(v)
}

#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    fn three_site_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -95.0),
            GeoPoint::new(40.0, -90.0),
        ];
        let traffic = vec![
            vec![0.0, 1.0, 2.0],
            vec![1.0, 0.0, 1.0],
            vec![2.0, 1.0, 0.0],
        ];
        let fiber: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 2.0)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        let geo01 = geodesic::distance_km(sites[0], sites[1]);
        let geo12 = geodesic::distance_km(sites[1], sites[2]);
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: geo01 * 1.03,
            tower_count: 6,
            tower_path: vec![0, 1, 2, 3, 4, 5],
        });
        topo.add_mw_link(CandidateLink {
            site_a: 1,
            site_b: 2,
            mw_length_km: geo12 * 1.03,
            tower_count: 6,
            tower_path: vec![6, 7, 8, 9, 10, 11],
        });
        topo
    }

    #[test]
    fn scale_traffic_hits_aggregate() {
        let traffic = DistMatrix::from_nested(vec![
            vec![0.0, 1.0, 3.0],
            vec![1.0, 0.0, 1.0],
            vec![3.0, 1.0, 0.0],
        ]);
        let scaled = scale_traffic(&traffic, 100.0);
        let total: f64 = (0..3)
            .flat_map(|i| ((i + 1)..3).map(move |j| (i, j)))
            .map(|(i, j)| scaled[i][j])
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
        // Proportions preserved.
        assert!((scaled[0][2] / scaled[0][1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn routing_uses_mw_links_and_counts_loads() {
        let topo = three_site_topology();
        let aug = augment_for_throughput(&topo, 10.0, &AugmentConfig::default());
        assert_eq!(aug.links.len(), 2);
        // All traffic rides MW (it is always faster than the 2× fiber).
        assert!((aug.mw_traffic_fraction - 1.0).abs() < 1e-9);
        // The 0–2 demand traverses both links, so each link's load is the
        // sum of its own pair demand plus the transit demand.
        let total: f64 = aug.links.iter().map(|l| l.load_gbps).sum();
        assert!(total > 10.0, "transit demand must be counted on both links");
    }

    #[test]
    fn series_follow_k_squared_rule() {
        let topo = three_site_topology();
        // At 100 Gbps aggregate, the busier link carries tens of Gbps and
        // needs several series, but far fewer than load/1Gbps.
        let aug = augment_for_throughput(&topo, 100.0, &AugmentConfig::default());
        for l in &aug.links {
            let k = l.series as f64;
            assert!(
                k * k >= l.load_gbps - 1e-9,
                "k²={} < load {}",
                k * k,
                l.load_gbps
            );
            assert!((k - 1.0) * (k - 1.0) < l.load_gbps || l.series == 1);
            assert!(l.capacity_gbps(&AugmentConfig::default()) >= l.load_gbps - 1e-9);
        }
    }

    #[test]
    fn idle_link_still_gets_one_series() {
        let sites = vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -99.0),
            GeoPoint::new(20.0, -60.0),
        ];
        // Traffic only between 0 and 1.
        let traffic = vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ];
        let fiber: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 2.0)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: 100.0,
            tower_count: 1,
            tower_path: vec![0],
        });
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 2,
            mw_length_km: 4000.0,
            tower_count: 40,
            tower_path: (1..41).collect(),
        });
        let aug = augment_for_throughput(&topo, 5.0, &AugmentConfig::default());
        assert_eq!(aug.links[1].load_gbps, 0.0);
        assert_eq!(aug.links[1].series, 1);
    }

    #[test]
    fn inventory_counts_hops_and_new_towers() {
        let topo = three_site_topology();
        let aug = augment_for_throughput(&topo, 50.0, &AugmentConfig::default());
        let inv = aug.inventory(&topo);
        // 12 distinct towers across the two links.
        assert_eq!(inv.existing_towers_used, 12);
        // Hop installations: (6+1) hops per series per link.
        let expected_hops: usize = aug
            .links
            .iter()
            .map(|l| (topo.mw_links()[l.link_index].tower_count + 1) * l.series)
            .sum();
        assert_eq!(inv.hop_installations, expected_hops);
        // New towers appear only when extra series exist.
        let expected_new: usize = aug
            .links
            .iter()
            .map(|l| topo.mw_links()[l.link_index].tower_count * l.extra_series())
            .sum();
        assert_eq!(inv.new_towers_built, expected_new);
    }

    #[test]
    fn higher_throughput_needs_no_fewer_series() {
        let topo = three_site_topology();
        let low = augment_for_throughput(&topo, 10.0, &AugmentConfig::default());
        let high = augment_for_throughput(&topo, 200.0, &AugmentConfig::default());
        for (l, h) in low.links.iter().zip(high.links.iter()) {
            assert!(h.series >= l.series);
        }
        let hist = high.extra_series_histogram();
        assert_eq!(hist.iter().sum::<usize>(), high.links.len());
    }

    #[test]
    #[should_panic]
    fn scale_traffic_rejects_all_zero_matrix() {
        scale_traffic(&DistMatrix::zeros(3), 10.0);
    }
}

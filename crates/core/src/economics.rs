//! The capacity-expansion loop: which microwave link to upgrade next, and
//! what the upgrade buys in *delivered* foreground latency (§8 cost-benefit,
//! grounded in simulation instead of propagation-only arithmetic).
//!
//! cISP's pitch is selling a low-latency service tier alongside bulk
//! transit, so the money question is marginal: given a designed topology and
//! a classified traffic mix, which link upgrade most improves the foreground
//! class's P99 delivered latency per dollar spent? This module closes the
//! design → simulate → economics loop:
//!
//! 1. simulate the lowered network once (the baseline) and read the
//!    foreground P99 *queueing* delay from [`SimReport::per_class`] — the
//!    component of delivered latency an upgrade can actually buy
//!    (propagation is fixed by geometry, and a P99 over the full delivered
//!    latency is dominated by route-length diversity, not congestion);
//! 2. shortlist the microwave links with the highest simulated utilisation —
//!    queueing lives where utilisation does, so these are the only upgrades
//!    that can move a delay quantile;
//! 3. re-simulate once per shortlisted link with that link's rate multiplied
//!    (both directions), pricing the upgrade as one extra parallel radio
//!    series over the link's tower path ([`CostModel::hop_cost_1gbps_usd`]
//!    per tower-to-tower hop — the same marginal cost the augmentation step
//!    charges for added series);
//! 4. rank by P99 improvement per (million dollars × km) — improvement per
//!    $-km, so a short cheap upgrade that buys the same milliseconds beats a
//!    long expensive one.
//!
//! Everything is deterministic: the same lowering, seed and discipline are
//! used for the baseline and every candidate, candidate order follows the
//! topology's MW-link order, and ties rank by that index.
//!
//! [`SimReport::per_class`]: cisp_netsim::SimReport::per_class

use cisp_netsim::SimReport;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::evaluate::LoweredNetwork;
use crate::topology::HybridTopology;

/// Knobs of the upgrade search.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UpgradeConfig {
    /// Factor applied to an upgraded link's rate in both directions.
    /// The default `2.0` models one extra parallel radio series.
    pub rate_multiplier: f64,
    /// How many of the most-utilised microwave links to re-simulate. Each
    /// candidate costs one full simulation run; the utilisation shortlist
    /// keeps the loop affordable on paper-scale lowerings.
    pub max_candidates: usize,
}

impl Default for UpgradeConfig {
    fn default() -> Self {
        Self {
            rate_multiplier: 2.0,
            max_candidates: 8,
        }
    }
}

/// One evaluated upgrade: what it costs, and what it buys.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UpgradeOption {
    /// Index into `topology.mw_links()` / `lowered.mw_link_ids`.
    pub mw_link_index: usize,
    /// Endpoint site indices.
    pub site_a: usize,
    /// Endpoint site indices.
    pub site_b: usize,
    /// Microwave path length, km.
    pub length_km: f64,
    /// Baseline simulated utilisation of the link (max over directions).
    pub baseline_utilization: f64,
    /// Price of one extra parallel radio series over the link's tower path.
    pub upgrade_cost_usd: f64,
    /// Foreground P99 queueing delay with this link upgraded, ms.
    pub upgraded_fg_p99_ms: f64,
    /// Baseline P99 queueing delay minus upgraded (positive = the upgrade
    /// helps), ms.
    pub improvement_ms: f64,
    /// The ranking score: `improvement_ms / (cost_M$ × length_km)` —
    /// milliseconds of foreground P99 bought per million dollars per km.
    pub improvement_per_musd_km: f64,
}

/// The ranked outcome of one [`rank_upgrades`] search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpgradeRanking {
    /// Baseline foreground P99 queueing delay, ms.
    pub baseline_fg_p99_ms: f64,
    /// Evaluated upgrades, best score first (ties broken by MW-link index).
    pub options: Vec<UpgradeOption>,
}

/// Foreground P99 queueing delay of a report: the per-class vector on
/// classified runs; on an unclassified set every packet is foreground, so
/// the global mean queueing delay is the closest available statistic
/// (documented fallback — the economics loop is meant to run on classified
/// mixes).
fn foreground_p99_ms(report: &SimReport) -> f64 {
    report.per_class.map_or(report.mean_queue_delay_ms, |pc| {
        pc.foreground.p99_queue_delay_ms
    })
}

/// Tower-to-tower hops along a built MW link: `tower_count − 1` segments of
/// the stored tower path (a 1-tower degenerate path still installs one
/// radio pair, so it is floored at one hop).
fn link_hops(tower_count: usize) -> usize {
    tower_count.saturating_sub(1).max(1)
}

/// Rank candidate microwave-link capacity upgrades by simulated foreground
/// P99 improvement per $-km. See the module docs for the loop's shape; the
/// returned options are sorted best-first and include every shortlisted
/// candidate (negative improvements too — a ranking that silently dropped
/// "upgrade did nothing" rows would overstate the tail's sensitivity).
pub fn rank_upgrades(
    topology: &HybridTopology,
    lowered: &LoweredNetwork,
    cost_model: &CostModel,
    config: &UpgradeConfig,
) -> UpgradeRanking {
    assert!(config.rate_multiplier > 1.0, "an upgrade must add capacity");
    let mw_links = topology.mw_links();
    assert_eq!(
        mw_links.len(),
        lowered.mw_link_ids.len(),
        "lowering does not match the topology's MW links"
    );

    let baseline = lowered.simulation().run();
    let baseline_fg_p99_ms = foreground_p99_ms(&baseline);

    // Shortlist by simulated utilisation (max over the two directions),
    // ties by MW-link index for determinism.
    let mut shortlist: Vec<(usize, f64)> = lowered
        .mw_link_ids
        .iter()
        .enumerate()
        .filter(|&(_, &(fwd, _))| fwd != usize::MAX)
        .map(|(idx, &(fwd, rev))| {
            let u = baseline.link_utilizations[fwd].max(baseline.link_utilizations[rev]);
            (idx, u)
        })
        .collect();
    shortlist.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    shortlist.truncate(config.max_candidates);

    let mut options: Vec<UpgradeOption> = shortlist
        .into_iter()
        .map(|(idx, utilization)| {
            let (fwd, rev) = lowered.mw_link_ids[idx];
            let link = &mw_links[idx];
            let mut network = lowered.network.clone();
            for id in [fwd, rev] {
                network.set_link_rate(id, network.link(id).rate_bps * config.rate_multiplier);
            }
            let report =
                cisp_netsim::Simulation::new(network, lowered.demands.clone(), lowered.config.sim)
                    .run();
            let upgraded_fg_p99_ms = foreground_p99_ms(&report);
            let improvement_ms = baseline_fg_p99_ms - upgraded_fg_p99_ms;
            let upgrade_cost_usd =
                link_hops(link.tower_count) as f64 * cost_model.hop_cost_1gbps_usd;
            let cost_musd_km = (upgrade_cost_usd / 1e6) * link.mw_length_km.max(1.0);
            UpgradeOption {
                mw_link_index: idx,
                site_a: link.site_a,
                site_b: link.site_b,
                length_km: link.mw_length_km,
                baseline_utilization: utilization,
                upgrade_cost_usd,
                upgraded_fg_p99_ms,
                improvement_ms,
                improvement_per_musd_km: improvement_ms / cost_musd_km,
            }
        })
        .collect();
    options.sort_by(|a, b| {
        b.improvement_per_musd_km
            .total_cmp(&a.improvement_per_musd_km)
            .then(a.mw_link_index.cmp(&b.mw_link_index))
    });

    UpgradeRanking {
        baseline_fg_p99_ms,
        options,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{lower_classified, EvaluateConfig};
    use crate::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};
    use cisp_netsim::flows::ArrivalProcess;
    use cisp_netsim::sim::SimConfig;

    /// Four sites, MW chain 0–1–2 and spur 1–3, fiber at 1.9× geodesic —
    /// the same shape as the evaluate-layer fixture.
    fn test_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(39.1, -94.6),
            GeoPoint::new(32.8, -96.8),
            GeoPoint::new(39.7, -105.0),
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    fn classified_lowering(topo: &HybridTopology) -> LoweredNetwork {
        let config = EvaluateConfig {
            design_aggregate_gbps: 4.0,
            // Heavy load so the MW spine actually queues and an upgrade has
            // something to improve.
            load_fraction: 0.9,
            sim: SimConfig {
                duration_s: 0.05,
                // Bursty arrivals so sub-unity utilisation still queues —
                // the statistic the ranking moves is the queueing tail.
                arrivals: ArrivalProcess::Poisson,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        };
        lower_classified(topo, topo.traffic(), topo.traffic(), 2.0, &config)
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let topo = test_topology();
        let lowered = classified_lowering(&topo);
        let a = rank_upgrades(
            &topo,
            &lowered,
            &CostModel::default(),
            &UpgradeConfig::default(),
        );
        let b = rank_upgrades(
            &topo,
            &lowered,
            &CostModel::default(),
            &UpgradeConfig::default(),
        );
        assert_eq!(a.options.len(), 3, "all three MW links shortlisted");
        assert!(a.baseline_fg_p99_ms > 0.0);
        for (x, y) in a.options.iter().zip(&b.options) {
            assert_eq!(x.mw_link_index, y.mw_link_index);
            assert_eq!(
                x.improvement_per_musd_km.to_bits(),
                y.improvement_per_musd_km.to_bits()
            );
        }
        // Sorted best-first.
        for w in a.options.windows(2) {
            assert!(w[0].improvement_per_musd_km >= w[1].improvement_per_musd_km);
        }
        // Every option priced: at least one hop at the 1 Gbps hop cost.
        for o in &a.options {
            assert!(o.upgrade_cost_usd >= CostModel::default().hop_cost_1gbps_usd);
            assert!(o.length_km > 0.0);
        }
    }

    #[test]
    fn shortlist_cap_limits_the_simulated_candidates() {
        let topo = test_topology();
        let lowered = classified_lowering(&topo);
        let config = UpgradeConfig {
            max_candidates: 1,
            ..UpgradeConfig::default()
        };
        let ranking = rank_upgrades(&topo, &lowered, &CostModel::default(), &config);
        assert_eq!(ranking.options.len(), 1);
    }

    #[test]
    #[should_panic]
    fn non_expanding_multiplier_is_rejected() {
        let topo = test_topology();
        let lowered = classified_lowering(&topo);
        let config = UpgradeConfig {
            rate_multiplier: 1.0,
            ..UpgradeConfig::default()
        };
        rank_upgrades(&topo, &lowered, &CostModel::default(), &config);
    }
}

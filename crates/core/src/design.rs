//! Step 2: topology design under a tower budget (§3.2).
//!
//! Given the candidate site-to-site microwave links (with their
//! latency-equivalent lengths `m_ij` and tower costs `c_ij`), the
//! always-available fiber distances `o_ij`, and a traffic matrix `h_ij`, pick
//! the subset of links to build within a tower budget `B` so that the
//! traffic-weighted mean stretch is minimised.
//!
//! Two design procedures are provided:
//!
//! * [`Designer::greedy`] — the scalable greedy: repeatedly add the candidate
//!   link that lowers mean stretch the most (the paper's pruning heuristic),
//!   with candidate scores maintained incrementally so that only a handful
//!   of candidates are exactly re-scored per iteration.
//! * [`Designer::cisp`] — the full cISP heuristic: run the greedy with an
//!   inflated (2×) budget to identify a candidate pool, then re-select within
//!   the real budget and polish with budget-respecting swap local search.
//!   (The paper hands the pruned pool to Gurobi; our pool-restricted
//!   selection plus swaps plays that role, and [`crate::ilp`] provides the
//!   exact formulation for the small instances where it is tractable.)
//!
//! Both procedures start by applying the paper's "fiber oracle" elimination:
//! a candidate MW link whose length is no better than the fiber distance
//! between its endpoints can never improve any route and is dropped outright.
//! This is exact, not an approximation.
//!
//! ## The incremental delta-scoring engine
//!
//! Candidate scoring — one O(n²) [`mean_stretch_with_link`] sweep per
//! candidate — dominates design time. The default engine
//! ([`ScoringEngine::Incremental`], see [`crate::engine`]) keeps a cached
//! predicted stretch per pool candidate and, after each accepted link,
//! repairs the caches from the link's improved-pair delta instead of
//! re-sweeping: candidates whose endpoints the accepted link did not touch
//! get an exact O(|improved|) repair, touched candidates are re-scored with
//! the exact kernel, and the winning candidate of every round is always
//! re-scored exactly before acceptance — so the engine selects the same
//! designs as full rescoring (pinned by `tests/matrix_engine_parity.rs`).
//! [`ScoringEngine::FullRescore`] keeps the rebuild-and-rescore path as the
//! conservative reference.
//!
//! Scoring parallelism comes from *persistent worker shards*
//! ([`crate::engine::ShardPool`]): worker threads spawned once per design
//! run, each owning a stable contiguous slice of the candidate pool across
//! all greedy rounds and swap passes, replacing the per-batch rayon fan-out.
//! Serial and parallel runs select bit-identical designs (the shard math is
//! shared and reductions are order-fixed). The swap polish evaluates each
//! trial against a reusable copy-on-write scratch matrix instead of
//! rebuilding a full trial topology per `(out, in)` pair, turning each trial
//! from "clone three matrices + recompute geodesics + k incremental updates"
//! into one allocation-free scoring sweep.

use std::sync::RwLock;
use std::thread;

use cisp_geo::GeoPoint;
use cisp_graph::{improve_with_link_tracked, DistMatrix, ImprovedPairs};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::engine::{PoolScorer, RoundUpdate, ScoreContext, ShardPool};
use crate::links::CandidateLink;
use crate::topology::{
    improve_with_link, mean_stretch_with_link, mean_stretch_with_link_compact, HybridTopology,
    ScoringWeights,
};

/// How the greedy scores a candidate link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyScore {
    /// Absolute reduction in mean stretch (the paper's rule).
    AbsoluteGain,
    /// Reduction in mean stretch per tower of cost (cost-aware variant,
    /// used in the ablation benchmarks).
    GainPerTower,
}

/// Pool-size threshold of [`ScoringEngine::Auto`]: pools at or below this
/// size run the full-rescore engine (whose per-round cost is small and whose
/// bound-ordered scan skips most of it), larger pools the incremental
/// engine. Chosen from the recorded `BENCH_design.json` crossover: at
/// n=30 (pool ≈ 435) full rescore wins, at n=60 (pool ≈ 1770) the
/// incremental engine is ~2× ahead.
pub const AUTO_FULL_RESCORE_MAX_POOL: usize = 512;

/// How the greedy maintains candidate scores across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoringEngine {
    /// Pick the engine per run from the pool size (the default):
    /// [`Self::FullRescore`] at or below [`AUTO_FULL_RESCORE_MAX_POOL`]
    /// candidates — where cached-score bookkeeping costs more than it saves
    /// — and [`Self::Incremental`] above it. Both engines select identical
    /// designs, so this is purely a performance dispatch.
    Auto,
    /// Incremental delta-scoring: cached per-candidate gains repaired from
    /// each accepted link's improved-pair set, with exact kernel re-scoring
    /// of touched candidates and of every round's winner. Selects the same
    /// designs as [`Self::FullRescore`] whenever candidate scores are
    /// separated by more than the repair's ulp-level summation noise
    /// (~1e-14 relative; exactly tied scores could in principle break ties
    /// differently — pinned equal on all parity/property fixtures). Falls
    /// back to [`Self::FullRescore`] automatically when the input has
    /// non-finite distances on traffic pairs (where the incremental
    /// decomposition does not apply).
    Incremental,
    /// The conservative reference: every surviving candidate re-scored
    /// against the current matrix each round. When the run's starting
    /// matrix is verified metric, the scan is bound-ordered: candidates
    /// are scored in descending order of their O(1) gain upper bound
    /// ([`ScoringWeights::gain_upper_bound`]) and the round stops as soon
    /// as no unscored bound can beat the best exact score — the selected
    /// argmax (and tie-break) is provably unchanged.
    FullRescore,
}

/// Configuration of the design procedures.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DesignConfig {
    /// Scoring rule for the greedy.
    pub score: GreedyScore,
    /// Budget-inflation factor for the candidate-pruning phase of the cISP
    /// heuristic (paper: 2×).
    pub pruning_budget_factor: f64,
    /// Maximum number of improving swap passes in the polishing phase.
    pub max_swap_passes: usize,
    /// Minimum mean-stretch gain for a link to be worth adding.
    pub min_gain: f64,
    /// Fan candidate scoring out across persistent worker shards. Scoring is
    /// read-only and the reduction order is fixed, so parallel and serial
    /// runs select identical designs; the flag exists for benchmarking and
    /// for debugging with a deterministic single-threaded profile.
    pub parallel: bool,
    /// Scoring engine for the greedy phases.
    pub engine: ScoringEngine,
}

impl Default for DesignConfig {
    fn default() -> Self {
        Self {
            score: GreedyScore::AbsoluteGain,
            pruning_budget_factor: 2.0,
            max_swap_passes: 3,
            min_gain: 1e-9,
            parallel: true,
            engine: ScoringEngine::Auto,
        }
    }
}

/// One step of the greedy build-out: the cumulative tower cost and the mean
/// stretch after adding the step's link. Recording every step lets a single
/// design run produce the whole stretch-vs-budget curve of Fig. 4(a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignStep {
    /// Index into the candidate list of the link added at this step.
    pub candidate_index: usize,
    /// Cumulative tower cost after this step.
    pub cumulative_towers: usize,
    /// Traffic-weighted mean stretch after this step.
    pub mean_stretch: f64,
}

/// The inputs of the design problem.
#[derive(Debug, Clone)]
pub struct DesignInput {
    /// Site locations.
    pub sites: Vec<GeoPoint>,
    /// Traffic weights `h_ij` (symmetric, zero diagonal).
    pub traffic: DistMatrix,
    /// Latency-equivalent fiber distances `o_ij` (km, symmetric).
    pub fiber_km: DistMatrix,
    /// Candidate direct MW links from step 1.
    pub candidates: Vec<CandidateLink>,
}

impl DesignInput {
    /// A fresh topology with no MW links built.
    pub fn empty_topology(&self) -> HybridTopology {
        HybridTopology::new(
            self.sites.clone(),
            self.traffic.clone(),
            self.fiber_km.clone(),
        )
    }

    /// Indices of candidates that survive the fiber-oracle elimination: the
    /// MW link must be strictly shorter (latency-equivalent) than the fiber
    /// distance between its endpoints.
    pub fn useful_candidates(&self) -> Vec<usize> {
        self.candidates
            .iter()
            .enumerate()
            .filter(|(_, l)| l.mw_length_km < self.fiber_km.get(l.site_a, l.site_b))
            .map(|(i, _)| i)
            .collect()
    }
}

/// The result of a design run.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// Indices (into the input candidate list) of the links selected.
    pub selected: Vec<usize>,
    /// The resulting topology with the selected links built.
    pub topology: HybridTopology,
    /// Total tower cost of the selected links.
    pub total_towers: usize,
    /// Final traffic-weighted mean stretch.
    pub mean_stretch: f64,
    /// The greedy build-out history (empty for non-greedy methods).
    pub history: Vec<DesignStep>,
}

/// Score every candidate in `pool` against `topology`: the predicted mean
/// stretch after adding each link, one O(n²) sweep per candidate. Runs the
/// sweeps across cores when `parallel` is set; output order follows `pool`
/// either way. Public so the kernel benchmarks can measure the serial vs
/// parallel scorer on identical inputs.
pub fn score_candidates(
    topology: &HybridTopology,
    candidates: &[CandidateLink],
    pool: &[usize],
    parallel: bool,
) -> Vec<f64> {
    let sw = ScoringWeights::compute(
        topology.effective_matrix(),
        topology.geodesic_matrix(),
        topology.traffic(),
    );
    score_pool_against(
        topology.effective_matrix(),
        topology.geodesic_matrix(),
        topology.traffic(),
        sw.as_ref(),
        candidates,
        pool,
        parallel,
    )
}

/// The one serial-vs-parallel scoring dispatch: predicted mean stretch of
/// each `pool` candidate against explicit matrices (the cached topology
/// matrices in the greedy, a scratch matrix in the swap polish). Uses the
/// compact vectorised kernel when the caller precomputed [`ScoringWeights`],
/// the scalar reference kernel otherwise. The two kernels agree to summation
/// ulp (pinned by the kernel parity tests) but not bitwise — every path of a
/// design run therefore uses one or the other consistently, never a mix.
#[allow(clippy::too_many_arguments)]
fn score_pool_against(
    effective: &DistMatrix,
    geodesic: &DistMatrix,
    traffic: &DistMatrix,
    sw: Option<&ScoringWeights>,
    candidates: &[CandidateLink],
    pool: &[usize],
    parallel: bool,
) -> Vec<f64> {
    let score_one = |&idx: &usize| {
        let l = &candidates[idx];
        match sw {
            Some(sw) => {
                mean_stretch_with_link_compact(effective, sw, l.site_a, l.site_b, l.mw_length_km)
            }
            None => mean_stretch_with_link(
                effective,
                geodesic,
                traffic,
                l.site_a,
                l.site_b,
                l.mw_length_km,
            ),
        }
    };
    if parallel {
        pool.par_iter().map(score_one).collect()
    } else {
        pool.iter().map(score_one).collect()
    }
}

/// The topology designer.
pub struct Designer<'a> {
    input: &'a DesignInput,
    config: DesignConfig,
}

impl<'a> Designer<'a> {
    /// Create a designer with the default configuration.
    pub fn new(input: &'a DesignInput) -> Self {
        Self::with_config(input, DesignConfig::default())
    }

    /// Create a designer with an explicit configuration.
    pub fn with_config(input: &'a DesignInput, config: DesignConfig) -> Self {
        assert!(config.pruning_budget_factor >= 1.0);
        Self { input, config }
    }

    fn score(&self, gain: f64, cost: usize) -> f64 {
        match self.config.score {
            GreedyScore::AbsoluteGain => gain,
            GreedyScore::GainPerTower => gain / (cost.max(1) as f64),
        }
    }

    /// Greedy design over an explicit candidate pool (indices into the input
    /// candidate list), dispatched to the configured scoring engine.
    fn greedy_over(&self, pool: &[usize], budget_towers: f64) -> DesignOutcome {
        match self.config.engine {
            ScoringEngine::Auto => {
                if pool.len() <= AUTO_FULL_RESCORE_MAX_POOL {
                    self.greedy_full_rescore(pool, budget_towers)
                } else {
                    self.greedy_incremental(pool, budget_towers)
                }
            }
            ScoringEngine::Incremental => self.greedy_incremental(pool, budget_towers),
            ScoringEngine::FullRescore => self.greedy_full_rescore(pool, budget_towers),
        }
    }

    /// Number of persistent scoring shards a design run fans out to (1 = run
    /// inline on the calling thread).
    fn shard_count(&self, pool_len: usize) -> usize {
        if self.config.parallel {
            rayon::current_num_threads().clamp(1, pool_len.max(1))
        } else {
            1
        }
    }

    /// The incremental delta-scoring greedy (see [`crate::engine`]).
    ///
    /// Every pool candidate's predicted stretch is cached; after each
    /// accepted link the caches are repaired from the link's improved-pair
    /// set by the persistent shards. Selection re-scores the provisional
    /// winner with the exact kernel and accepts only once the exact value is
    /// still the best cached priority, so the chosen sequence matches full
    /// rescoring while almost all O(n²) sweeps disappear.
    fn greedy_incremental(&self, pool: &[usize], budget_towers: f64) -> DesignOutcome {
        let input = self.input;
        let base = input.empty_topology();
        let sw = ScoringWeights::compute(
            base.effective_matrix(),
            base.geodesic_matrix(),
            base.traffic(),
        );
        let Some(mut sw) = sw else {
            // Non-finite distances on scored pairs (or no traffic at all):
            // the delta decomposition does not apply; use the reference
            // engine (which falls back to the scalar kernel for the same
            // reason).
            return self.greedy_full_rescore(pool, budget_towers);
        };
        // Arms the O(1) per-row metric skip of the repair sweeps when the
        // starting matrix is verified metric (distances only shrink, so one
        // check covers every round). No-op on non-metric inputs.
        sw.enable_gain_bounds(base.effective_matrix());
        let effective = RwLock::new(input.fiber_km.clone());
        let ctx = ScoreContext {
            candidates: &input.candidates,
            pool,
            geodesic: base.geodesic_matrix(),
            traffic: base.traffic(),
            matrix: &effective,
            sw: Some(&sw),
        };
        let workers = self.shard_count(pool.len());
        let selected = if workers <= 1 || pool.is_empty() {
            let mut scorer = PoolScorer::inline(pool.len());
            self.run_incremental(&ctx, &mut scorer, budget_towers)
        } else {
            thread::scope(|scope| {
                let mut scorer = PoolScorer::Sharded(ShardPool::spawn(scope, &ctx, workers));
                self.run_incremental(&ctx, &mut scorer, budget_towers)
            })
        };

        // Replay the selection through a fresh topology so the returned
        // state (and its reported stretch) is bit-identical to what the
        // full-rescore engine builds.
        let mut topology = input.empty_topology();
        let mut history = Vec::with_capacity(selected.len());
        let mut total_towers = 0usize;
        for &idx in &selected {
            let link = input.candidates[idx].clone();
            total_towers += link.tower_count;
            topology.add_mw_link(link);
            history.push(DesignStep {
                candidate_index: idx,
                cumulative_towers: total_towers,
                mean_stretch: topology.mean_stretch(),
            });
        }
        DesignOutcome {
            selected,
            mean_stretch: topology.mean_stretch(),
            total_towers,
            topology,
            history,
        }
    }

    /// The incremental greedy's selection loop: returns the accepted
    /// candidate indices in acceptance order. `ctx.matrix` ends up holding
    /// the final effective matrix.
    fn run_incremental(
        &self,
        ctx: &ScoreContext,
        scorer: &mut PoolScorer,
        budget_towers: f64,
    ) -> Vec<usize> {
        let pool = ctx.pool;
        let budget = budget_towers.floor() as usize;
        let mut values = vec![f64::INFINITY; pool.len()];
        scorer.init(ctx, &mut values);
        let mut removed = vec![false; pool.len()];
        let mut refreshed = vec![false; pool.len()];
        let stretch_of = |matrix: &DistMatrix| {
            crate::topology::weighted_mean_stretch(matrix, ctx.geodesic, ctx.traffic)
        };
        let mut current_stretch = stretch_of(&ctx.matrix.read().unwrap());
        let mut selected = Vec::new();
        let mut total_towers = 0usize;
        let mut improved = ImprovedPairs::new(ctx.geodesic.n());

        loop {
            // Select this round's link: repeatedly take the best cached
            // priority among affordable candidates, re-score it with the
            // exact kernel, and accept once the winner's value is exact.
            refreshed.fill(false);
            let mut overrides: Vec<(usize, f64)> = Vec::new();
            let mut chosen: Option<usize> = None;
            loop {
                let mut best: Option<(f64, usize)> = None;
                for pos in 0..pool.len() {
                    if removed[pos] {
                        continue;
                    }
                    let cost = self.input.candidates[pool[pos]].tower_count;
                    if total_towers + cost > budget {
                        continue;
                    }
                    let priority = self.score(current_stretch - values[pos], cost);
                    if priority <= self.config.min_gain {
                        continue;
                    }
                    // Strict `>` keeps the lowest position on ties, matching
                    // the full-rescore engine's deterministic tie-break.
                    if best.is_none() || priority > best.unwrap().0 {
                        best = Some((priority, pos));
                    }
                }
                let Some((_, pos)) = best else { break };
                if refreshed[pos] {
                    // Exact value and still the best priority: accept (the
                    // priority filter above already guarantees the gain
                    // clears `min_gain`).
                    chosen = Some(pos);
                    break;
                }
                let exact = {
                    let matrix = ctx.matrix.read().unwrap();
                    let l = &self.input.candidates[pool[pos]];
                    // Same kernel as the shards' exact rescoring, so the
                    // winner's refreshed value is bit-identical to what a
                    // shard fallback would have produced.
                    match ctx.sw {
                        Some(sw) => mean_stretch_with_link_compact(
                            &matrix,
                            sw,
                            l.site_a,
                            l.site_b,
                            l.mw_length_km,
                        ),
                        None => mean_stretch_with_link(
                            &matrix,
                            ctx.geodesic,
                            ctx.traffic,
                            l.site_a,
                            l.site_b,
                            l.mw_length_km,
                        ),
                    }
                };
                values[pos] = exact;
                refreshed[pos] = true;
                overrides.push((pos, exact));
            }

            let Some(pos) = chosen else { break };
            let link = self.input.candidates[pool[pos]].clone();
            total_towers += link.tower_count;
            {
                let mut matrix = ctx.matrix.write().unwrap();
                improve_with_link_tracked(
                    &mut matrix,
                    link.site_a,
                    link.site_b,
                    link.mw_length_km,
                    &mut improved,
                );
            }
            current_stretch = stretch_of(&ctx.matrix.read().unwrap());
            selected.push(pool[pos]);
            removed[pos] = true;
            let update = RoundUpdate::new(
                std::mem::replace(&mut improved, ImprovedPairs::new(ctx.geodesic.n())),
                Some(pos),
                overrides,
                &ctx.matrix.read().unwrap(),
                ctx.sw
                    .expect("incremental greedy always precomputes weights"),
            );
            scorer.apply(ctx, update, &mut values);
        }
        selected
    }

    /// The reference rebuild-and-rescore greedy: every surviving affordable
    /// candidate is re-scored with the exact O(n²) kernel after every
    /// accepted link, and the true argmax is taken (ties broken by earliest
    /// pool position). This is the semantics the incremental engine is
    /// pinned against — and the cost profile it exists to remove.
    ///
    /// When the starting matrix is verified metric, the per-round scan is
    /// bound-ordered ([`Self::bound_ordered_argmax`]): candidates are sorted
    /// by their O(1) gain upper bound and exact scoring stops once no
    /// remaining bound can beat the incumbent. Every skipped candidate's
    /// exact priority is at most its bound, which is strictly below the
    /// incumbent's exact priority — so the argmax and its tie-break are
    /// identical to the plain scan's.
    fn greedy_full_rescore(&self, pool: &[usize], budget_towers: f64) -> DesignOutcome {
        let mut topology = self.input.empty_topology();
        let mut sw = ScoringWeights::compute(
            topology.effective_matrix(),
            topology.geodesic_matrix(),
            topology.traffic(),
        );
        let bounds_armed = match sw.as_mut() {
            Some(sw) => sw.enable_gain_bounds(topology.effective_matrix()),
            None => false,
        };
        let sw = sw;
        let mut selected = Vec::new();
        let mut history = Vec::new();
        let mut total_towers = 0usize;
        let mut current_stretch = topology.mean_stretch();
        let budget = budget_towers.floor() as usize;
        // Surviving candidates, in pool order (the tie-break order).
        let mut remaining: Vec<usize> = pool.to_vec();

        loop {
            let affordable: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&idx| total_towers + self.input.candidates[idx].tower_count <= budget)
                .collect();
            if affordable.is_empty() {
                break;
            }
            let best = if bounds_armed {
                self.bound_ordered_argmax(
                    &topology,
                    sw.as_ref().expect("armed bounds imply computed weights"),
                    current_stretch,
                    &affordable,
                )
            } else {
                // One full batch of O(n²) scoring sweeps, fanned out across
                // cores, then the exact argmax (strict `>` keeps the
                // earliest pool position on ties).
                let scores = score_pool_against(
                    topology.effective_matrix(),
                    topology.geodesic_matrix(),
                    topology.traffic(),
                    sw.as_ref(),
                    &self.input.candidates,
                    &affordable,
                    self.config.parallel,
                );
                let mut best: Option<(f64, usize)> = None;
                for (&idx, &with_link) in affordable.iter().zip(&scores) {
                    let score = self.score(
                        current_stretch - with_link,
                        self.input.candidates[idx].tower_count,
                    );
                    if score > self.config.min_gain && (best.is_none() || score > best.unwrap().0) {
                        best = Some((score, idx));
                    }
                }
                best
            };
            let Some((_, idx)) = best else { break };
            let link = self.input.candidates[idx].clone();
            total_towers += link.tower_count;
            topology.add_mw_link(link);
            current_stretch = topology.mean_stretch();
            selected.push(idx);
            history.push(DesignStep {
                candidate_index: idx,
                cumulative_towers: total_towers,
                mean_stretch: current_stretch,
            });
            remaining.retain(|&i| i != idx);
        }

        DesignOutcome {
            selected,
            mean_stretch: topology.mean_stretch(),
            total_towers,
            topology,
            history,
        }
    }

    /// Bound-ordered exact argmax over `affordable`: the same `(priority,
    /// index)` winner as the plain scan, exactly scoring only candidates
    /// whose gain upper bound could still beat the incumbent.
    ///
    /// Both scoring rules are monotone in the gain at fixed tower cost, so
    /// `priority <= self.score(gain_upper_bound, cost)` always holds; a
    /// candidate whose bound is strictly below the incumbent's exact
    /// priority (or at most `min_gain`) can therefore never be selected.
    /// Bounds *equal* to the incumbent priority keep scoring — such a
    /// candidate could tie exactly and win the earliest-position tie-break.
    fn bound_ordered_argmax(
        &self,
        topology: &HybridTopology,
        sw: &ScoringWeights,
        current_stretch: f64,
        affordable: &[usize],
    ) -> Option<(f64, usize)> {
        let effective = topology.effective_matrix();
        // (priority bound, scan order, candidate index).
        let mut entries: Vec<(f64, usize, usize)> = affordable
            .iter()
            .enumerate()
            .map(|(ord, &idx)| {
                let l = &self.input.candidates[idx];
                let gain_ub =
                    sw.gain_upper_bound(effective.get(l.site_a, l.site_b), l.mw_length_km);
                (self.score(gain_ub, l.tower_count), ord, idx)
            })
            .filter(|&(bound, _, _)| bound > self.config.min_gain)
            .collect();
        // Descending bound; the plain scan's order on equal bounds.
        entries.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        // Incumbent under the plain scan's tie-break: highest exact
        // priority, earliest scan order among equals.
        let mut best: Option<(f64, usize, usize)> = None;
        const CHUNK: usize = 64;
        let mut start = 0;
        while start < entries.len() {
            if let Some((best_priority, _, _)) = best {
                if entries[start].0 < best_priority {
                    break;
                }
            }
            let chunk = &entries[start..(start + CHUNK).min(entries.len())];
            let chunk_pool: Vec<usize> = chunk.iter().map(|&(_, _, idx)| idx).collect();
            let scores = score_pool_against(
                effective,
                topology.geodesic_matrix(),
                topology.traffic(),
                Some(sw),
                &self.input.candidates,
                &chunk_pool,
                self.config.parallel,
            );
            for (&(_, ord, idx), &with_link) in chunk.iter().zip(&scores) {
                let priority = self.score(
                    current_stretch - with_link,
                    self.input.candidates[idx].tower_count,
                );
                if priority <= self.config.min_gain {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bp, bo, _)) => priority > bp || (priority == bp && ord < bo),
                };
                if better {
                    best = Some((priority, ord, idx));
                }
            }
            start += CHUNK;
        }
        best.map(|(priority, _, idx)| (priority, idx))
    }

    /// Pure greedy design at the given tower budget (all useful candidates).
    pub fn greedy(&self, budget_towers: f64) -> DesignOutcome {
        assert!(budget_towers >= 0.0);
        self.greedy_over(&self.input.useful_candidates(), budget_towers)
    }

    /// The full cISP heuristic: greedy pruning at an inflated budget, then
    /// re-selection within the real budget, then swap-based polishing.
    pub fn cisp(&self, budget_towers: f64) -> DesignOutcome {
        assert!(budget_towers >= 0.0);
        // Phase 1: candidate pruning at inflated budget.
        let pruning = self.greedy_over(
            &self.input.useful_candidates(),
            budget_towers * self.config.pruning_budget_factor,
        );
        let pool = pruning.selected.clone();
        // Phase 2: selection within the real budget, restricted to the pool.
        let mut outcome = self.greedy_over(&pool, budget_towers);
        // Phase 3: swap local search within the pool.
        self.swap_polish(&mut outcome, &pool, budget_towers);
        outcome
    }

    /// Swap local search: per pass, evaluate every budget-feasible
    /// "replace one selected link with one unselected pool link" move and
    /// apply the best improving one.
    ///
    /// For each `out` link, the effective matrix of the remaining selection
    /// is rebuilt once into a reusable copy-on-write scratch buffer, and
    /// every `in` candidate is then scored against that scratch with the
    /// allocation-free one-link kernel. Trial scoring runs on the same
    /// persistent worker shards as the greedy (spawned once, owning stable
    /// pool slices across all passes) instead of re-fanning a rayon batch
    /// per `out` link.
    fn swap_polish(&self, outcome: &mut DesignOutcome, pool: &[usize], budget_towers: f64) {
        let budget = budget_towers.floor() as usize;
        if pool.is_empty() || outcome.selected.is_empty() || self.config.max_swap_passes == 0 {
            return;
        }
        let geodesic = outcome.topology.geodesic_matrix().clone();
        let scratch = RwLock::new(outcome.topology.fiber_matrix().clone());
        // Every swap trial's scratch matrix is the fiber matrix improved by
        // some link subset, so distances are finite wherever fiber is —
        // weights computed against fiber stay valid for every trial, and the
        // shards' exact kernel runs compact whenever they exist.
        let sw = ScoringWeights::compute(
            outcome.topology.fiber_matrix(),
            &geodesic,
            &self.input.traffic,
        );
        let ctx = ScoreContext {
            candidates: &self.input.candidates,
            pool,
            geodesic: &geodesic,
            traffic: &self.input.traffic,
            matrix: &scratch,
            sw: sw.as_ref(),
        };
        let workers = self.shard_count(pool.len());
        if workers <= 1 {
            let mut scorer = PoolScorer::inline(pool.len());
            self.run_swap_passes(outcome, &ctx, &mut scorer, budget);
        } else {
            thread::scope(|scope| {
                let mut scorer = PoolScorer::Sharded(ShardPool::spawn(scope, &ctx, workers));
                self.run_swap_passes(outcome, &ctx, &mut scorer, budget);
            });
        }
    }

    /// The swap passes themselves, generic over the scorer backend.
    fn run_swap_passes(
        &self,
        outcome: &mut DesignOutcome,
        ctx: &ScoreContext,
        scorer: &mut PoolScorer,
        budget: usize,
    ) {
        for _ in 0..self.config.max_swap_passes {
            // Best swap found this pass: (out_idx, in_idx, resulting stretch).
            let mut best: Option<(usize, usize, f64)> = None;
            let mut best_stretch = outcome.mean_stretch;

            for &out_idx in &outcome.selected {
                let out_cost = self.input.candidates[out_idx].tower_count;
                let base_towers = outcome.total_towers - out_cost;

                // Budget-feasible replacement trials, as ascending pool
                // positions (the shard owners' index space).
                let trials: Vec<usize> = (0..ctx.pool.len())
                    .filter(|&p| {
                        let in_idx = ctx.pool[p];
                        in_idx != out_idx
                            && !outcome.selected.contains(&in_idx)
                            && base_towers + self.input.candidates[in_idx].tower_count <= budget
                    })
                    .collect();
                if trials.is_empty() {
                    continue;
                }

                // Effective matrix of the selection without `out_idx`.
                {
                    let mut matrix = ctx.matrix.write().unwrap();
                    matrix.copy_from(&self.input.fiber_km);
                    for &idx in &outcome.selected {
                        if idx != out_idx {
                            let l = &self.input.candidates[idx];
                            improve_with_link(&mut matrix, l.site_a, l.site_b, l.mw_length_km);
                        }
                    }
                }

                let stretches = scorer.score_trials(ctx, &trials);
                for (&p, &stretch) in trials.iter().zip(&stretches) {
                    if stretch + 1e-12 < best_stretch {
                        best_stretch = stretch;
                        best = Some((out_idx, ctx.pool[p], stretch));
                    }
                }
            }

            match best {
                Some((out_idx, in_idx, _stretch)) => {
                    let out_cost = self.input.candidates[out_idx].tower_count;
                    let in_cost = self.input.candidates[in_idx].tower_count;
                    outcome.selected.retain(|&i| i != out_idx);
                    outcome.selected.push(in_idx);
                    outcome.total_towers = outcome.total_towers - out_cost + in_cost;
                    let mut topology = self.input.empty_topology();
                    for &idx in &outcome.selected {
                        topology.add_mw_link(self.input.candidates[idx].clone());
                    }
                    // Re-derive the stretch from the rebuilt topology so the
                    // reported value is bit-identical to what
                    // `topology.mean_stretch()` returns.
                    outcome.mean_stretch = topology.mean_stretch();
                    outcome.topology = topology;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_geo::geodesic;

    /// Build a synthetic design input: `n` sites on a line, fiber at 2×
    /// geodesic equivalent, uniform traffic, and a direct MW candidate for
    /// every pair at 1.05× geodesic costing 1 tower per 40 km.
    fn synthetic_input(n: usize) -> DesignInput {
        let sites: Vec<GeoPoint> = (0..n)
            .map(|i| GeoPoint::new(38.0 + (i % 3) as f64, -100.0 + i as f64 * 2.0))
            .collect();
        let traffic = DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
        let fiber_km =
            DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]) * 2.0);
        let mut candidates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let geo = geodesic::distance_km(sites[i], sites[j]);
                let towers = (geo / 40.0).ceil() as usize;
                candidates.push(CandidateLink {
                    site_a: i,
                    site_b: j,
                    mw_length_km: geo * 1.05,
                    tower_count: towers.max(1),
                    tower_path: (0..towers.max(1)).collect(),
                });
            }
        }
        DesignInput {
            sites,
            traffic,
            fiber_km,
            candidates,
        }
    }

    #[test]
    fn zero_budget_builds_nothing() {
        let input = synthetic_input(6);
        let outcome = Designer::new(&input).greedy(0.0);
        assert!(outcome.selected.is_empty());
        assert_eq!(outcome.total_towers, 0);
        // Fiber-only stretch is 2× by construction.
        assert!((outcome.mean_stretch - 2.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_respects_budget_and_reduces_stretch() {
        let input = synthetic_input(8);
        let budget = 30.0;
        let outcome = Designer::new(&input).greedy(budget);
        assert!(outcome.total_towers as f64 <= budget);
        assert!(outcome.mean_stretch < 2.0);
        assert!(!outcome.selected.is_empty());
        // History is monotone: cost non-decreasing, stretch non-increasing.
        for w in outcome.history.windows(2) {
            assert!(w[0].cumulative_towers <= w[1].cumulative_towers);
            assert!(w[0].mean_stretch >= w[1].mean_stretch - 1e-12);
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let input = synthetic_input(8);
        let designer = Designer::new(&input);
        let small = designer.greedy(15.0);
        let large = designer.greedy(60.0);
        assert!(large.mean_stretch <= small.mean_stretch + 1e-9);
    }

    #[test]
    fn unlimited_budget_approaches_mw_stretch() {
        let input = synthetic_input(8);
        let outcome = Designer::new(&input).greedy(10_000.0);
        // With every useful link built, every pair rides a 1.05× MW path (or
        // better, via concatenation).
        assert!(
            outcome.mean_stretch <= 1.06,
            "stretch {}",
            outcome.mean_stretch
        );
    }

    #[test]
    fn oracle_removes_useless_candidates() {
        let mut input = synthetic_input(5);
        // Make one candidate worse than fiber; it must never be selected.
        input.candidates[0].mw_length_km = input
            .fiber_km
            .get(input.candidates[0].site_a, input.candidates[0].site_b)
            * 1.1;
        let useful = input.useful_candidates();
        assert!(!useful.contains(&0));
        let outcome = Designer::new(&input).greedy(1_000.0);
        assert!(!outcome.selected.contains(&0));
    }

    #[test]
    fn cisp_heuristic_is_at_least_as_good_as_plain_greedy() {
        let input = synthetic_input(9);
        let designer = Designer::new(&input);
        let budget = 40.0;
        let greedy = designer.greedy(budget);
        let cisp = designer.cisp(budget);
        assert!(cisp.total_towers as f64 <= budget);
        assert!(cisp.mean_stretch <= greedy.mean_stretch + 1e-9);
    }

    #[test]
    fn gain_per_tower_scoring_changes_selection_order() {
        let input = synthetic_input(8);
        let abs = Designer::with_config(
            &input,
            DesignConfig {
                score: GreedyScore::AbsoluteGain,
                ..DesignConfig::default()
            },
        )
        .greedy(25.0);
        let per = Designer::with_config(
            &input,
            DesignConfig {
                score: GreedyScore::GainPerTower,
                ..DesignConfig::default()
            },
        )
        .greedy(25.0);
        // Both are valid designs within budget.
        assert!(abs.total_towers <= 25 && per.total_towers <= 25);
        // The cost-aware variant never selects a *more* expensive first link.
        if let (Some(a), Some(p)) = (abs.history.first(), per.history.first()) {
            let ca = input.candidates[a.candidate_index].tower_count;
            let cp = input.candidates[p.candidate_index].tower_count;
            assert!(cp <= ca);
        }
    }

    #[test]
    fn design_is_deterministic() {
        let input = synthetic_input(8);
        let a = Designer::new(&input).cisp(30.0);
        let b = Designer::new(&input).cisp(30.0);
        assert_eq!(a.selected, b.selected);
        assert!((a.mean_stretch - b.mean_stretch).abs() < 1e-15);
    }

    #[test]
    fn parallel_and_serial_scoring_select_identical_designs() {
        let input = synthetic_input(9);
        let parallel = Designer::with_config(
            &input,
            DesignConfig {
                parallel: true,
                ..DesignConfig::default()
            },
        )
        .cisp(35.0);
        let serial = Designer::with_config(
            &input,
            DesignConfig {
                parallel: false,
                ..DesignConfig::default()
            },
        )
        .cisp(35.0);
        assert_eq!(parallel.selected, serial.selected);
        assert_eq!(parallel.total_towers, serial.total_towers);
        assert!((parallel.mean_stretch - serial.mean_stretch).abs() < 1e-15);
    }

    #[test]
    fn selected_links_are_within_candidate_range_and_unique() {
        let input = synthetic_input(7);
        let outcome = Designer::new(&input).cisp(35.0);
        let mut seen = std::collections::HashSet::new();
        for &idx in &outcome.selected {
            assert!(idx < input.candidates.len());
            assert!(seen.insert(idx), "duplicate selection of candidate {idx}");
        }
        // Reported totals are consistent.
        let cost: usize = outcome
            .selected
            .iter()
            .map(|&i| input.candidates[i].tower_count)
            .sum();
        assert_eq!(cost, outcome.total_towers);
        assert!((outcome.topology.mean_stretch() - outcome.mean_stretch).abs() < 1e-12);
    }

    #[test]
    fn incremental_and_full_rescore_engines_select_identically() {
        let input = synthetic_input(9);
        for parallel in [false, true] {
            let incremental = Designer::with_config(
                &input,
                DesignConfig {
                    engine: ScoringEngine::Incremental,
                    parallel,
                    ..DesignConfig::default()
                },
            )
            .cisp(35.0);
            let full = Designer::with_config(
                &input,
                DesignConfig {
                    engine: ScoringEngine::FullRescore,
                    parallel,
                    ..DesignConfig::default()
                },
            )
            .cisp(35.0);
            assert_eq!(incremental.selected, full.selected, "parallel={parallel}");
            assert_eq!(incremental.total_towers, full.total_towers);
            assert!((incremental.mean_stretch - full.mean_stretch).abs() == 0.0);
            let h_inc: Vec<usize> = incremental
                .history
                .iter()
                .map(|s| s.candidate_index)
                .collect();
            let h_full: Vec<usize> = full.history.iter().map(|s| s.candidate_index).collect();
            assert_eq!(h_inc, h_full);
        }
    }

    #[test]
    fn auto_engine_matches_both_pinned_engines() {
        let input = synthetic_input(9);
        // Small pool: Auto must take the full-rescore path...
        assert!(input.useful_candidates().len() <= AUTO_FULL_RESCORE_MAX_POOL);
        let auto = Designer::new(&input).cisp(35.0);
        for engine in [ScoringEngine::Incremental, ScoringEngine::FullRescore] {
            let pinned = Designer::with_config(
                &input,
                DesignConfig {
                    engine,
                    ..DesignConfig::default()
                },
            )
            .cisp(35.0);
            // ...but since both engines select identically, Auto matching
            // both is the real invariant.
            assert_eq!(auto.selected, pinned.selected, "{engine:?}");
            assert!((auto.mean_stretch - pinned.mean_stretch).abs() == 0.0);
        }
    }

    #[test]
    fn incremental_engine_falls_back_on_non_finite_fiber() {
        // Disconnect one pair in the fiber matrix: the incremental
        // decomposition no longer applies, and the designer must silently
        // use the full-rescore reference instead of misbehaving.
        let mut input = synthetic_input(6);
        input.fiber_km.set_sym(0, 5, f64::INFINITY);
        let incremental = Designer::with_config(
            &input,
            DesignConfig {
                engine: ScoringEngine::Incremental,
                ..DesignConfig::default()
            },
        )
        .greedy(30.0);
        let full = Designer::with_config(
            &input,
            DesignConfig {
                engine: ScoringEngine::FullRescore,
                ..DesignConfig::default()
            },
        )
        .greedy(30.0);
        assert_eq!(incremental.selected, full.selected);
        assert!((incremental.mean_stretch - full.mean_stretch).abs() == 0.0);
    }

    #[test]
    fn score_candidates_serial_and_parallel_agree() {
        let input = synthetic_input(8);
        let topology = input.empty_topology();
        let pool = input.useful_candidates();
        let serial = score_candidates(&topology, &input.candidates, &pool, false);
        let parallel = score_candidates(&topology, &input.candidates, &pool, true);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert!((s - p).abs() == 0.0, "serial {s} vs parallel {p}");
        }
    }
}

//! The cost model (§2 "Cost model", §4 Step 3).
//!
//! Capital costs: installing a bidirectional microwave link on *existing*
//! towers costs about \$75 K at 500 Mbps or \$150 K at 1 Gbps per
//! tower-to-tower hop; building a new tower costs about \$100 K. Operational
//! cost is dominated by tower rent at \$25–50 K per tower per year. Cost per
//! GB amortises build plus operation over five years at the provisioned
//! aggregate throughput.

use serde::{Deserialize, Serialize};

/// Seconds in a (non-leap) year.
const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// The cost model parameters, with the paper's defaults.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of one bidirectional 1 Gbps MW hop installed on existing towers.
    pub hop_cost_1gbps_usd: f64,
    /// Cost of one bidirectional 500 Mbps MW hop installed on existing towers.
    pub hop_cost_500mbps_usd: f64,
    /// Cost of erecting a new tower.
    pub new_tower_cost_usd: f64,
    /// Annual rent per tower used by the network.
    pub tower_rent_per_year_usd: f64,
    /// Amortisation horizon in years for the cost-per-GB figure.
    pub amortization_years: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            hop_cost_1gbps_usd: 150_000.0,
            hop_cost_500mbps_usd: 75_000.0,
            new_tower_cost_usd: 100_000.0,
            // Mid-point of the paper's $25–50 K/year range.
            tower_rent_per_year_usd: 37_500.0,
            amortization_years: 5.0,
        }
    }
}

/// A breakdown of the total cost of a provisioned network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Radio/installation capital expenditure (all hop installations).
    pub radio_capex_usd: f64,
    /// New-tower capital expenditure.
    pub tower_capex_usd: f64,
    /// Rent over the amortisation horizon.
    pub rent_opex_usd: f64,
}

impl CostBreakdown {
    /// Total cost over the amortisation horizon.
    pub fn total_usd(&self) -> f64 {
        self.radio_capex_usd + self.tower_capex_usd + self.rent_opex_usd
    }
}

/// Inventory of the physical build of a provisioned network, produced by the
/// capacity-augmentation step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BuildInventory {
    /// Number of tower-to-tower hop installations, counting each parallel
    /// series separately (one radio pair each).
    pub hop_installations: usize,
    /// Number of distinct existing towers rented.
    pub existing_towers_used: usize,
    /// Number of new towers that must be erected (also rented thereafter).
    pub new_towers_built: usize,
}

impl CostModel {
    /// Cost breakdown for a build inventory.
    pub fn breakdown(&self, inventory: &BuildInventory) -> CostBreakdown {
        let radio_capex_usd = inventory.hop_installations as f64 * self.hop_cost_1gbps_usd;
        let tower_capex_usd = inventory.new_towers_built as f64 * self.new_tower_cost_usd;
        let towers_rented = (inventory.existing_towers_used + inventory.new_towers_built) as f64;
        let rent_opex_usd = towers_rented * self.tower_rent_per_year_usd * self.amortization_years;
        CostBreakdown {
            radio_capex_usd,
            tower_capex_usd,
            rent_opex_usd,
        }
    }

    /// Total gigabytes carried over the amortisation horizon at a sustained
    /// aggregate throughput of `aggregate_gbps` gigabits per second.
    pub fn gigabytes_over_horizon(&self, aggregate_gbps: f64) -> f64 {
        assert!(aggregate_gbps >= 0.0);
        // Gbps → GB/s is /8; integrate over the horizon.
        aggregate_gbps / 8.0 * SECONDS_PER_YEAR * self.amortization_years
    }

    /// Cost per gigabyte of a provisioned network carrying `aggregate_gbps`.
    pub fn cost_per_gb(&self, inventory: &BuildInventory, aggregate_gbps: f64) -> f64 {
        assert!(aggregate_gbps > 0.0, "throughput must be positive");
        self.breakdown(inventory).total_usd() / self.gigabytes_over_horizon(aggregate_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let m = CostModel::default();
        assert_eq!(m.hop_cost_1gbps_usd, 150_000.0);
        assert_eq!(m.hop_cost_500mbps_usd, 75_000.0);
        assert_eq!(m.new_tower_cost_usd, 100_000.0);
        assert!(m.tower_rent_per_year_usd >= 25_000.0 && m.tower_rent_per_year_usd <= 50_000.0);
        assert_eq!(m.amortization_years, 5.0);
    }

    #[test]
    fn breakdown_adds_up() {
        let m = CostModel::default();
        let inv = BuildInventory {
            hop_installations: 10,
            existing_towers_used: 8,
            new_towers_built: 2,
        };
        let b = m.breakdown(&inv);
        assert_eq!(b.radio_capex_usd, 1_500_000.0);
        assert_eq!(b.tower_capex_usd, 200_000.0);
        assert_eq!(b.rent_opex_usd, 10.0 * 37_500.0 * 5.0);
        assert_eq!(
            b.total_usd(),
            b.radio_capex_usd + b.tower_capex_usd + b.rent_opex_usd
        );
    }

    #[test]
    fn gigabytes_over_horizon_scales_linearly() {
        let m = CostModel::default();
        let one = m.gigabytes_over_horizon(1.0);
        let hundred = m.gigabytes_over_horizon(100.0);
        assert!((hundred / one - 100.0).abs() < 1e-9);
        // 1 Gbps for 5 years ≈ 19.7 million GB.
        assert!((one - 19_710_000.0).abs() / one < 0.01, "one = {one}");
    }

    #[test]
    fn paper_scale_network_lands_near_published_cost_per_gb() {
        // Fig. 3 at 100 Gbps: 1660 single-series hops, 552 hops with one extra
        // series, 86 with two extra series; the paper reports $0.81/GB.
        // Approximate inventory: each extra series adds a parallel hop
        // installation and one new tower at each end.
        let m = CostModel::default();
        let hop_installations = 1660 + 552 * 2 + 86 * 3;
        let new_towers_built = 552 * 2 + 86 * 4;
        let inv = BuildInventory {
            hop_installations,
            existing_towers_used: 3_000,
            new_towers_built,
        };
        let cost = m.cost_per_gb(&inv, 100.0);
        assert!(
            cost > 0.4 && cost < 1.3,
            "cost per GB = {cost}, expected in the ballpark of the paper's $0.81"
        );
    }

    #[test]
    fn cost_per_gb_decreases_with_throughput_for_fixed_network() {
        let m = CostModel::default();
        let inv = BuildInventory {
            hop_installations: 100,
            existing_towers_used: 100,
            new_towers_built: 0,
        };
        assert!(m.cost_per_gb(&inv, 10.0) > m.cost_per_gb(&inv, 100.0));
    }

    #[test]
    #[should_panic]
    fn zero_throughput_cost_per_gb_panics() {
        let m = CostModel::default();
        m.cost_per_gb(&BuildInventory::default(), 0.0);
    }
}

//! Lowering a designed topology into the packet simulator — the bridge the
//! paper's evaluation chain (§5–§7) runs over.
//!
//! The design layers produce a [`HybridTopology`]; the evaluation layers
//! (queueing simulation, weather-under-load, application models) consume a
//! `cisp_netsim` [`Network`] plus a [`Demand`] set. This module performs the
//! §5 conversion in one place:
//!
//! * every built microwave link becomes one bidirectional site-level link
//!   whose capacity comes from the k²-augmentation provisioning
//!   ([`augment_for_throughput`]) at the configured design target,
//! * fiber connectivity becomes effectively-unconstrained links with the
//!   1.5×-slowed propagation already baked into the latency-equivalent
//!   distances,
//! * the offered traffic matrix is scaled to a load fraction of the design
//!   target and split into one directed [`Demand`] per direction per pair.
//!
//! The returned [`LoweredNetwork`] remembers which simulator links realise
//! which microwave links ([`LoweredNetwork::mw_link_ids`]) — that is the
//! hook the weather layer uses to map *failed* links onto the same network
//! and re-route around them — and which demand realises which site pair,
//! which is what lets [`pair_rtts`] turn a finished [`SimReport`] into
//! queueing-aware per-pair RTTs for the gaming and web models.

use cisp_geo::latency;
use cisp_geo::units::SPEED_OF_LIGHT_KM_PER_S;
use cisp_graph::DistMatrix;
use cisp_netsim::network::{LinkId, LinkSpec, Network};
use cisp_netsim::routing::{compute_routes_avoiding, Demand};
use cisp_netsim::sim::{SimConfig, Simulation};
use cisp_netsim::SimReport;
use cisp_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

use crate::augment::{augment_for_throughput, AugmentConfig};
use crate::topology::HybridTopology;

/// Configuration of the design → simulation lowering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvaluateConfig {
    /// Aggregate throughput the microwave links are provisioned for, Gbps.
    pub design_aggregate_gbps: f64,
    /// Offered load as a fraction of the design target (paper: sweeps
    /// 0.1–1.0).
    pub load_fraction: f64,
    /// Drop-tail buffer per microwave link, bytes (≈100 packets of 500 B).
    pub mw_buffer_bytes: f64,
    /// Capacity assumed for fiber links (bps) — effectively unconstrained
    /// relative to the MW links, as in the paper.
    pub fiber_rate_bps: f64,
    /// Drop-tail buffer per fiber link, bytes.
    pub fiber_buffer_bytes: f64,
    /// Capacity-augmentation parameters used for provisioning.
    pub augment: AugmentConfig,
    /// Packet-engine configuration (duration, arrivals, routing scheme,
    /// seed, workers, execution mode). When the routed demands collapse
    /// into a few heavy shared-link components (the usual shape once most
    /// traffic rides the MW spine), component sharding degenerates to
    /// serial — `sim.mode = ExecMode::TimeWindowed { window_s: 0.0 }`
    /// (auto lookahead) is the knob that parallelises that case; the
    /// report is bit-identical in every mode.
    pub sim: SimConfig,
}

impl Default for EvaluateConfig {
    fn default() -> Self {
        Self {
            design_aggregate_gbps: 10.0,
            load_fraction: 0.5,
            mw_buffer_bytes: 50_000.0,
            fiber_rate_bps: 400e9,
            fiber_buffer_bytes: 500_000.0,
            augment: AugmentConfig::default(),
            sim: SimConfig::default(),
        }
    }
}

/// A designed topology lowered into simulator form, with the bookkeeping
/// needed to map results (and failures) back onto the design.
#[derive(Debug, Clone)]
pub struct LoweredNetwork {
    /// The site-level packet network.
    pub network: Network,
    /// One directed demand per direction per traffic pair.
    pub demands: Vec<Demand>,
    /// `(src, dst)` site pair of each demand (demand order).
    pub demand_pairs: Vec<(usize, usize)>,
    /// Simulator link ids `(forward, reverse)` of each built microwave
    /// link, aligned with `topology.mw_links()` — the weather layer's
    /// failure hook.
    pub mw_link_ids: Vec<(LinkId, LinkId)>,
    /// The configuration the lowering used.
    pub config: EvaluateConfig,
}

impl LoweredNetwork {
    /// Disabled-link mask over the simulator's links for a set of failed
    /// microwave links (indices into `topology.mw_links()`). Stale indices
    /// are tolerated, matching the weather layer's conventions.
    pub fn disabled_mask(&self, failed_mw_links: &[usize]) -> Vec<bool> {
        let mut mask = vec![false; self.network.num_links()];
        for &idx in failed_mw_links {
            if let Some(&(fwd, rev)) = self.mw_link_ids.get(idx) {
                mask[fwd] = true;
                mask[rev] = true;
            }
        }
        mask
    }

    /// A ready-to-run simulation over the lowered network (fair weather:
    /// every link up).
    pub fn simulation(&self) -> Simulation {
        Simulation::new(self.network.clone(), self.demands.clone(), self.config.sim)
    }

    /// A simulation whose routes avoid the given failed microwave links
    /// (indices into `topology.mw_links()`). Demands with no surviving path
    /// emit nothing.
    pub fn simulation_without(&self, failed_mw_links: &[usize]) -> Simulation {
        let disabled = self.disabled_mask(failed_mw_links);
        let routes = compute_routes_avoiding(
            &self.network,
            &self.demands,
            self.config.sim.routing,
            &disabled,
        );
        Simulation::with_routes(
            self.network.clone(),
            self.demands.clone(),
            routes,
            self.config.sim,
        )
    }
}

/// Lower a designed topology and an offered traffic matrix (pair weights,
/// any scale) into a packet network and demand set.
pub fn lower(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    let n = topology.num_sites();
    assert_eq!(
        offered_traffic.n(),
        n,
        "traffic matrix must cover the sites"
    );
    assert!(config.load_fraction >= 0.0);

    // Provision MW links for the design target using the topology's own
    // (design-time) traffic matrix — the offered matrix may differ; that
    // mismatch is exactly what Figs. 5 and 11 study.
    let augmentation =
        augment_for_throughput(topology, config.design_aggregate_gbps, &config.augment);

    let mut network = Network::new(n);
    let mut mw_link_ids = vec![(usize::MAX, usize::MAX); topology.mw_links().len()];
    for provision in &augmentation.links {
        let link = &topology.mw_links()[provision.link_index];
        let capacity_bps = (provision.series * provision.series) as f64 * 1e9;
        let ids = network.add_bidirectional_link(LinkSpec {
            from: link.site_a,
            to: link.site_b,
            rate_bps: capacity_bps,
            propagation_s: link.mw_length_km / SPEED_OF_LIGHT_KM_PER_S,
            buffer_bytes: config.mw_buffer_bytes,
        });
        mw_link_ids[provision.link_index] = ids;
    }
    // Fiber links between every pair (plentiful bandwidth, 1.5×-slowed
    // propagation already baked into the latency-equivalent distance).
    for i in 0..n {
        for j in (i + 1)..n {
            // Zero-length fiber (co-located sites) still gets a link — the
            // pair must stay directly routable.
            let d = topology.fiber_km(i, j);
            if d.is_finite() {
                network.add_bidirectional_link(LinkSpec {
                    from: i,
                    to: j,
                    rate_bps: config.fiber_rate_bps,
                    propagation_s: d / SPEED_OF_LIGHT_KM_PER_S,
                    buffer_bytes: config.fiber_buffer_bytes,
                });
            }
        }
    }

    // Offered demands: the matrix scaled so its pair sum is
    // `load_fraction × design target`, each pair split across directions.
    let total = offered_traffic.upper_triangle_sum();
    assert!(total > 0.0, "offered traffic matrix is empty");
    let scale = config.design_aggregate_gbps * config.load_fraction / total;
    let mut demands = Vec::new();
    let mut demand_pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let gbps = offered_traffic.get(i, j) * scale;
            if gbps > 0.0 {
                for (src, dst) in [(i, j), (j, i)] {
                    demands.push(Demand {
                        src,
                        dst,
                        amount_bps: gbps * 1e9 / 2.0,
                    });
                    demand_pairs.push((src, dst));
                }
            }
        }
    }

    LoweredNetwork {
        network,
        demands,
        demand_pairs,
        mw_link_ids,
        config: *config,
    }
}

/// [`lower`] over a `cisp_traffic` matrix.
pub fn lower_traffic(
    topology: &HybridTopology,
    offered_traffic: &TrafficMatrix,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    lower(topology, offered_traffic.as_matrix(), config)
}

/// Queueing-aware round-trip time of one site pair, extracted from a
/// simulation run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairRtt {
    /// First site of the pair.
    pub site_a: usize,
    /// Second site of the pair.
    pub site_b: usize,
    /// Simulated RTT (forward + reverse mean one-way delay), milliseconds.
    /// Falls back to the propagation RTT when a direction delivered no
    /// packets.
    pub simulated_rtt_ms: f64,
    /// Zero-load propagation RTT over the built network, milliseconds.
    pub propagation_rtt_ms: f64,
    /// Packets delivered across both directions.
    pub delivered: u64,
    /// Offered load of the pair, bits per second (both directions).
    pub offered_bps: f64,
}

/// Per-pair simulated RTTs of a finished run. Pairs follow the lowering's
/// demand order (each unordered pair once).
pub fn pair_rtts(
    lowered: &LoweredNetwork,
    report: &SimReport,
    topology: &HybridTopology,
) -> Vec<PairRtt> {
    assert_eq!(report.flow_mean_delay_ms.len(), lowered.demands.len());
    let mut out = Vec::with_capacity(lowered.demands.len() / 2);
    // The lowering pushes the two directions of a pair consecutively.
    for k in (0..lowered.demands.len()).step_by(2) {
        let (i, j) = lowered.demand_pairs[k];
        // Hard assert: the fields are public, so a caller that reordered or
        // filtered the demands must not silently get mispaired RTTs.
        assert_eq!(
            lowered.demand_pairs[k + 1],
            (j, i),
            "demands are no longer in forward/reverse pair order"
        );
        let propagation_rtt_ms = 2.0 * latency::c_latency_ms(topology.effective_km(i, j));
        let delivered = report.flow_delivered[k] + report.flow_delivered[k + 1];
        let simulated_rtt_ms = if report.flow_delivered[k] > 0 && report.flow_delivered[k + 1] > 0 {
            report.flow_mean_delay_ms[k] + report.flow_mean_delay_ms[k + 1]
        } else {
            propagation_rtt_ms
        };
        out.push(PairRtt {
            site_a: i.min(j),
            site_b: i.max(j),
            simulated_rtt_ms,
            propagation_rtt_ms,
            delivered,
            offered_bps: lowered.demands[k].amount_bps + lowered.demands[k + 1].amount_bps,
        });
    }
    out
}

/// The full design → traffic → simulation chain in one call.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// The packet-level summary.
    pub sim: SimReport,
    /// Queueing-aware per-pair RTTs.
    pub pair_rtts: Vec<PairRtt>,
}

impl EvaluationReport {
    /// Offered-load-weighted mean simulated RTT across pairs, milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for p in &self.pair_rtts {
            num += p.offered_bps * p.simulated_rtt_ms;
            den += p.offered_bps;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// The simulated RTT samples, milliseconds (input for the application
    /// models' distributions).
    pub fn rtt_samples_ms(&self) -> Vec<f64> {
        self.pair_rtts.iter().map(|p| p.simulated_rtt_ms).collect()
    }
}

/// Lower, simulate, and extract per-pair RTTs in one step.
pub fn evaluate(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    config: &EvaluateConfig,
) -> EvaluationReport {
    let lowered = lower(topology, offered_traffic, config);
    let report = lowered.simulation().run();
    let rtts = pair_rtts(&lowered, &report, topology);
    EvaluationReport {
        sim: report,
        pair_rtts: rtts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    /// Four sites across the central US, direct MW links on a chain, fiber
    /// at 1.9× elsewhere.
    fn test_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(39.1, -94.6),
            GeoPoint::new(32.8, -96.8),
            GeoPoint::new(39.7, -105.0),
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    fn fast_config() -> EvaluateConfig {
        EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.5,
            sim: SimConfig {
                duration_s: 0.05,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        }
    }

    #[test]
    fn lowering_maps_links_and_demands() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        // 3 MW links + 6 fiber pairs, bidirectional.
        assert_eq!(lowered.network.num_links(), 2 * (3 + 6));
        // 6 pairs × 2 directions.
        assert_eq!(lowered.demands.len(), 12);
        assert_eq!(lowered.demand_pairs.len(), 12);
        // Every MW link id is populated and points at the right endpoints.
        for (k, &(fwd, rev)) in lowered.mw_link_ids.iter().enumerate() {
            let link = &topo.mw_links()[k];
            assert_eq!(lowered.network.link(fwd).from, link.site_a);
            assert_eq!(lowered.network.link(fwd).to, link.site_b);
            assert_eq!(lowered.network.link(rev).from, link.site_b);
        }
        // Demands sum to load_fraction × design target.
        let total_bps: f64 = lowered.demands.iter().map(|d| d.amount_bps).sum();
        assert!((total_bps - 2e9).abs() < 1.0, "total {total_bps}");
    }

    #[test]
    fn evaluate_produces_physical_rtts() {
        let topo = test_topology();
        let report = evaluate(&topo, topo.traffic(), &fast_config());
        assert!(report.sim.delivered > 0);
        assert_eq!(report.pair_rtts.len(), 6);
        for p in &report.pair_rtts {
            // Simulated RTT includes serialization + queueing: at least the
            // propagation RTT, and not absurdly larger at moderate load.
            assert!(
                p.simulated_rtt_ms >= p.propagation_rtt_ms - 1e-9,
                "pair ({}, {}): {} < {}",
                p.site_a,
                p.site_b,
                p.simulated_rtt_ms,
                p.propagation_rtt_ms
            );
            assert!(p.simulated_rtt_ms < p.propagation_rtt_ms + 20.0);
            assert!(p.delivered > 0);
        }
        assert!(report.mean_rtt_ms() > 0.0);
        assert_eq!(report.rtt_samples_ms().len(), 6);
    }

    #[test]
    fn failing_a_link_reroutes_and_raises_latency() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        let fair = lowered.simulation().run();
        // Fail every MW link: everything rides fiber, so the mean delay
        // must rise strictly.
        let all_failed: Vec<usize> = (0..topo.mw_links().len()).collect();
        let stormy = lowered.simulation_without(&all_failed).run();
        assert!(stormy.delivered > 0);
        assert!(
            stormy.mean_delay_ms > fair.mean_delay_ms,
            "fiber fallback must be slower: {} vs {}",
            stormy.mean_delay_ms,
            fair.mean_delay_ms
        );
        // No traffic crosses a disabled link.
        let mask = lowered.disabled_mask(&all_failed);
        for (l, &disabled) in mask.iter().enumerate() {
            if disabled {
                assert_eq!(stormy.link_utilizations[l], 0.0, "link {l} carried load");
            }
        }
    }

    #[test]
    fn windowed_evaluation_is_bit_identical_to_serial() {
        use cisp_netsim::sim::ExecMode;
        let topo = test_topology();
        let mut serial_cfg = fast_config();
        serial_cfg.sim.workers = 1;
        let serial = evaluate(&topo, topo.traffic(), &serial_cfg);
        // The lowered network's fiber mesh joins every site: one component.
        assert_eq!(
            lower(&topo, topo.traffic(), &serial_cfg)
                .simulation()
                .num_components(),
            1
        );
        for (workers, window_s) in [(2, 0.0), (4, 0.0), (4, 1e-3)] {
            let mut cfg = fast_config();
            cfg.sim.workers = workers;
            cfg.sim.mode = ExecMode::TimeWindowed { window_s };
            let windowed = evaluate(&topo, topo.traffic(), &cfg);
            assert_eq!(
                serial.sim, windowed.sim,
                "workers {workers}, window {window_s}"
            );
        }
    }

    #[test]
    fn traffic_matrix_wrapper_matches_raw_matrix() {
        let topo = test_topology();
        let tm = TrafficMatrix::from_dist_matrix(topo.traffic().clone());
        let a = lower(&topo, topo.traffic(), &fast_config());
        let b = lower_traffic(&topo, &tm, &fast_config());
        assert_eq!(a.demands.len(), b.demands.len());
        assert_eq!(a.network.num_links(), b.network.num_links());
    }

    #[test]
    fn stale_failure_indices_are_tolerated() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        let mask = lowered.disabled_mask(&[99, 7]);
        assert!(mask.iter().all(|&d| !d));
    }
}

//! Lowering a designed topology into the packet simulator — the bridge the
//! paper's evaluation chain (§5–§7) runs over.
//!
//! The design layers produce a [`HybridTopology`]; the evaluation layers
//! (queueing simulation, weather-under-load, application models) consume a
//! `cisp_netsim` [`Network`] plus a [`Demand`] set. This module performs the
//! §5 conversion in one place:
//!
//! * co-located sites (geodesic distance zero) are deduplicated onto one
//!   representative node, so no zero-propagation links are ever emitted,
//! * every built microwave link becomes one bidirectional site-level link
//!   whose capacity comes from the k²-augmentation provisioning
//!   ([`augment_for_throughput`]) at the configured design target,
//! * fiber connectivity lowers in one of two shapes. A conduit-backed
//!   topology ([`HybridTopology::with_conduits`]) gets **one bidirectional
//!   link per physical conduit segment** — O(segments) links instead of the
//!   O(n²) per-pair mesh — so demands whose fiber fallbacks share a conduit
//!   queue against each other and conduit cuts are expressible
//!   ([`LoweredNetwork::conduit_link_ids`]). A matrix-backed topology falls
//!   back to the per-pair mesh of effectively-unconstrained links, with the
//!   1.5×-slowed propagation baked into the latency-equivalent distances
//!   either way,
//! * the offered traffic matrix is scaled to a load fraction of the design
//!   target and split into one directed [`Demand`] per direction per pair.
//!
//! The returned [`LoweredNetwork`] remembers which simulator links realise
//! which microwave links ([`LoweredNetwork::mw_link_ids`]) — that is the
//! hook the weather layer uses to map *failed* links onto the same network
//! and re-route around them — and which demand realises which site pair,
//! which is what lets [`pair_rtts`] turn a finished [`SimReport`] into
//! queueing-aware per-pair RTTs for the gaming and web models.

use cisp_geo::latency;
use cisp_geo::units::{FIBER_LATENCY_FACTOR, SPEED_OF_LIGHT_KM_PER_S};
use cisp_graph::{DistMatrix, PathStore};
use cisp_netsim::network::{LinkId, LinkSpec, Network};
use cisp_netsim::routing::{
    compute_routes_avoiding, install_pinned_routes, Demand, RoutingTable, TrafficClass,
};
use cisp_netsim::sim::{SimConfig, Simulation};
use cisp_netsim::SimReport;
use cisp_traffic::{ClassifiedTraffic, TrafficMatrix};
use serde::{Deserialize, Serialize};

use crate::augment::{augment_for_throughput, AugmentConfig};
use crate::topology::HybridTopology;

/// Configuration of the design → simulation lowering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvaluateConfig {
    /// Aggregate throughput the microwave links are provisioned for, Gbps.
    pub design_aggregate_gbps: f64,
    /// Offered load as a fraction of the design target (paper: sweeps
    /// 0.1–1.0).
    pub load_fraction: f64,
    /// Drop-tail buffer per microwave link, bytes (≈100 packets of 500 B).
    pub mw_buffer_bytes: f64,
    /// Capacity assumed for fiber links (bps) — effectively unconstrained
    /// relative to the MW links, as in the paper.
    pub fiber_rate_bps: f64,
    /// Drop-tail buffer per fiber link, bytes.
    pub fiber_buffer_bytes: f64,
    /// Capacity-augmentation parameters used for provisioning.
    pub augment: AugmentConfig,
    /// Packet-engine configuration (duration, arrivals, routing scheme,
    /// seed, workers, execution mode). When the routed demands collapse
    /// into a few heavy shared-link components (the usual shape once most
    /// traffic rides the MW spine), component sharding degenerates to
    /// serial — `sim.mode = ExecMode::TimeWindowed { window_s: 0.0 }`
    /// (auto lookahead) is the knob that parallelises that case; the
    /// report is bit-identical in every mode.
    pub sim: SimConfig,
}

impl Default for EvaluateConfig {
    fn default() -> Self {
        Self {
            design_aggregate_gbps: 10.0,
            load_fraction: 0.5,
            mw_buffer_bytes: 50_000.0,
            fiber_rate_bps: 400e9,
            fiber_buffer_bytes: 500_000.0,
            augment: AugmentConfig::default(),
            sim: SimConfig::default(),
        }
    }
}

/// A designed topology lowered into simulator form, with the bookkeeping
/// needed to map results (and failures) back onto the design.
#[derive(Debug, Clone)]
pub struct LoweredNetwork {
    /// The site-level packet network.
    pub network: Network,
    /// One directed demand per direction per traffic pair.
    pub demands: Vec<Demand>,
    /// `(src, dst)` site pair of each demand (demand order).
    pub demand_pairs: Vec<(usize, usize)>,
    /// Simulator link ids `(forward, reverse)` of each built microwave
    /// link, aligned with `topology.mw_links()` — the weather layer's
    /// failure hook. `(usize::MAX, usize::MAX)` for links that collapsed
    /// in the co-located-site dedup.
    pub mw_link_ids: Vec<(LinkId, LinkId)>,
    /// Simulator link ids `(a→b, b→a)` of each physical conduit segment,
    /// aligned with the topology's [`ConduitLayer::segments`] — the
    /// conduit-cut scenarios' failure hook. Empty for mesh lowerings;
    /// `(usize::MAX, usize::MAX)` for segments whose endpoints collapsed
    /// in the co-located-site dedup.
    ///
    /// [`ConduitLayer::segments`]: crate::topology::ConduitLayer::segments
    pub conduit_link_ids: Vec<(LinkId, LinkId)>,
    /// The configuration the lowering used.
    pub config: EvaluateConfig,
}

impl LoweredNetwork {
    /// Mask the bidirectional link pairs named by `indices` into `table`
    /// (stale indices and `usize::MAX` dedup-collapsed entries tolerated).
    fn mask_link_pairs(&self, table: &[(LinkId, LinkId)], indices: &[usize]) -> Vec<bool> {
        let mut mask = vec![false; self.network.num_links()];
        for &idx in indices {
            if let Some(&(fwd, rev)) = table.get(idx) {
                if fwd != usize::MAX {
                    mask[fwd] = true;
                    mask[rev] = true;
                }
            }
        }
        mask
    }

    /// Disabled-link mask over the simulator's links for a set of failed
    /// microwave links (indices into `topology.mw_links()`). Stale indices
    /// are tolerated, matching the weather layer's conventions.
    pub fn disabled_mask(&self, failed_mw_links: &[usize]) -> Vec<bool> {
        self.mask_link_pairs(&self.mw_link_ids, failed_mw_links)
    }

    /// Disabled-link mask for a set of *cut conduit segments* (indices into
    /// the topology's conduit layer). Stale indices and dedup-collapsed
    /// segments are tolerated.
    pub fn conduit_disabled_mask(&self, cut_segments: &[usize]) -> Vec<bool> {
        self.mask_link_pairs(&self.conduit_link_ids, cut_segments)
    }

    /// A ready-to-run simulation over the lowered network (fair weather:
    /// every link up).
    pub fn simulation(&self) -> Simulation {
        Simulation::new(self.network.clone(), self.demands.clone(), self.config.sim)
    }

    /// A simulation whose routes avoid the masked links.
    fn simulation_avoiding(&self, disabled: &[bool]) -> Simulation {
        let routes = compute_routes_avoiding(
            &self.network,
            &self.demands,
            self.config.sim.routing,
            disabled,
        );
        Simulation::with_routes(
            self.network.clone(),
            self.demands.clone(),
            routes,
            self.config.sim,
        )
    }

    /// A simulation whose routes avoid the given failed microwave links
    /// (indices into `topology.mw_links()`). Demands with no surviving path
    /// emit nothing.
    pub fn simulation_without(&self, failed_mw_links: &[usize]) -> Simulation {
        self.simulation_avoiding(&self.disabled_mask(failed_mw_links))
    }

    /// A simulation whose routes avoid the given *cut conduit segments*
    /// (indices into the topology's conduit layer): surviving traffic
    /// re-routes over the remaining conduits and the microwave spine;
    /// demands with no surviving path emit nothing. Only meaningful on a
    /// conduit-backed lowering.
    pub fn simulation_without_conduits(&self, cut_segments: &[usize]) -> Simulation {
        self.simulation_avoiding(&self.conduit_disabled_mask(cut_segments))
    }

    /// Pin every demand to its pure-fiber conduit route (ignoring the
    /// microwave spine): the topology's stored per-pair conduit paths,
    /// translated hop by hop into directed simulator link ids and
    /// installed via [`install_pinned_routes`] (which re-validates the
    /// walk). Panics unless both the topology and this lowering are
    /// conduit-backed.
    pub fn pinned_fiber_routes(&self, topology: &HybridTopology) -> RoutingTable {
        let layer = topology
            .conduits()
            .expect("pinned fiber routes need a conduit-backed topology");
        assert_eq!(
            self.conduit_link_ids.len(),
            layer.num_segments(),
            "lowering does not match the topology's conduit layer"
        );
        let mut store = PathStore::with_capacity(self.demands.len(), self.demands.len() * 4);
        for (k, &(src, dst)) in self.demand_pairs.iter().enumerate() {
            let d = &self.demands[k];
            if d.src == d.dst {
                store.push_path(&[]);
                continue;
            }
            store.push_path_from(layer.hops(src, dst).into_iter().filter_map(|hop| {
                let (fwd, rev) = self.conduit_link_ids[hop.segment as usize];
                let id = if hop.forward { fwd } else { rev };
                // Dedup-collapsed (zero-length) segments contribute no
                // simulator hop; the walk stays contiguous because their
                // endpoints are the same node.
                (id != usize::MAX).then_some(id as u32)
            }));
        }
        install_pinned_routes(&self.network, &self.demands, store)
    }
}

/// Lower a designed topology and an offered traffic matrix (pair weights,
/// any scale) into a packet network and demand set. Every demand is
/// foreground-class; see [`lower_classified`] for the hybrid split.
pub fn lower(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    let aggregate = config.design_aggregate_gbps * config.load_fraction;
    lower_with(
        topology,
        &[(offered_traffic, aggregate, TrafficClass::Foreground)],
        config,
    )
}

/// Lower with the traffic split by class: the foreground matrix is scaled
/// to `load_fraction × design target` exactly like [`lower`], and the
/// background matrix — bulk traffic, e.g. the datacenter-replication
/// component of the paper's §6.4 mix — is scaled to its own aggregate and
/// tagged [`TrafficClass::Background`], so a hybrid simulation
/// ([`BackgroundModel::Fluid`]) models it as fluid. Background demands are
/// appended after all foreground demands, still as consecutive
/// forward/reverse pairs, so [`pair_rtts`] keeps working (background pairs
/// report their propagation RTT: fluid flows deliver no packets).
///
/// [`BackgroundModel::Fluid`]: cisp_netsim::BackgroundModel::Fluid
pub fn lower_classified(
    topology: &HybridTopology,
    foreground: &DistMatrix,
    background: &DistMatrix,
    background_aggregate_gbps: f64,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    let aggregate = config.design_aggregate_gbps * config.load_fraction;
    lower_with(
        topology,
        &[
            (foreground, aggregate, TrafficClass::Foreground),
            (
                background,
                background_aggregate_gbps,
                TrafficClass::Background,
            ),
        ],
        config,
    )
}

/// [`lower_classified`] over a `cisp_traffic` classified split.
pub fn lower_traffic_classified(
    topology: &HybridTopology,
    classified: &ClassifiedTraffic,
    background_aggregate_gbps: f64,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    lower_classified(
        topology,
        classified.foreground.as_matrix(),
        classified.background.as_matrix(),
        background_aggregate_gbps,
        config,
    )
}

/// Shared lowering core: build the network once, then emit one demand per
/// direction per pair for every `(matrix, aggregate_gbps, class)` entry, in
/// entry order. Zero-aggregate or all-zero entries contribute nothing; at
/// least one entry must carry traffic.
fn lower_with(
    topology: &HybridTopology,
    traffic_classes: &[(&DistMatrix, f64, TrafficClass)],
    config: &EvaluateConfig,
) -> LoweredNetwork {
    let n = topology.num_sites();
    for (offered_traffic, aggregate, _) in traffic_classes {
        assert_eq!(
            offered_traffic.n(),
            n,
            "traffic matrix must cover the sites"
        );
        assert!(*aggregate >= 0.0);
    }
    assert!(config.load_fraction >= 0.0);

    // Deduplicate co-located sites (geodesic distance zero) onto one
    // representative node: a zero-length link would add a zero-propagation
    // hop the routing layer can spin through for free and would poison the
    // windowed engine's lookahead, so such pairs share a node instead. A
    // site is its own representative unless an earlier site sits at the
    // same location.
    let rep: Vec<usize> = (0..n)
        .map(|i| {
            (0..i)
                .find(|&j| topology.geodesic_km(j, i) == 0.0)
                .unwrap_or(i)
        })
        .collect();

    // Provision MW links for the design target using the topology's own
    // (design-time) traffic matrix — the offered matrix may differ; that
    // mismatch is exactly what Figs. 5 and 11 study.
    let augmentation =
        augment_for_throughput(topology, config.design_aggregate_gbps, &config.augment);

    let mut network = Network::new(n);
    let mut mw_link_ids = vec![(usize::MAX, usize::MAX); topology.mw_links().len()];
    for provision in &augmentation.links {
        let link = &topology.mw_links()[provision.link_index];
        let (from, to) = (rep[link.site_a], rep[link.site_b]);
        if from == to {
            // A microwave link between co-located sites carries nothing
            // the shared node does not already provide.
            continue;
        }
        let capacity_bps = (provision.series * provision.series) as f64 * 1e9;
        let ids = network.add_bidirectional_link(LinkSpec {
            from,
            to,
            rate_bps: capacity_bps,
            propagation_s: link.mw_length_km / SPEED_OF_LIGHT_KM_PER_S,
            buffer_bytes: config.mw_buffer_bytes,
        });
        mw_link_ids[provision.link_index] = ids;
    }

    // Fiber layer. Conduit-backed topologies lower one link per physical
    // conduit segment — O(segments) links, shared by every route that
    // traverses the conduit — while matrix-backed topologies fall back to
    // the dense per-pair mesh (plentiful bandwidth, 1.5×-slowed propagation
    // baked into the latency-equivalent distances either way).
    let mut conduit_link_ids = Vec::new();
    if let Some(layer) = topology.conduits() {
        conduit_link_ids = vec![(usize::MAX, usize::MAX); layer.num_segments()];
        for (s, seg) in layer.segments().iter().enumerate() {
            let (from, to) = (rep[seg.a], rep[seg.b]);
            if from == to {
                continue;
            }
            // The dedup above only collapses co-located *sites*; a
            // zero-length segment between distinct locations would still
            // emit the zero-propagation link the dedup exists to prevent —
            // degenerate input, so fail loudly rather than lower it.
            assert!(
                seg.route_km > 0.0,
                "conduit segment {s} has zero route length between distinct sites"
            );
            conduit_link_ids[s] = network.add_bidirectional_link(LinkSpec {
                from,
                to,
                rate_bps: config.fiber_rate_bps,
                propagation_s: seg.route_km * FIBER_LATENCY_FACTOR / SPEED_OF_LIGHT_KM_PER_S,
                buffer_bytes: config.fiber_buffer_bytes,
            });
        }
    } else {
        for i in 0..n {
            if rep[i] != i {
                continue;
            }
            for (j, &rep_j) in rep.iter().enumerate().skip(i + 1) {
                if rep_j != j {
                    continue;
                }
                let d = topology.fiber_km(i, j);
                if d.is_finite() && d > 0.0 {
                    network.add_bidirectional_link(LinkSpec {
                        from: i,
                        to: j,
                        rate_bps: config.fiber_rate_bps,
                        propagation_s: d / SPEED_OF_LIGHT_KM_PER_S,
                        buffer_bytes: config.fiber_buffer_bytes,
                    });
                }
            }
        }
    }

    // Offered demands: each class's matrix scaled so its pair sum is the
    // class aggregate, each pair split across directions. `demand_pairs`
    // keeps the original *site* pair; the demand endpoints are the
    // representative nodes (a co-located pair becomes a `src == dst`
    // demand, which emits nothing — its traffic needs no network).
    let mut demands = Vec::new();
    let mut demand_pairs = Vec::new();
    let mut any_traffic = false;
    for &(offered_traffic, aggregate_gbps, class) in traffic_classes {
        let total = offered_traffic.upper_triangle_sum();
        if total > 0.0 {
            // A zero aggregate (e.g. `load_fraction: 0`) legitimately emits
            // no demands; only all-zero *matrices* are a caller error.
            any_traffic = true;
        }
        if total <= 0.0 || aggregate_gbps <= 0.0 {
            continue;
        }
        let scale = aggregate_gbps / total;
        for i in 0..n {
            for j in (i + 1)..n {
                let gbps = offered_traffic.get(i, j) * scale;
                if gbps > 0.0 {
                    for (src, dst) in [(i, j), (j, i)] {
                        demands.push(Demand {
                            src: rep[src],
                            dst: rep[dst],
                            amount_bps: gbps * 1e9 / 2.0,
                            class,
                        });
                        demand_pairs.push((src, dst));
                    }
                }
            }
        }
    }
    assert!(any_traffic, "offered traffic matrix is empty");

    LoweredNetwork {
        network,
        demands,
        demand_pairs,
        mw_link_ids,
        conduit_link_ids,
        config: *config,
    }
}

/// [`lower`] over a `cisp_traffic` matrix.
pub fn lower_traffic(
    topology: &HybridTopology,
    offered_traffic: &TrafficMatrix,
    config: &EvaluateConfig,
) -> LoweredNetwork {
    lower(topology, offered_traffic.as_matrix(), config)
}

/// Queueing-aware round-trip time of one site pair, extracted from a
/// simulation run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairRtt {
    /// First site of the pair.
    pub site_a: usize,
    /// Second site of the pair.
    pub site_b: usize,
    /// Simulated RTT (forward + reverse mean one-way delay), milliseconds.
    /// Falls back to the propagation RTT when a direction delivered no
    /// packets.
    pub simulated_rtt_ms: f64,
    /// Zero-load propagation RTT over the built network, milliseconds.
    pub propagation_rtt_ms: f64,
    /// Packets delivered across both directions.
    pub delivered: u64,
    /// Offered load of the pair, bits per second (both directions).
    pub offered_bps: f64,
}

/// Per-pair simulated RTTs of a finished run. Pairs follow the lowering's
/// demand order (each unordered pair once).
pub fn pair_rtts(
    lowered: &LoweredNetwork,
    report: &SimReport,
    topology: &HybridTopology,
) -> Vec<PairRtt> {
    assert_eq!(report.flow_mean_delay_ms.len(), lowered.demands.len());
    let mut out = Vec::with_capacity(lowered.demands.len() / 2);
    // The lowering pushes the two directions of a pair consecutively.
    for k in (0..lowered.demands.len()).step_by(2) {
        let (i, j) = lowered.demand_pairs[k];
        // Hard assert: the fields are public, so a caller that reordered or
        // filtered the demands must not silently get mispaired RTTs.
        assert_eq!(
            lowered.demand_pairs[k + 1],
            (j, i),
            "demands are no longer in forward/reverse pair order"
        );
        let propagation_rtt_ms = 2.0 * latency::c_latency_ms(topology.effective_km(i, j));
        let delivered = report.flow_delivered[k] + report.flow_delivered[k + 1];
        let simulated_rtt_ms = if report.flow_delivered[k] > 0 && report.flow_delivered[k + 1] > 0 {
            report.flow_mean_delay_ms[k] + report.flow_mean_delay_ms[k + 1]
        } else {
            propagation_rtt_ms
        };
        out.push(PairRtt {
            site_a: i.min(j),
            site_b: i.max(j),
            simulated_rtt_ms,
            propagation_rtt_ms,
            delivered,
            offered_bps: lowered.demands[k].amount_bps + lowered.demands[k + 1].amount_bps,
        });
    }
    out
}

/// The full design → traffic → simulation chain in one call.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// The packet-level summary.
    pub sim: SimReport,
    /// Queueing-aware per-pair RTTs.
    pub pair_rtts: Vec<PairRtt>,
}

impl EvaluationReport {
    /// Offered-load-weighted mean simulated RTT across pairs, milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for p in &self.pair_rtts {
            num += p.offered_bps * p.simulated_rtt_ms;
            den += p.offered_bps;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// The simulated RTT samples, milliseconds (input for the application
    /// models' distributions).
    pub fn rtt_samples_ms(&self) -> Vec<f64> {
        self.pair_rtts.iter().map(|p| p.simulated_rtt_ms).collect()
    }
}

/// Lower, simulate, and extract per-pair RTTs in one step.
pub fn evaluate(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    config: &EvaluateConfig,
) -> EvaluationReport {
    let lowered = lower(topology, offered_traffic, config);
    let report = lowered.simulation().run();
    let rtts = pair_rtts(&lowered, &report, topology);
    EvaluationReport {
        sim: report,
        pair_rtts: rtts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    /// Four sites across the central US, direct MW links on a chain, fiber
    /// at 1.9× elsewhere.
    fn test_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(39.1, -94.6),
            GeoPoint::new(32.8, -96.8),
            GeoPoint::new(39.7, -105.0),
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    fn fast_config() -> EvaluateConfig {
        EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.5,
            sim: SimConfig {
                duration_s: 0.05,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        }
    }

    #[test]
    fn lowering_maps_links_and_demands() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        // 3 MW links + 6 fiber pairs, bidirectional.
        assert_eq!(lowered.network.num_links(), 2 * (3 + 6));
        // 6 pairs × 2 directions.
        assert_eq!(lowered.demands.len(), 12);
        assert_eq!(lowered.demand_pairs.len(), 12);
        // Every MW link id is populated and points at the right endpoints.
        for (k, &(fwd, rev)) in lowered.mw_link_ids.iter().enumerate() {
            let link = &topo.mw_links()[k];
            assert_eq!(lowered.network.link(fwd).from, link.site_a);
            assert_eq!(lowered.network.link(fwd).to, link.site_b);
            assert_eq!(lowered.network.link(rev).from, link.site_b);
        }
        // Demands sum to load_fraction × design target.
        let total_bps: f64 = lowered.demands.iter().map(|d| d.amount_bps).sum();
        assert!((total_bps - 2e9).abs() < 1.0, "total {total_bps}");
    }

    #[test]
    fn evaluate_produces_physical_rtts() {
        let topo = test_topology();
        let report = evaluate(&topo, topo.traffic(), &fast_config());
        assert!(report.sim.delivered > 0);
        assert_eq!(report.pair_rtts.len(), 6);
        for p in &report.pair_rtts {
            // Simulated RTT includes serialization + queueing: at least the
            // propagation RTT, and not absurdly larger at moderate load.
            assert!(
                p.simulated_rtt_ms >= p.propagation_rtt_ms - 1e-9,
                "pair ({}, {}): {} < {}",
                p.site_a,
                p.site_b,
                p.simulated_rtt_ms,
                p.propagation_rtt_ms
            );
            assert!(p.simulated_rtt_ms < p.propagation_rtt_ms + 20.0);
            assert!(p.delivered > 0);
        }
        assert!(report.mean_rtt_ms() > 0.0);
        assert_eq!(report.rtt_samples_ms().len(), 6);
    }

    #[test]
    fn failing_a_link_reroutes_and_raises_latency() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        let fair = lowered.simulation().run();
        // Fail every MW link: everything rides fiber, so the mean delay
        // must rise strictly.
        let all_failed: Vec<usize> = (0..topo.mw_links().len()).collect();
        let stormy = lowered.simulation_without(&all_failed).run();
        assert!(stormy.delivered > 0);
        assert!(
            stormy.mean_delay_ms > fair.mean_delay_ms,
            "fiber fallback must be slower: {} vs {}",
            stormy.mean_delay_ms,
            fair.mean_delay_ms
        );
        // No traffic crosses a disabled link.
        let mask = lowered.disabled_mask(&all_failed);
        for (l, &disabled) in mask.iter().enumerate() {
            if disabled {
                assert_eq!(stormy.link_utilizations[l], 0.0, "link {l} carried load");
            }
        }
    }

    #[test]
    fn windowed_evaluation_is_bit_identical_to_serial() {
        use cisp_netsim::sim::ExecMode;
        let topo = test_topology();
        let mut serial_cfg = fast_config();
        serial_cfg.sim.workers = 1;
        let serial = evaluate(&topo, topo.traffic(), &serial_cfg);
        // The lowered network's fiber mesh joins every site: one component.
        assert_eq!(
            lower(&topo, topo.traffic(), &serial_cfg)
                .simulation()
                .num_components(),
            1
        );
        for (workers, window_s) in [(2, 0.0), (4, 0.0), (4, 1e-3)] {
            let mut cfg = fast_config();
            cfg.sim.workers = workers;
            cfg.sim.mode = ExecMode::TimeWindowed { window_s };
            let windowed = evaluate(&topo, topo.traffic(), &cfg);
            assert_eq!(
                serial.sim, windowed.sim,
                "workers {workers}, window {window_s}"
            );
        }
    }

    /// The same four sites as [`test_topology`], but conduit-backed: a
    /// conduit chain through Kansas City plus a direct Chicago–Denver
    /// detour conduit, with the same MW spine built on top.
    fn conduit_test_topology() -> HybridTopology {
        use cisp_data::fiber::{FiberLink, FiberNetwork};
        let sites = vec![
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(39.1, -94.6),
            GeoPoint::new(32.8, -96.8),
            GeoPoint::new(39.7, -105.0),
        ];
        let n = sites.len();
        let seg = |a: usize, b: usize, factor: f64| FiberLink {
            a,
            b,
            route_km: geodesic::distance_km(sites[a], sites[b]) * factor,
        };
        let fiber = FiberNetwork::from_parts(
            sites.clone(),
            vec![
                seg(0, 1, 1.25),
                seg(1, 2, 1.25),
                seg(1, 3, 1.25),
                seg(0, 3, 1.4),
            ],
        );
        let traffic = vec![vec![1.0; n]; n];
        let mut topo = HybridTopology::with_conduits(sites.clone(), traffic, &fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    #[test]
    fn conduit_lowering_emits_one_link_per_segment() {
        let topo = conduit_test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        // 3 MW links + 4 conduit segments, bidirectional — not the 6-pair
        // mesh.
        assert_eq!(lowered.network.num_links(), 2 * (3 + 4));
        assert_eq!(lowered.conduit_link_ids.len(), 4);
        for (s, &(fwd, rev)) in lowered.conduit_link_ids.iter().enumerate() {
            let seg = topo.conduits().unwrap().segments()[s];
            assert_eq!(lowered.network.link(fwd).from, seg.a);
            assert_eq!(lowered.network.link(fwd).to, seg.b);
            assert_eq!(lowered.network.link(rev).from, seg.b);
            let expected_s = seg.route_km * 1.5 / SPEED_OF_LIGHT_KM_PER_S;
            assert!((lowered.network.link(fwd).propagation_s - expected_s).abs() < 1e-12);
        }
        // The evaluation chain runs end to end on the conduit lowering.
        let report = evaluate(&topo, topo.traffic(), &fast_config());
        assert!(report.sim.delivered > 0);
        assert_eq!(report.pair_rtts.len(), 6);
        for p in &report.pair_rtts {
            assert!(p.simulated_rtt_ms >= p.propagation_rtt_ms - 1e-9);
        }
    }

    #[test]
    fn conduit_fiber_fallback_shares_segments_and_queues() {
        // Pure-fiber conduit topology (no MW spine): the 0↔2 and 3↔2
        // fallbacks both traverse the (1, 2) conduit, so with fiber
        // capacity in demand range they queue against each other — the
        // sharing the per-pair mesh could never express.
        let topo = {
            let mut t = conduit_test_topology();
            t = HybridTopology::with_conduits(
                t.sites().to_vec(),
                t.traffic().clone(),
                &cisp_data::fiber::FiberNetwork::from_parts(
                    t.sites().to_vec(),
                    t.conduits().unwrap().segments().to_vec(),
                ),
            );
            t
        };
        let config = EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.5,
            fiber_rate_bps: 1e9,
            sim: SimConfig {
                duration_s: 0.05,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        };
        let lowered = lower(&topo, topo.traffic(), &config);
        let mut sim = lowered.simulation();
        // Multiple demands ride the shared (1, 2) conduit in each direction.
        let (fwd, _) = lowered.conduit_link_ids[1];
        let riders = (0..lowered.demands.len())
            .filter(|&k| sim.routes().route(k).contains(&(fwd as u32)))
            .count();
        assert!(riders >= 2, "expected shared conduit, got {riders} riders");
        let report = sim.run();
        assert!(report.delivered > 0);
        assert!(
            report.mean_queue_delay_ms > 0.0,
            "shared conduits must exhibit queueing"
        );
    }

    #[test]
    fn pinned_fiber_routes_realise_the_fiber_matrix() {
        // Without a MW spine, the Dijkstra routes and the pinned conduit
        // routes are the same pure-fiber paths.
        let base = conduit_test_topology();
        let topo = HybridTopology::with_conduits(
            base.sites().to_vec(),
            base.traffic().clone(),
            &cisp_data::fiber::FiberNetwork::from_parts(
                base.sites().to_vec(),
                base.conduits().unwrap().segments().to_vec(),
            ),
        );
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        let pinned = lowered.pinned_fiber_routes(&topo);
        let dijkstra = lowered.simulation();
        for (k, &(i, j)) in lowered.demand_pairs.iter().enumerate() {
            // The pinned route's propagation realises the latency-equivalent
            // fiber distance (reassociated sum: ulp-level tolerance).
            let expected_s = topo.fiber_km(i, j) / SPEED_OF_LIGHT_KM_PER_S;
            assert!(
                (pinned.route_latency_s(&lowered.network, k) - expected_s).abs() < 1e-12,
                "demand {k}"
            );
            assert_eq!(pinned.route(k), dijkstra.routes().route(k), "demand {k}");
        }
        // And the pinned simulation reproduces the Dijkstra-routed one.
        let mut a = Simulation::with_routes(
            lowered.network.clone(),
            lowered.demands.clone(),
            pinned,
            lowered.config.sim,
        );
        let mut b = lowered.simulation();
        assert_eq!(a.run(), b.run());
    }

    #[test]
    #[should_panic(expected = "zero route length")]
    fn zero_length_conduit_between_distinct_sites_is_rejected() {
        use cisp_data::fiber::{FiberLink, FiberNetwork};
        let sites = vec![GeoPoint::new(41.9, -87.6), GeoPoint::new(39.1, -94.6)];
        let fiber = FiberNetwork::from_parts(
            sites.clone(),
            vec![FiberLink {
                a: 0,
                b: 1,
                route_km: 0.0,
            }],
        );
        let topo =
            HybridTopology::with_conduits(sites, vec![vec![0.0, 1.0], vec![1.0, 0.0]], &fiber);
        lower(&topo, topo.traffic(), &fast_config());
    }

    #[test]
    fn co_located_sites_are_deduplicated_before_lowering() {
        // Sites 0 and 1 are the same location (a coalescing miss): the
        // lowering must not emit a zero-propagation link for them.
        let sites = vec![
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(41.9, -87.6),
            GeoPoint::new(32.8, -96.8),
            GeoPoint::new(39.7, -105.0),
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        let geo = geodesic::distance_km(sites[0], sites[2]);
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 2,
            mw_length_km: geo * 1.04,
            tower_count: 8,
            tower_path: vec![0; 3],
        });
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        for l in lowered.network.links() {
            assert!(
                l.propagation_s > 0.0,
                "zero-propagation link {} → {} survived dedup",
                l.from,
                l.to
            );
            assert_ne!(l.to, 1, "links must target the representative node");
            assert_ne!(l.from, 1, "links must leave the representative node");
        }
        // Mesh links cover representative pairs only: (0,2), (0,3), (2,3)
        // fiber plus the MW link, bidirectional.
        assert_eq!(lowered.network.num_links(), 2 * (3 + 1));
        // The co-located demand collapses onto one node and emits nothing,
        // but keeps its slot so the pair bookkeeping stays aligned.
        let k = lowered
            .demand_pairs
            .iter()
            .position(|&p| p == (0, 1))
            .expect("pair (0, 1) must keep its demand slot");
        assert_eq!(lowered.demands[k].src, lowered.demands[k].dst);
        let report = lowered.simulation().run();
        assert!(report.delivered > 0);
        let rtts = pair_rtts(&lowered, &report, &topo);
        let co = rtts
            .iter()
            .find(|p| p.site_a == 0 && p.site_b == 1)
            .unwrap();
        assert_eq!(co.simulated_rtt_ms, 0.0);
        assert_eq!(co.delivered, 0);
    }

    #[test]
    fn traffic_matrix_wrapper_matches_raw_matrix() {
        let topo = test_topology();
        let tm = TrafficMatrix::from_dist_matrix(topo.traffic().clone());
        let a = lower(&topo, topo.traffic(), &fast_config());
        let b = lower_traffic(&topo, &tm, &fast_config());
        assert_eq!(a.demands.len(), b.demands.len());
        assert_eq!(a.network.num_links(), b.network.num_links());
    }

    #[test]
    fn stale_failure_indices_are_tolerated() {
        let topo = test_topology();
        let lowered = lower(&topo, topo.traffic(), &fast_config());
        let mask = lowered.disabled_mask(&[99, 7]);
        assert!(mask.iter().all(|&d| !d));
    }

    #[test]
    fn classified_lowering_appends_tagged_background_pairs() {
        let topo = test_topology();
        let config = fast_config();
        let plain = lower(&topo, topo.traffic(), &config);
        let classified = lower_classified(&topo, topo.traffic(), topo.traffic(), 1.0, &config);
        // Foreground demands come first and are identical to the plain
        // lowering; the background entry appends its own fwd/rev pairs.
        assert_eq!(classified.demands.len(), 2 * plain.demands.len());
        assert_eq!(
            &classified.demands[..plain.demands.len()],
            &plain.demands[..]
        );
        for (k, d) in classified.demands.iter().enumerate() {
            let expect_bg = k >= plain.demands.len();
            assert_eq!(d.is_background(), expect_bg, "demand {k}");
        }
        // Background scaled to its own aggregate: 1 Gbps total.
        let bg_bps: f64 = classified.demands[plain.demands.len()..]
            .iter()
            .map(|d| d.amount_bps)
            .sum();
        assert!((bg_bps - 1e9).abs() < 1.0, "background total {bg_bps}");
        // Pair order still alternates forward/reverse — pair_rtts' contract.
        for k in (0..classified.demand_pairs.len()).step_by(2) {
            let (i, j) = classified.demand_pairs[k];
            assert_eq!(classified.demand_pairs[k + 1], (j, i));
        }
        // A zero background aggregate lowers to exactly the plain result.
        let zero_bg = lower_classified(&topo, topo.traffic(), topo.traffic(), 0.0, &config);
        assert_eq!(zero_bg.demands, plain.demands);
    }

    #[test]
    fn hybrid_evaluation_flows_through_pair_rtts() {
        // The classified lowering plus a Fluid background runs through the
        // same simulation/report machinery the weather and app layers use:
        // foreground pairs keep queueing-aware RTTs, background pairs fall
        // back to propagation (fluid flows deliver no packets), and the
        // report carries the class stats.
        let topo = test_topology();
        let mut config = fast_config();
        config.sim.background = cisp_netsim::BackgroundModel::Fluid;
        let lowered = lower_classified(&topo, topo.traffic(), topo.traffic(), 0.5, &config);
        let report = lowered.simulation().run();
        assert!(report.delivered > 0);
        let bg = report
            .background
            .expect("hybrid run must report class stats");
        assert_eq!(bg.flows, 12);
        assert!(bg.offered_bits > 0.0);
        let rtts = pair_rtts(&lowered, &report, &topo);
        assert_eq!(rtts.len(), 12); // 6 foreground + 6 background pairs
        for p in &rtts[..6] {
            assert!(p.delivered > 0);
            assert!(p.simulated_rtt_ms >= p.propagation_rtt_ms - 1e-9);
        }
        for p in &rtts[6..] {
            assert_eq!(p.delivered, 0);
            assert_eq!(p.simulated_rtt_ms, p.propagation_rtt_ms);
        }
    }

    #[test]
    fn traffic_classified_wrapper_matches_raw_matrices() {
        let topo = test_topology();
        let config = fast_config();
        let classified = ClassifiedTraffic {
            foreground: TrafficMatrix::from_dist_matrix(topo.traffic().clone()),
            background: TrafficMatrix::from_dist_matrix(topo.traffic().clone()),
        };
        let a = lower_classified(&topo, topo.traffic(), topo.traffic(), 2.0, &config);
        let b = lower_traffic_classified(&topo, &classified, 2.0, &config);
        assert_eq!(a.demands.len(), b.demands.len());
        assert_eq!(a.network.num_links(), b.network.num_links());
    }
}

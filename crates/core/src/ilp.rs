//! The exact flow-based ILP formulation of the design problem (§3.2).
//!
//! For every unordered site pair `(s, t)` with traffic `h_st`, one unit of
//! flow must travel from `s` to `t` over a mix of
//!
//! * *candidate microwave arcs* `i→j` (usable only if the corresponding link
//!   is built, `x_ij = 1`), with latency-equivalent length `m_ij`, and
//! * *fiber arcs* `i→j` (always available), with latency-equivalent length
//!   `o_ij`.
//!
//! The objective weights each unit of carried distance by `h_st / d_st`, so
//! minimising it minimises the traffic-weighted mean stretch. The budget
//! constraint `Σ c_ij · x_ij ≤ B` caps the number of towers.
//!
//! Two paper tricks are applied before the solver sees the model:
//!
//! * **fiber-oracle elimination** (exact): candidate links no shorter than
//!   the fiber distance between their endpoints are dropped, and per-commodity
//!   MW arc variables are only created when the arc could possibly lie on a
//!   path shorter than the commodity's direct fiber distance;
//! * **flow relaxation** (exact for this problem): flow variables are left
//!   continuous. With link capacities absent, for any fixed integral `x` the
//!   flow polytope's optimum is attained by routing each commodity on a
//!   shortest path, so the optimal objective value (and the optimal `x`) are
//!   unchanged — only the branch-and-bound tree gets much smaller.
//!
//! This module also provides [`exact_subset_search`], a combinatorial
//! branch-and-bound over link subsets used to cross-validate the ILP and to
//! serve as the "exact solver" curve in the Fig. 2 reproduction at sizes our
//! dense simplex cannot reach.

use cisp_graph::DistMatrix;
use cisp_lp::{
    branch_bound::{solve_milp, MilpOptions},
    model::{Problem, VarId, VarKind},
};
use serde::{Deserialize, Serialize};

use crate::design::{DesignInput, DesignOutcome};
use crate::topology::{improve_with_link, weighted_mean_stretch};

/// Statistics about a built ILP model (for the scaling experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlpModelStats {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Number of constraints.
    pub num_constraints: usize,
    /// Number of candidate links offered to the solver.
    pub num_candidates: usize,
    /// Number of commodities (site pairs with positive traffic).
    pub num_commodities: usize,
}

/// Errors from the exact solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactSolveError {
    /// The MILP search hit its node or time limit before proving optimality.
    LimitReached,
    /// The model was infeasible (should not happen: fiber-only is feasible).
    Infeasible,
}

impl std::fmt::Display for ExactSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactSolveError::LimitReached => write!(f, "exact solver hit its search limit"),
            ExactSolveError::Infeasible => write!(f, "design ILP unexpectedly infeasible"),
        }
    }
}

impl std::error::Error for ExactSolveError {}

/// The assembled ILP model, ready to solve.
pub struct IlpFormulation {
    problem: Problem,
    /// `x` variable of each offered candidate (indexed like `candidate_pool`).
    x_vars: Vec<VarId>,
    /// Candidate indices (into `DesignInput::candidates`) offered to the ILP.
    candidate_pool: Vec<usize>,
    stats: IlpModelStats,
}

impl IlpFormulation {
    /// Build the flow ILP for the given candidate pool and tower budget.
    ///
    /// `pool` holds indices into `input.candidates`; pass
    /// `input.useful_candidates()` for the full (oracle-filtered) problem.
    pub fn build(input: &DesignInput, pool: &[usize], budget_towers: f64) -> Self {
        let n = input.sites.len();
        let mut problem = Problem::minimize();

        // Candidate build variables.
        let x_vars: Vec<VarId> = pool
            .iter()
            .map(|&idx| {
                let l = &input.candidates[idx];
                problem.add_var(
                    &format!("x_{}_{}", l.site_a, l.site_b),
                    VarKind::Binary,
                    0.0,
                )
            })
            .collect();

        // Budget constraint.
        problem.add_le(
            pool.iter()
                .zip(&x_vars)
                .map(|(&idx, &x)| (x, input.candidates[idx].tower_count as f64))
                .collect(),
            budget_towers,
        );

        // Commodities: unordered pairs with positive traffic.
        let commodities: Vec<(usize, usize)> = input
            .traffic
            .upper_triangle()
            .filter(|&(_, _, h)| h > 0.0)
            .map(|(s, t, _)| (s, t))
            .collect();

        let geodesic = |s: usize, t: usize| -> f64 {
            cisp_geo::geodesic::distance_km(input.sites[s], input.sites[t]).max(1e-6)
        };

        // Per-commodity flow variables and constraints.
        for &(s, t) in &commodities {
            let h = input.traffic.get(s, t);
            let weight = h / geodesic(s, t);
            let direct_fiber = input.fiber_km.get(s, t);

            // Arc variable registry for this commodity:
            // (from, to, length, optional pool position for MW arcs).
            let mut arcs: Vec<(usize, usize, f64, Option<usize>)> = Vec::new();
            // Fiber arcs between every ordered pair (always available).
            for i in 0..n {
                for j in 0..n {
                    if i != j && input.fiber_km[i][j].is_finite() {
                        arcs.push((i, j, input.fiber_km[i][j], None));
                    }
                }
            }
            // MW arcs for pool candidates, oracle-filtered per commodity:
            // an arc can only help if entering and leaving it could beat the
            // commodity's direct fiber distance.
            for (pos, &idx) in pool.iter().enumerate() {
                let l = &input.candidates[idx];
                let (i, j, m) = (l.site_a, l.site_b, l.mw_length_km);
                let via_ij = input.fiber_km[s][i] + m + input.fiber_km[j][t];
                let via_ji = input.fiber_km[s][j] + m + input.fiber_km[i][t];
                if via_ij.min(via_ji) < direct_fiber + 1e-9 {
                    arcs.push((i, j, m, Some(pos)));
                    arcs.push((j, i, m, Some(pos)));
                }
            }

            // Flow variables.
            let flow_vars: Vec<VarId> = arcs
                .iter()
                .map(|&(i, j, len, mw)| {
                    let name = match mw {
                        Some(_) => format!("f_{s}_{t}_mw_{i}_{j}"),
                        None => format!("f_{s}_{t}_fi_{i}_{j}"),
                    };
                    problem.add_var(&name, VarKind::Continuous, weight * len)
                })
                .collect();

            // Flow conservation at every node.
            for node in 0..n {
                let mut terms = Vec::new();
                for (arc_idx, &(i, j, _, _)) in arcs.iter().enumerate() {
                    if i == node {
                        terms.push((flow_vars[arc_idx], 1.0));
                    } else if j == node {
                        terms.push((flow_vars[arc_idx], -1.0));
                    }
                }
                let rhs = if node == s {
                    1.0
                } else if node == t {
                    -1.0
                } else {
                    0.0
                };
                if !terms.is_empty() || rhs != 0.0 {
                    problem.add_eq(terms, rhs);
                }
            }

            // Coupling: MW arcs only usable if the link is built.
            for (arc_idx, &(_, _, _, mw)) in arcs.iter().enumerate() {
                if let Some(pos) = mw {
                    problem.add_le(vec![(flow_vars[arc_idx], 1.0), (x_vars[pos], -1.0)], 0.0);
                }
            }
        }

        let stats = IlpModelStats {
            num_vars: problem.num_vars(),
            num_constraints: problem.num_constraints(),
            num_candidates: pool.len(),
            num_commodities: commodities.len(),
        };

        Self {
            problem,
            x_vars,
            candidate_pool: pool.to_vec(),
            stats,
        }
    }

    /// Model-size statistics.
    pub fn stats(&self) -> IlpModelStats {
        self.stats
    }

    /// Solve the ILP and convert the result into a [`DesignOutcome`].
    pub fn solve(
        &self,
        input: &DesignInput,
        options: &MilpOptions,
    ) -> Result<DesignOutcome, ExactSolveError> {
        let solution = solve_milp(&self.problem, options).map_err(|e| match e {
            cisp_lp::branch_bound::MilpError::Infeasible => ExactSolveError::Infeasible,
            _ => ExactSolveError::LimitReached,
        })?;
        if !solution.proven_optimal {
            return Err(ExactSolveError::LimitReached);
        }
        let selected: Vec<usize> = self
            .candidate_pool
            .iter()
            .zip(&self.x_vars)
            .filter(|(_, x)| solution.values[x.index()] > 0.5)
            .map(|(&idx, _)| idx)
            .collect();
        Ok(outcome_from_selection(input, &selected))
    }
}

/// Build a [`DesignOutcome`] from an explicit selection of candidate indices.
pub fn outcome_from_selection(input: &DesignInput, selected: &[usize]) -> DesignOutcome {
    let mut topology = input.empty_topology();
    let mut total_towers = 0;
    for &idx in selected {
        total_towers += input.candidates[idx].tower_count;
        topology.add_mw_link(input.candidates[idx].clone());
    }
    DesignOutcome {
        selected: selected.to_vec(),
        mean_stretch: topology.mean_stretch(),
        total_towers,
        topology,
        history: Vec::new(),
    }
}

/// Exact combinatorial branch-and-bound over link subsets.
///
/// Explores include/exclude decisions over the (oracle-filtered) candidates,
/// pruning with an optimistic bound: the mean stretch obtained by building
/// *every* remaining candidate for free. The bound is admissible because
/// adding links can only reduce stretch, so the search returns the true
/// optimum. `max_nodes` caps the search; exceeding it returns
/// [`ExactSolveError::LimitReached`].
///
/// The search runs entirely on flat scratch matrices from the
/// `cisp_graph::DistMatrix` engine: each include-branch extends the parent's
/// effective matrix with one incremental `improve_with_link`, node
/// evaluation is one `weighted_mean_stretch` sweep, and the optimistic bound
/// reuses a single copy-on-write scratch buffer — no per-node topology
/// rebuilds (which recomputed all O(n²) geodesics per node) remain. A full
/// [`DesignOutcome`] is materialised only for the final incumbent.
pub fn exact_subset_search(
    input: &DesignInput,
    budget_towers: f64,
    max_nodes: usize,
) -> Result<(DesignOutcome, usize), ExactSolveError> {
    let pool = input.useful_candidates();
    let budget = budget_towers.floor() as usize;

    // Order candidates by decreasing single-link gain so good solutions are
    // found early (better pruning).
    let base = input.empty_topology();
    let base_stretch = base.mean_stretch();
    let mut ordered: Vec<usize> = pool.clone();
    ordered.sort_by(|&a, &b| {
        let ga = base_stretch - base.mean_stretch_with(&input.candidates[a]);
        let gb = base_stretch - base.mean_stretch_with(&input.candidates[b]);
        gb.partial_cmp(&ga).unwrap().then(a.cmp(&b))
    });

    let mut search = SubsetSearch {
        input,
        ordered: &ordered,
        geodesic: base.geodesic_matrix(),
        budget,
        max_nodes,
        best_selection: Vec::new(),
        best_stretch: base_stretch,
        nodes: 0,
        limit_hit: false,
        scratch: input.fiber_km.clone(),
    };
    let mut selection = Vec::new();
    search.recurse(0, &mut selection, &input.fiber_km, 0);

    if search.limit_hit {
        return Err(ExactSolveError::LimitReached);
    }
    Ok((
        outcome_from_selection(input, &search.best_selection),
        search.nodes,
    ))
}

/// State of one [`exact_subset_search`] run.
struct SubsetSearch<'a> {
    input: &'a DesignInput,
    ordered: &'a [usize],
    geodesic: &'a DistMatrix,
    budget: usize,
    max_nodes: usize,
    best_selection: Vec<usize>,
    best_stretch: f64,
    nodes: usize,
    limit_hit: bool,
    /// Reusable buffer for the optimistic bound's free completion.
    scratch: DistMatrix,
}

impl SubsetSearch<'_> {
    /// Depth-first include/exclude search. `effective` is the metric-closed
    /// distance matrix of the current `selection` (fiber plus the selected
    /// links, applied in selection order).
    fn recurse(
        &mut self,
        depth: usize,
        selection: &mut Vec<usize>,
        effective: &DistMatrix,
        cost: usize,
    ) {
        if self.limit_hit {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.limit_hit = true;
            return;
        }

        // Evaluate the current selection.
        let stretch = weighted_mean_stretch(effective, self.geodesic, &self.input.traffic);
        if stretch < self.best_stretch - 1e-12 {
            self.best_stretch = stretch;
            self.best_selection = selection.clone();
        }

        if depth >= self.ordered.len() {
            return;
        }

        // Optimistic bound: add all remaining candidates for free, into the
        // reusable scratch buffer.
        self.scratch.copy_from(effective);
        for &idx in &self.ordered[depth..] {
            let l = &self.input.candidates[idx];
            improve_with_link(&mut self.scratch, l.site_a, l.site_b, l.mw_length_km);
        }
        let optimistic = weighted_mean_stretch(&self.scratch, self.geodesic, &self.input.traffic);
        if optimistic >= self.best_stretch - 1e-12 {
            return; // even the free completion cannot beat the incumbent
        }

        // Branch: include ordered[depth] if affordable, then exclude it.
        let idx = self.ordered[depth];
        let link_cost = self.input.candidates[idx].tower_count;
        if cost + link_cost <= self.budget {
            let l = &self.input.candidates[idx];
            let mut included = effective.clone();
            improve_with_link(&mut included, l.site_a, l.site_b, l.mw_length_km);
            selection.push(idx);
            self.recurse(depth + 1, selection, &included, cost + link_cost);
            selection.pop();
        }
        self.recurse(depth + 1, selection, effective, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Designer;
    use crate::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};
    use cisp_graph::DistMatrix;

    fn synthetic_input(n: usize) -> DesignInput {
        let sites: Vec<GeoPoint> = (0..n)
            .map(|i| GeoPoint::new(37.0 + (i % 2) as f64 * 3.0, -105.0 + i as f64 * 3.0))
            .collect();
        let traffic = DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
        let fiber_km =
            DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]) * 1.9);
        let mut candidates = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let geo = geodesic::distance_km(sites[i], sites[j]);
                let towers = ((geo / 60.0).ceil() as usize).max(1);
                candidates.push(CandidateLink {
                    site_a: i,
                    site_b: j,
                    mw_length_km: geo * 1.04,
                    tower_count: towers,
                    tower_path: (0..towers).collect(),
                });
            }
        }
        DesignInput {
            sites,
            traffic,
            fiber_km,
            candidates,
        }
    }

    #[test]
    fn model_stats_reflect_problem_size() {
        let input = synthetic_input(4);
        let pool = input.useful_candidates();
        let ilp = IlpFormulation::build(&input, &pool, 10.0);
        let stats = ilp.stats();
        assert_eq!(stats.num_candidates, 6);
        assert_eq!(stats.num_commodities, 6);
        assert!(stats.num_vars > 6);
        assert!(stats.num_constraints > 6);
    }

    #[test]
    fn exact_search_matches_brute_force_on_tiny_instance() {
        let input = synthetic_input(4);
        let budget = 12.0;
        let (exact, _) = exact_subset_search(&input, budget, 1_000_000).unwrap();

        // Brute force over all subsets of useful candidates.
        let pool = input.useful_candidates();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << pool.len()) {
            let selection: Vec<usize> = pool
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, &idx)| idx)
                .collect();
            let cost: usize = selection
                .iter()
                .map(|&i| input.candidates[i].tower_count)
                .sum();
            if cost as f64 <= budget {
                let o = outcome_from_selection(&input, &selection);
                best = best.min(o.mean_stretch);
            }
        }
        assert!((exact.mean_stretch - best).abs() < 1e-9);
    }

    #[test]
    fn ilp_matches_exact_search_on_tiny_instance() {
        let input = synthetic_input(4);
        let budget = 12.0;
        let pool = input.useful_candidates();
        let ilp = IlpFormulation::build(&input, &pool, budget);
        let ilp_outcome = ilp.solve(&input, &MilpOptions::default()).unwrap();
        let (exact, _) = exact_subset_search(&input, budget, 1_000_000).unwrap();
        assert!(
            (ilp_outcome.mean_stretch - exact.mean_stretch).abs() < 1e-6,
            "ILP {} vs exact {}",
            ilp_outcome.mean_stretch,
            exact.mean_stretch
        );
        assert!(ilp_outcome.total_towers as f64 <= budget);
    }

    #[test]
    fn heuristic_matches_exact_on_small_instances() {
        // Fig. 2(b): the cISP heuristic matches the exact optimum to two
        // decimal places at small scale.
        for n in [4, 5, 6] {
            let input = synthetic_input(n);
            let budget = (3 * n) as f64;
            let (exact, _) = exact_subset_search(&input, budget, 5_000_000).unwrap();
            let heuristic = Designer::new(&input).cisp(budget);
            assert!(
                heuristic.mean_stretch - exact.mean_stretch < 0.01,
                "n={n}: heuristic {} vs exact {}",
                heuristic.mean_stretch,
                exact.mean_stretch
            );
        }
    }

    #[test]
    fn exact_search_respects_budget() {
        let input = synthetic_input(5);
        let (outcome, _) = exact_subset_search(&input, 6.0, 1_000_000).unwrap();
        assert!(outcome.total_towers <= 6);
    }

    #[test]
    fn exact_search_node_limit_reported() {
        let input = synthetic_input(6);
        match exact_subset_search(&input, 30.0, 3) {
            Err(ExactSolveError::LimitReached) => {}
            other => panic!("expected limit, got {other:?}"),
        }
    }

    #[test]
    fn zero_budget_exact_is_fiber_only() {
        let input = synthetic_input(4);
        let (outcome, _) = exact_subset_search(&input, 0.0, 100_000).unwrap();
        assert!(outcome.selected.is_empty());
        assert!((outcome.mean_stretch - 1.9).abs() < 1e-9);
    }
}

//! The cISP network designer — the paper's primary contribution.
//!
//! Given tower infrastructure, fiber connectivity, a set of sites and a
//! traffic model, design a hybrid microwave + fiber wide-area network whose
//! mean latency is as close to the speed-of-light lower bound ("c-latency")
//! as a tower budget allows. The pipeline follows §3 of the paper:
//!
//! 1. **Feasible hops** ([`hops`]): decide which tower pairs can host a
//!    microwave hop, using line-of-sight over terrain + clutter, Fresnel-zone
//!    clearance, Earth curvature with atmospheric refraction, and a maximum
//!    range.
//! 2. **Site-to-site links** ([`links`]): for every pair of sites, find the
//!    shortest tower path through the feasible-hop graph; its length is the
//!    link's latency and its tower count is the link's cost.
//! 3. **Topology design** ([`design`], [`ilp`]): choose the subset of links
//!    to build under a tower budget, minimising traffic-weighted mean
//!    stretch. The exact flow-based ILP ([`ilp`]) is solved with the
//!    workspace's own MILP solver at small scale; the scalable cISP
//!    heuristic ([`design`]) uses the paper's greedy candidate pruning plus
//!    a swap-based refinement, running on the incremental delta-scoring
//!    engine and its persistent worker shards ([`engine`]).
//! 4. **Capacity augmentation** ([`augment`]): parallel tower series (the k²
//!    trick of §3.3) sized from per-link traffic, with new towers charged to
//!    the cost model ([`cost`]).
//!
//! [`topology`] holds the resulting hybrid network and its latency/stretch
//! evaluation, [`scenario`] wires the whole pipeline together for the
//! US and Europe deployments studied in the paper, and [`evaluate`] lowers
//! a designed topology plus a traffic matrix into the `cisp_netsim` packet
//! simulator — the design → traffic → simulation → applications chain the
//! paper's §5–§7 results run over.
//!
//! # Quickstart
//!
//! ```
//! use cisp_core::scenario::{Scenario, ScenarioConfig};
//!
//! // A deliberately tiny scenario so the doctest runs in milliseconds:
//! // 12 sites, a few hundred towers, a 300-tower budget.
//! let config = ScenarioConfig::tiny_test();
//! let scenario = Scenario::build(&config);
//! let outcome = scenario.design(300.0);
//! assert!(outcome.topology.mean_stretch() >= 1.0);
//! assert!(outcome.topology.mean_stretch() < 2.0);
//! ```

pub mod augment;
pub mod cost;
pub mod design;
pub mod economics;
pub mod engine;
pub mod evaluate;
pub mod hops;
pub mod ilp;
pub mod links;
pub mod scenario;
pub mod topology;

pub use cost::CostModel;
pub use design::{DesignInput, DesignOutcome, Designer};
pub use economics::{rank_upgrades, UpgradeConfig, UpgradeOption, UpgradeRanking};
pub use hops::{HopConfig, HopFeasibility};
pub use links::{CandidateLink, LinkBuilder};
pub use topology::HybridTopology;

//! Step 1(a): microwave hop feasibility between tower pairs.
//!
//! A hop between two towers is feasible when (§2, §3.1):
//!
//! * the towers are within the maximum practicable range (default 100 km, we
//!   also evaluate 60–100 km, Fig. 10),
//! * the straight line between the two antennas clears the Earth bulge (with
//!   refraction factor `K = 1.3`) plus a fully clear first Fresnel zone at
//!   `f = 11 GHz`, over the terrain + clutter surface, and
//! * the antennas can only be mounted up to a *usable height fraction* of the
//!   tower (Fig. 10 evaluates 1.0, 0.85, 0.65, 0.45).

use cisp_data::towers::TowerRegistry;
use cisp_geo::{fresnel, geodesic, units};
use cisp_terrain::{clutter::ClutterModel, profile, TerrainModel};
use serde::{Deserialize, Serialize};

/// Parameters of the hop-feasibility assessment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HopConfig {
    /// Maximum tower-to-tower range in kilometres (paper default: 100 km).
    pub max_range_km: f64,
    /// Microwave carrier frequency in GHz (paper: 11 GHz).
    pub frequency_ghz: f64,
    /// Effective-Earth-radius factor for refraction (paper: K = 1.3).
    pub k_factor: f64,
    /// Fraction of each tower's height usable for mounting antennas
    /// (paper baseline: 1.0, i.e. the tower top; Fig. 10 explores less).
    pub usable_height_fraction: f64,
}

impl Default for HopConfig {
    fn default() -> Self {
        Self {
            max_range_km: units::DEFAULT_MAX_HOP_KM,
            frequency_ghz: units::DEFAULT_MICROWAVE_FREQ_GHZ,
            k_factor: units::DEFAULT_K_FACTOR,
            usable_height_fraction: 1.0,
        }
    }
}

impl HopConfig {
    /// The paper's baseline configuration (100 km, 11 GHz, K = 1.3, tops).
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// A restricted configuration for the Fig. 10 sensitivity study.
    pub fn restricted(max_range_km: f64, usable_height_fraction: f64) -> Self {
        assert!(max_range_km > 0.0);
        assert!((0.0..=1.0).contains(&usable_height_fraction) && usable_height_fraction > 0.0);
        Self {
            max_range_km,
            usable_height_fraction,
            ..Self::default()
        }
    }
}

/// A feasible microwave hop between two towers of a [`TowerRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeasibleHop {
    /// Index of the first tower (lower index).
    pub tower_a: usize,
    /// Index of the second tower (higher index).
    pub tower_b: usize,
    /// Great-circle length of the hop in kilometres.
    pub length_km: f64,
}

/// The hop-feasibility engine: bundles the terrain, clutter, tower registry
/// and configuration, and answers per-pair feasibility queries.
///
/// Construction precomputes each tower's antenna height above sea level
/// (ground elevation + usable fraction of the structure), so the all-pairs
/// sweep looks each tower's elevation up once instead of once per incident
/// pair. Per-pair assessment fuses path sampling, obstruction lookup and
/// Fresnel clearance into one early-exit loop — no profile `Vec`s — probing
/// samples middle-out, because the Earth-bulge clearance requirement peaks
/// mid-hop and most blocked hops fail there first. Feasibility verdicts are
/// bit-identical to the reference profile pipeline
/// ([`profile::obstruction_profile`] → [`fresnel::evaluate_profile`] →
/// [`fresnel::profile_is_clear`]): the per-sample arithmetic is the same and
/// "every interior sample clear" does not depend on evaluation order.
pub struct HopFeasibility<'a> {
    towers: &'a TowerRegistry,
    terrain: &'a TerrainModel,
    clutter: &'a ClutterModel,
    config: HopConfig,
    /// Per-tower antenna height above sea level, in metres.
    antenna_asl_m: Vec<f64>,
}

impl<'a> HopFeasibility<'a> {
    /// Create the engine.
    pub fn new(
        towers: &'a TowerRegistry,
        terrain: &'a TerrainModel,
        clutter: &'a ClutterModel,
        config: HopConfig,
    ) -> Self {
        assert!(config.max_range_km > 0.0);
        assert!(config.frequency_ghz > 0.0);
        assert!(config.k_factor > 0.0);
        assert!(config.usable_height_fraction > 0.0 && config.usable_height_fraction <= 1.0);
        let antenna_asl_m = towers
            .towers()
            .iter()
            .map(|t| terrain.elevation_m(t.location) + t.height_m * config.usable_height_fraction)
            .collect();
        Self {
            towers,
            terrain,
            clutter,
            config,
            antenna_asl_m,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> HopConfig {
        self.config
    }

    /// Assess a single tower pair. Returns the hop if it is feasible.
    pub fn assess_pair(&self, i: usize, j: usize) -> Option<FeasibleHop> {
        let (a, b) = (i.min(j), i.max(j));
        let ta = &self.towers.towers()[a];
        let tb = &self.towers.towers()[b];
        let length_km = geodesic::distance_km(ta.location, tb.location);
        if length_km > self.config.max_range_km || length_km < 0.1 {
            return None;
        }

        // Antenna heights above sea level: ground + usable fraction of the
        // structure (precomputed per tower).
        let h_a = self.antenna_asl_m[a];
        let h_b = self.antenna_asl_m[b];

        let n = profile::samples_for_hop(length_km);
        let sampler = geodesic::PathSampler::new(ta.location, tb.location);
        let denom = (n - 1) as f64;
        // One interior sample of the reference profile pipeline: the frac,
        // obstruction and clearance expressions are the same, so the boolean
        // is too.
        let clear = |idx: usize| -> bool {
            let frac = idx as f64 / denom;
            let p = sampler.point_at(frac);
            let obstacle_m = self.terrain.elevation_m(p) + self.clutter.clutter_m(p);
            fresnel::sample_is_clear(
                length_km,
                h_a,
                h_b,
                frac,
                obstacle_m,
                self.config.frequency_ghz,
                self.config.k_factor,
            )
        };
        // Interior samples are indices 1..=n-2 (endpoints are the antennas
        // themselves); probe them middle-out with early exit.
        let mid = (n - 1) / 2;
        let mut lo = mid as isize;
        let mut hi = mid + 1;
        while lo >= 1 || hi <= n - 2 {
            if lo >= 1 {
                if !clear(lo as usize) {
                    return None;
                }
                lo -= 1;
            }
            if hi <= n - 2 {
                if !clear(hi) {
                    return None;
                }
                hi += 1;
            }
        }
        Some(FeasibleHop {
            tower_a: a,
            tower_b: b,
            length_km,
        })
    }

    /// Enumerate every feasible hop in the registry (all tower pairs within
    /// range, filtered by line-of-sight), serially.
    pub fn all_feasible_hops(&self) -> Vec<FeasibleHop> {
        self.all_feasible_hops_with(1)
    }

    /// [`Self::all_feasible_hops`] fanned out over `workers` threads
    /// (`0` = one per core). Pairs are split into contiguous chunks and the
    /// chunk results concatenated in input order, so the hop list is
    /// identical — order included — for every worker count.
    pub fn all_feasible_hops_with(&self, workers: usize) -> Vec<FeasibleHop> {
        use rayon::prelude::*;

        let pairs = self.towers.pairs_within(self.config.max_range_km);
        let workers = if workers == 0 {
            rayon::current_num_threads()
        } else {
            workers
        };
        if workers <= 1 || pairs.len() <= 1 {
            return pairs
                .into_iter()
                .filter_map(|(i, j)| self.assess_pair(i, j))
                .collect();
        }
        let chunks = crate::links::chunk_ranges(pairs.len(), workers);
        let per_chunk: Vec<Vec<FeasibleHop>> = chunks
            .into_par_iter()
            .map(|(start, end)| {
                pairs[start..end]
                    .iter()
                    .filter_map(|&(i, j)| self.assess_pair(i, j))
                    .collect()
            })
            .collect();
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_data::towers::{Tower, TowerSource};
    use cisp_geo::GeoPoint;

    fn tower(lat: f64, lon: f64, height: f64) -> Tower {
        Tower {
            location: GeoPoint::new(lat, lon),
            height_m: height,
            source: TowerSource::RentalCompany,
        }
    }

    fn registry(towers: Vec<Tower>) -> TowerRegistry {
        TowerRegistry::from_towers(towers)
    }

    #[test]
    fn flat_terrain_tall_towers_within_range_is_feasible() {
        // Two 200 m towers 80 km apart on flat ground: clear.
        let reg = registry(vec![
            tower(40.0, -100.0, 200.0),
            tower(40.0, -99.06, 200.0), // ~80 km east
        ]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        let hop = engine.assess_pair(0, 1);
        assert!(hop.is_some());
        let hop = hop.unwrap();
        assert!((hop.length_km - 79.8).abs() < 2.0, "len {}", hop.length_km);
        assert_eq!(engine.all_feasible_hops().len(), 1);
    }

    #[test]
    fn short_towers_cannot_span_long_hops() {
        // Two 60 m towers 90 km apart: Earth bulge (~156 m at K=1.3) blocks it.
        let reg = registry(vec![tower(40.0, -100.0, 60.0), tower(40.0, -98.94, 60.0)]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert!(engine.assess_pair(0, 1).is_none());
    }

    #[test]
    fn out_of_range_pairs_are_rejected_even_with_clear_los() {
        let reg = registry(vec![
            tower(40.0, -100.0, 300.0),
            tower(40.0, -98.5, 300.0), // ~128 km
        ]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert!(engine.assess_pair(0, 1).is_none());

        // With a longer allowed range (hypothetically) it still fails LOS at
        // 128 km because the bulge (~320 m) exceeds the towers. Confirm the
        // range check is really what rejected the 100 km config by relaxing
        // range *and* raising towers.
        let reg_tall = registry(vec![tower(40.0, -100.0, 340.0), tower(40.0, -98.5, 340.0)]);
        let cfg = HopConfig {
            max_range_km: 140.0,
            ..HopConfig::default()
        };
        let engine2 = HopFeasibility::new(&reg_tall, &terrain, &clutter, cfg);
        assert!(engine2.assess_pair(0, 1).is_some());
    }

    #[test]
    fn reduced_usable_height_breaks_marginal_hops() {
        // A hop that barely clears with full height fails at 45 % height.
        let reg = registry(vec![
            tower(40.0, -100.0, 130.0),
            tower(40.0, -99.18, 130.0), // ~70 km
        ]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let full = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert!(full.assess_pair(0, 1).is_some());
        let restricted =
            HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::restricted(100.0, 0.45));
        assert!(restricted.assess_pair(0, 1).is_none());
    }

    #[test]
    fn mountain_between_towers_blocks_hop() {
        // Two tall towers on either side of the central Rockies.
        let reg = registry(vec![
            tower(39.5, -105.4, 250.0),
            tower(39.5, -106.5, 250.0), // ~95 km across the range
        ]);
        let terrain = TerrainModel::united_states(42);
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert!(engine.assess_pair(0, 1).is_none());
    }

    #[test]
    fn plains_hop_with_real_terrain_is_feasible() {
        // Kansas: gentle terrain, 150 m towers, 60 km hop.
        let reg = registry(vec![tower(38.5, -98.0, 150.0), tower(38.5, -97.32, 150.0)]);
        let terrain = TerrainModel::united_states(42);
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert!(engine.assess_pair(0, 1).is_some());
    }

    #[test]
    fn assess_pair_is_order_invariant() {
        let reg = registry(vec![tower(40.0, -100.0, 200.0), tower(40.3, -99.3, 200.0)]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        assert_eq!(engine.assess_pair(0, 1), engine.assess_pair(1, 0));
    }

    // The fused early-exit sweep must agree with the reference allocating
    // pipeline (obstruction_profile → evaluate_profile → profile_is_clear)
    // on every pair, including marginal ones over real terrain — both the
    // verdict and the reported length.
    #[test]
    fn fused_assessment_matches_reference_pipeline() {
        let mut towers = Vec::new();
        for k in 0..14 {
            let lat = 37.0 + (k % 5) as f64 * 0.55;
            let lon = -107.0 + (k % 7) as f64 * 0.7;
            let h = 80.0 + (k * 37 % 200) as f64;
            towers.push(tower(lat, lon, h));
        }
        let reg = registry(towers);
        let terrain = TerrainModel::united_states(42);
        let clutter = ClutterModel::with_seed(42);
        let config = HopConfig::default();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, config);

        let reference = |i: usize, j: usize| -> Option<FeasibleHop> {
            let (a, b) = (i.min(j), i.max(j));
            let ta = &reg.towers()[a];
            let tb = &reg.towers()[b];
            let length_km = geodesic::distance_km(ta.location, tb.location);
            if length_km > config.max_range_km || length_km < 0.1 {
                return None;
            }
            let h_a = terrain.elevation_m(ta.location) + ta.height_m;
            let h_b = terrain.elevation_m(tb.location) + tb.height_m;
            let n = profile::samples_for_hop(length_km);
            let obstacles =
                profile::obstruction_profile(&terrain, &clutter, ta.location, tb.location, n);
            let samples = fresnel::evaluate_profile(
                length_km,
                h_a,
                h_b,
                &obstacles,
                config.frequency_ghz,
                config.k_factor,
            );
            fresnel::profile_is_clear(&samples).then_some(FeasibleHop {
                tower_a: a,
                tower_b: b,
                length_km,
            })
        };

        let mut assessed = 0;
        for i in 0..reg.len() {
            for j in i + 1..reg.len() {
                assert_eq!(engine.assess_pair(i, j), reference(i, j), "pair {i},{j}");
                assessed += 1;
            }
        }
        assert!(assessed > 50);
    }

    // The hop list must be identical — order included — for every worker
    // count (contiguous chunks merged in input order).
    #[test]
    fn parallel_sweep_is_worker_count_invariant() {
        let mut towers = Vec::new();
        for k in 0..20 {
            towers.push(tower(
                39.0 + (k % 4) as f64 * 0.5,
                -100.0 + (k % 5) as f64 * 0.6,
                120.0 + (k * 13 % 150) as f64,
            ));
        }
        let reg = registry(towers);
        let terrain = TerrainModel::united_states(7);
        let clutter = ClutterModel::none();
        let engine = HopFeasibility::new(&reg, &terrain, &clutter, HopConfig::default());
        let serial = engine.all_feasible_hops();
        assert!(!serial.is_empty());
        for workers in [0, 2, 3, 7] {
            assert_eq!(engine.all_feasible_hops_with(workers), serial);
        }
    }

    #[test]
    #[should_panic]
    fn zero_usable_height_is_rejected() {
        let reg = registry(vec![tower(40.0, -100.0, 100.0)]);
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        HopFeasibility::new(
            &reg,
            &terrain,
            &clutter,
            HopConfig {
                usable_height_fraction: 0.0,
                ..HopConfig::default()
            },
        );
    }
}

//! End-to-end deployment scenarios: the full design pipeline wired together.
//!
//! A [`Scenario`] bundles everything §4 and §6.2 of the paper need: the
//! population centers of a region, a synthetic terrain, clutter, tower
//! registry and fiber network, the feasible-hop assessment, the candidate
//! city-to-city links, and the population-product traffic matrix. From a
//! built scenario, [`Scenario::design`] runs the cISP heuristic at a tower
//! budget and [`Scenario::provision`] augments capacity and prices the
//! result.
//!
//! The heavyweight paper-scale configurations ([`ScenarioConfig::us_paper`],
//! [`ScenarioConfig::europe_paper`]) are used by the benchmark binaries;
//! [`ScenarioConfig::tiny_test`] is a miniature (a dozen south-central US
//! cities, flat terrain) that exercises the identical code path in
//! milliseconds for tests and doctests.

use cisp_data::{
    cities::{europe_population_centers, us_population_centers, City, Region},
    fiber::{FiberConfig, FiberNetwork},
    towers::{TowerRegistry, TowerRegistryConfig},
};
use cisp_geo::GeoPoint;
use cisp_graph::DistMatrix;
use cisp_terrain::{clutter::ClutterModel, TerrainModel};
use serde::{Deserialize, Serialize};

use crate::augment::{augment_for_throughput, AugmentConfig, Augmentation};
use crate::cost::{CostBreakdown, CostModel};
use crate::design::{DesignConfig, DesignInput, DesignOutcome, Designer};
use crate::hops::{HopConfig, HopFeasibility};
use crate::links::{AttachmentReport, LinkBuilder, LinkBuilderConfig, PoolPruneStats};
use crate::topology::HybridTopology;

use std::time::Instant;

/// Which terrain model a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerrainKind {
    /// The region's synthetic terrain (mountains and all).
    Regional,
    /// Flat terrain (tests and controlled experiments).
    Flat,
}

/// Full configuration of a deployment scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed for all synthetic datasets.
    pub seed: u64,
    /// Region to deploy in.
    pub region: Region,
    /// Keep only the `max_sites` most populous centers (None = all).
    pub max_sites: Option<usize>,
    /// Restrict sites to a bounding box `(min_lat, max_lat, min_lon, max_lon)`
    /// (None = whole region). Used by the miniature test scenario.
    pub site_bbox: Option<(f64, f64, f64, f64)>,
    /// Terrain choice.
    pub terrain: TerrainKind,
    /// Tower-registry generation parameters.
    pub towers: TowerRegistryConfig,
    /// Hop feasibility parameters.
    pub hops: HopConfig,
    /// Fiber synthesis parameters.
    pub fiber: FiberConfig,
    /// Site-to-tower attachment parameters.
    pub links: LinkBuilderConfig,
    /// Design heuristic parameters.
    pub design: DesignConfig,
    /// Generate candidates with the fiber-oracle-bounded pruned path
    /// ([`LinkBuilder::pruned_candidate_links`], the default) instead of
    /// the exhaustive one. Either way the design input holds exactly the
    /// links that survive the oracle — the flag exists so benchmarks and
    /// parity tests can pay for (and compare against) the unpruned pool.
    #[serde(default = "default_true")]
    pub prune_candidates: bool,
    /// Worker threads for the pool build (hop sweep + per-site searches):
    /// `0` = one per core, `1` = serial. The pool is identical for every
    /// value — sites are sharded into contiguous chunks merged in order —
    /// so this only trades wall-clock for cores.
    #[serde(default)]
    pub pool_workers: usize,
}

// Referenced by the `serde(default)` attribute above; the offline serde
// shim's no-op derive never expands that reference, hence the allow.
#[allow(dead_code)]
fn default_true() -> bool {
    true
}

impl ScenarioConfig {
    /// The paper's US scenario: all population centers, regional terrain,
    /// full-size tower registry.
    pub fn us_paper(seed: u64) -> Self {
        Self {
            seed,
            region: Region::UnitedStates,
            max_sites: None,
            site_bbox: None,
            terrain: TerrainKind::Regional,
            towers: TowerRegistryConfig::default(),
            hops: HopConfig::paper_baseline(),
            fiber: FiberConfig::default(),
            links: LinkBuilderConfig::default(),
            design: DesignConfig::default(),
            prune_candidates: true,
            pool_workers: 0,
        }
    }

    /// The paper's European scenario (§6.2).
    pub fn europe_paper(seed: u64) -> Self {
        Self {
            region: Region::Europe,
            ..Self::us_paper(seed)
        }
    }

    /// A miniature scenario for tests and doctests: the south-central US
    /// (Texas and neighbours), flat terrain, a small tower registry.
    pub fn tiny_test() -> Self {
        Self {
            seed: 7,
            region: Region::UnitedStates,
            max_sites: Some(12),
            site_bbox: Some((27.0, 37.0, -103.0, -89.0)),
            terrain: TerrainKind::Flat,
            towers: TowerRegistryConfig {
                raw_count: 1_500,
                ..TowerRegistryConfig::default()
            },
            hops: HopConfig::paper_baseline(),
            fiber: FiberConfig::default(),
            links: LinkBuilderConfig::default(),
            design: DesignConfig::default(),
            prune_candidates: true,
            pool_workers: 0,
        }
    }

    /// A reduced US scenario with the `n` most populous centers — the knob
    /// used by the Fig. 2 scaling experiment.
    pub fn us_subset(seed: u64, n: usize) -> Self {
        Self {
            max_sites: Some(n),
            ..Self::us_paper(seed)
        }
    }
}

/// Wall-clock split of one [`Scenario::build`] candidate-pool build.
///
/// `search_ms`/`extract_ms` are summed across workers, so with
/// `pool_workers > 1` they can exceed their share of the elapsed
/// `total_ms`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolBuildProfile {
    /// Hop feasibility sweep (terrain/Fresnel clearance over all pairs).
    pub hop_sweep_ms: f64,
    /// Tower+site graph assembly, site attachment and CSR construction.
    pub attach_ms: f64,
    /// Per-site shortest-path searches.
    pub search_ms: f64,
    /// Path extraction and link assembly.
    pub extract_ms: f64,
    /// Elapsed wall-clock of the whole pool build (sweep through links).
    pub total_ms: f64,
}

/// A fully built scenario, ready for design runs.
pub struct Scenario {
    config: ScenarioConfig,
    cities: Vec<City>,
    towers: TowerRegistry,
    fiber: FiberNetwork,
    input: DesignInput,
    pool_stats: Option<PoolPruneStats>,
    pool_profile: PoolBuildProfile,
    attachment: AttachmentReport,
}

impl Scenario {
    /// Build the scenario: synthesise datasets, assess hop feasibility and
    /// construct every candidate link. This is the expensive step; design
    /// runs on the built scenario are comparatively cheap.
    pub fn build(config: &ScenarioConfig) -> Self {
        let mut cities = match config.region {
            Region::UnitedStates => us_population_centers(),
            Region::Europe => europe_population_centers(),
        };
        if let Some((min_lat, max_lat, min_lon, max_lon)) = config.site_bbox {
            cities.retain(|c| {
                c.location.lat_deg >= min_lat
                    && c.location.lat_deg <= max_lat
                    && c.location.lon_deg >= min_lon
                    && c.location.lon_deg <= max_lon
            });
        }
        if let Some(max) = config.max_sites {
            cities.truncate(max);
        }
        assert!(cities.len() >= 2, "scenario needs at least two sites");

        let bbox = config
            .site_bbox
            .unwrap_or_else(|| config.region.bounding_box());
        let terrain = match (config.terrain, config.region) {
            (TerrainKind::Flat, _) => TerrainModel::flat(),
            (TerrainKind::Regional, Region::UnitedStates) => {
                TerrainModel::united_states(config.seed)
            }
            (TerrainKind::Regional, Region::Europe) => TerrainModel::europe(config.seed),
        };
        let clutter = match config.terrain {
            TerrainKind::Flat => ClutterModel::none(),
            TerrainKind::Regional => ClutterModel::with_seed(config.seed),
        };

        let towers = TowerRegistry::synthesize(config.seed, bbox, &cities, &config.towers);
        let fiber = FiberNetwork::synthesize(config.seed, &cities, &config.fiber);

        let sites: Vec<GeoPoint> = cities.iter().map(|c| c.location).collect();
        let build_start = Instant::now();
        let feasibility = HopFeasibility::new(&towers, &terrain, &clutter, config.hops);
        let hops = feasibility.all_feasible_hops_with(config.pool_workers);
        let hop_sweep_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let attach_start = Instant::now();
        let builder = LinkBuilder::new(&sites, &towers, &hops, config.links);
        let attach_ms = attach_start.elapsed().as_secs_f64() * 1e3;
        let attachment = builder.attachment_report().clone();

        let traffic = population_product_traffic(&cities);
        let fiber_km = fiber.latency_equivalent_matrix();
        let (candidates, pool_stats, timings) = if config.prune_candidates {
            let (links, stats, timings) =
                builder.pruned_candidate_links_profiled(&fiber_km, config.pool_workers);
            (links, Some(stats), timings)
        } else {
            let (links, timings) = builder.all_candidate_links_profiled(config.pool_workers);
            (links, None, timings)
        };
        let pool_profile = PoolBuildProfile {
            hop_sweep_ms,
            attach_ms,
            search_ms: timings.search_ms,
            extract_ms: timings.extract_ms,
            total_ms: build_start.elapsed().as_secs_f64() * 1e3,
        };

        let input = DesignInput {
            sites,
            traffic,
            fiber_km,
            candidates,
        };

        Self {
            config: config.clone(),
            cities,
            towers,
            fiber,
            input,
            pool_stats,
            pool_profile,
            attachment,
        }
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The population centers (sites) of the scenario.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// The synthetic tower registry.
    pub fn towers(&self) -> &TowerRegistry {
        &self.towers
    }

    /// The synthetic fiber network.
    pub fn fiber(&self) -> &FiberNetwork {
        &self.fiber
    }

    /// The assembled design input (sites, traffic, fiber, candidates).
    pub fn design_input(&self) -> &DesignInput {
        &self.input
    }

    /// Candidate-generation pruning counters, when the scenario was built
    /// with `prune_candidates` (None on the exhaustive path).
    pub fn pool_stats(&self) -> Option<PoolPruneStats> {
        self.pool_stats
    }

    /// Wall-clock stage split of the candidate-pool build.
    pub fn pool_profile(&self) -> PoolBuildProfile {
        self.pool_profile
    }

    /// Per-site tower-attachment report from the pool build; sites in
    /// [`AttachmentReport::zero_attached`] can never host a microwave link.
    pub fn attachment_report(&self) -> &AttachmentReport {
        &self.attachment
    }

    /// Run the cISP design heuristic at a tower budget (on the incremental
    /// delta-scoring engine unless `config.design.engine` says otherwise).
    pub fn design(&self, budget_towers: f64) -> DesignOutcome {
        Designer::with_config(&self.input, self.config.design).cisp(budget_towers)
    }

    /// Run the plain greedy designer (used for budget-sweep curves, which
    /// fall out of the greedy history in a single run).
    pub fn design_greedy(&self, budget_towers: f64) -> DesignOutcome {
        Designer::with_config(&self.input, self.config.design).greedy(budget_towers)
    }

    /// Re-ground a designed topology in the scenario's physical conduit
    /// graph: the same sites, traffic and selected MW links (added in
    /// selection order, exactly as the designer built them), but with the
    /// fiber layer held as the conduit segment list + per-pair conduit
    /// routes instead of a pre-flattened matrix. The effective distance
    /// matrix is bit-identical to `outcome.topology`'s — the design engine
    /// sees no difference — while the evaluation lowering gains
    /// O(segments) fiber links, shared-conduit queueing and conduit-cut
    /// scenarios.
    pub fn conduit_backed_topology(&self, outcome: &DesignOutcome) -> HybridTopology {
        let mut topo = HybridTopology::with_conduits(
            self.input.sites.clone(),
            self.input.traffic.clone(),
            &self.fiber,
        );
        for &idx in &outcome.selected {
            topo.add_mw_link(self.input.candidates[idx].clone());
        }
        topo
    }

    /// Provision a designed topology for an aggregate throughput and price it.
    pub fn provision(
        &self,
        outcome: &DesignOutcome,
        aggregate_gbps: f64,
        cost_model: &CostModel,
    ) -> ProvisionedNetwork {
        let augmentation =
            augment_for_throughput(&outcome.topology, aggregate_gbps, &AugmentConfig::default());
        let inventory = augmentation.inventory(&outcome.topology);
        let breakdown = cost_model.breakdown(&inventory);
        let cost_per_gb = cost_model.cost_per_gb(&inventory, aggregate_gbps);
        ProvisionedNetwork {
            augmentation,
            breakdown,
            cost_per_gb,
        }
    }
}

/// The provisioned (capacity-augmented, priced) network.
#[derive(Debug, Clone)]
pub struct ProvisionedNetwork {
    /// Per-link provisioning and routing outcome.
    pub augmentation: Augmentation,
    /// Cost breakdown over the amortisation horizon.
    pub breakdown: CostBreakdown,
    /// Amortised cost per gigabyte.
    pub cost_per_gb: f64,
}

/// The paper's default traffic model: `h_ij` proportional to the product of
/// the populations of the two cities (§4).
pub fn population_product_traffic(cities: &[City]) -> DistMatrix {
    let n = cities.len();
    // Normalise by the maximum product so weights are in (0, 1].
    let mut matrix = DistMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else {
            cities[i].population as f64 * cities[j].population as f64
        }
    });
    let max_product = matrix.max_value();
    if max_product > 0.0 {
        matrix.map_in_place(|v| v / max_product);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::build(&ScenarioConfig::tiny_test())
    }

    #[test]
    fn tiny_scenario_builds_candidates() {
        let s = tiny();
        assert!(s.cities().len() >= 6, "got {} cities", s.cities().len());
        assert!(
            !s.design_input().candidates.is_empty(),
            "no candidate MW links were found"
        );
        // Candidate MW links should be close to geodesic on flat terrain.
        for link in &s.design_input().candidates {
            let geo = cisp_geo::geodesic::distance_km(
                s.design_input().sites[link.site_a],
                s.design_input().sites[link.site_b],
            );
            assert!(link.mw_length_km >= geo - 1e-6);
            assert!(link.stretch_over(geo) < 1.6, "very indirect candidate");
        }
    }

    #[test]
    fn design_improves_with_budget() {
        let s = tiny();
        let none = s.design(0.0);
        let some = s.design(150.0);
        let more = s.design(400.0);
        assert!(some.mean_stretch <= none.mean_stretch + 1e-9);
        assert!(more.mean_stretch <= some.mean_stretch + 1e-9);
        assert!(more.mean_stretch >= 1.0);
    }

    #[test]
    fn provisioning_prices_the_network() {
        let s = tiny();
        let outcome = s.design(300.0);
        let cost_model = CostModel::default();
        let provisioned = s.provision(&outcome, 20.0, &cost_model);
        assert!(provisioned.cost_per_gb > 0.0);
        assert!(provisioned.breakdown.total_usd() > 0.0);
        assert_eq!(
            provisioned.augmentation.links.len(),
            outcome.topology.mw_links().len()
        );
        // Higher aggregate throughput lowers cost per GB (same design).
        let cheaper = s.provision(&outcome, 100.0, &cost_model);
        assert!(cheaper.cost_per_gb < provisioned.cost_per_gb);
    }

    #[test]
    fn population_product_traffic_is_symmetric_normalised() {
        let s = tiny();
        let t = population_product_traffic(s.cities());
        let n = s.cities().len();
        for i in 0..n {
            assert_eq!(t[i][i], 0.0);
            for j in 0..n {
                assert!((t[i][j] - t[j][i]).abs() < 1e-12);
                assert!(t[i][j] <= 1.0 + 1e-12);
            }
        }
        // The two most populous cities share the maximum weight 1.0.
        let mut max = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                max = max.max(t[i][j]);
            }
        }
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_build_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(
            a.design_input().candidates.len(),
            b.design_input().candidates.len()
        );
        assert_eq!(a.towers().len(), b.towers().len());
        let da = a.design(200.0);
        let db = b.design(200.0);
        assert_eq!(da.selected, db.selected);
    }

    #[test]
    fn scenario_designs_identically_on_both_scoring_engines() {
        use crate::design::ScoringEngine;
        let mut full_config = ScenarioConfig::tiny_test();
        full_config.design.engine = ScoringEngine::FullRescore;
        let incremental = tiny().design(250.0);
        let full = Scenario::build(&full_config).design(250.0);
        assert_eq!(incremental.selected, full.selected);
        assert!((incremental.mean_stretch - full.mean_stretch).abs() == 0.0);
    }

    #[test]
    fn conduit_backed_topology_is_bit_identical_to_the_designed_one() {
        let s = tiny();
        let outcome = s.design(250.0);
        let conduit = s.conduit_backed_topology(&outcome);
        assert!(conduit.conduits().is_some());
        assert_eq!(
            conduit.conduits().unwrap().num_segments(),
            s.fiber().links().len()
        );
        assert_eq!(conduit.mw_links().len(), outcome.topology.mw_links().len());
        // The derived fiber cache and the resulting effective matrix match
        // the matrix-backed designed topology bit for bit — the design
        // engine and every stretch statistic see no difference.
        assert_eq!(conduit.fiber_matrix(), outcome.topology.fiber_matrix());
        assert_eq!(
            conduit.effective_matrix(),
            outcome.topology.effective_matrix()
        );
        assert_eq!(conduit.mean_stretch(), outcome.mean_stretch);
    }

    #[test]
    fn pruned_and_unpruned_scenarios_design_identically() {
        let pruned = tiny();
        let mut config = ScenarioConfig::tiny_test();
        config.prune_candidates = false;
        let unpruned = Scenario::build(&config);
        // The pruned pool is exactly the oracle-surviving subset of the
        // exhaustive pool, link for link.
        let useful = unpruned.design_input().useful_candidates();
        assert_eq!(pruned.design_input().candidates.len(), useful.len());
        for (p, &u) in pruned.design_input().candidates.iter().zip(&useful) {
            assert_eq!(p, &unpruned.design_input().candidates[u]);
        }
        assert!(pruned.pool_stats().is_some());
        assert!(unpruned.pool_stats().is_none());
        // Candidate indices differ between the two pools, so compare the
        // selected links as physical (site_a, site_b, length) tuples.
        let key = |s: &Scenario, o: &DesignOutcome| -> Vec<(usize, usize, f64)> {
            o.selected
                .iter()
                .map(|&i| {
                    let l = &s.design_input().candidates[i];
                    (l.site_a, l.site_b, l.mw_length_km)
                })
                .collect()
        };
        let a = pruned.design(250.0);
        let b = unpruned.design(250.0);
        assert_eq!(key(&pruned, &a), key(&unpruned, &b));
        assert!((a.mean_stretch - b.mean_stretch).abs() == 0.0);
    }

    #[test]
    fn pool_profile_and_attachment_report_are_populated() {
        let s = tiny();
        let profile = s.pool_profile();
        assert!(profile.total_ms > 0.0);
        assert!(profile.hop_sweep_ms >= 0.0 && profile.attach_ms >= 0.0);
        assert!(profile.search_ms >= 0.0 && profile.extract_ms >= 0.0);
        assert!(profile.total_ms >= profile.hop_sweep_ms);
        let report = s.attachment_report();
        assert_eq!(report.attached_per_site.len(), s.cities().len());
        // The tiny scenario's registry seeds towers near every city, so no
        // site should be stranded.
        assert!(report.zero_attached().is_empty());
    }

    #[test]
    fn pool_workers_do_not_change_the_pool() {
        let auto = tiny(); // pool_workers = 0 (one per core)
        let mut serial_config = ScenarioConfig::tiny_test();
        serial_config.pool_workers = 1;
        let serial = Scenario::build(&serial_config);
        assert_eq!(
            auto.design_input().candidates,
            serial.design_input().candidates
        );
        assert_eq!(auto.pool_stats(), serial.pool_stats());
    }

    #[test]
    fn us_subset_config_limits_sites() {
        let config = ScenarioConfig::us_subset(3, 5);
        let s = Scenario::build(&config);
        assert_eq!(s.cities().len(), 5);
    }
}

//! Synthetic long-haul fiber conduit network.
//!
//! The paper computes fiber latencies as shortest paths over the InterTubes
//! dataset of US long-haul conduits, finding that even latency-optimal fiber
//! paths average 1.93× the c-latency (§1), i.e. about 1.29× geodesic route
//! length on top of the 1.5× propagation-speed penalty. InterTubes cannot be
//! redistributed here, so this module synthesises a conduit graph with the
//! same two properties the design pipeline depends on:
//!
//! * conduits follow a road-like neighbour graph between population centers
//!   (each city is connected to a handful of its nearest neighbours), and
//! * individual conduit segments are 1.15–1.45× longer than the geodesic
//!   between their endpoints, so that end-to-end shortest fiber routes come
//!   out ≈1.2–1.4× circuitous, matching the measured InterTubes behaviour.
//!
//! For Europe the paper lacks conduit data and simply assumes the same
//! inflation as in the US (§6.2); [`FiberNetwork::synthesize`] works for any
//! city set, so we model Europe the same way.

use cisp_geo::{geodesic, units::FIBER_LATENCY_FACTOR, GeoPoint};
use cisp_graph::{dijkstra, DistMatrix, Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::City;
use crate::rng::seeded_rng;

/// A fiber conduit segment between two cities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiberLink {
    /// Index of one endpoint city.
    pub a: usize,
    /// Index of the other endpoint city.
    pub b: usize,
    /// Physical route length of the conduit, in kilometres (≥ geodesic).
    pub route_km: f64,
}

/// Configuration of the synthetic conduit generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FiberConfig {
    /// Number of nearest neighbours each city is connected to.
    pub neighbors_per_city: usize,
    /// Minimum per-segment circuitousness factor (route / geodesic).
    pub min_circuitousness: f64,
    /// Maximum per-segment circuitousness factor.
    pub max_circuitousness: f64,
}

impl Default for FiberConfig {
    fn default() -> Self {
        Self {
            neighbors_per_city: 4,
            min_circuitousness: 1.15,
            max_circuitousness: 1.45,
        }
    }
}

/// The synthetic fiber conduit network over a set of sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberNetwork {
    sites: Vec<GeoPoint>,
    links: Vec<FiberLink>,
}

impl FiberNetwork {
    /// Synthesise a conduit network over the given cities.
    pub fn synthesize(seed: u64, cities: &[City], config: &FiberConfig) -> Self {
        assert!(cities.len() >= 2, "need at least two cities");
        assert!(config.neighbors_per_city >= 1);
        assert!(config.min_circuitousness >= 1.0);
        assert!(config.max_circuitousness >= config.min_circuitousness);

        let sites: Vec<GeoPoint> = cities.iter().map(|c| c.location).collect();
        let mut rng = seeded_rng(seed, "fiber");
        let n = sites.len();
        let mut links: Vec<FiberLink> = Vec::new();
        let mut have: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();

        let add_link = |a: usize,
                        b: usize,
                        links: &mut Vec<FiberLink>,
                        have: &mut std::collections::HashSet<(usize, usize)>,
                        rng: &mut rand::rngs::StdRng| {
            let key = (a.min(b), a.max(b));
            if a != b && have.insert(key) {
                let geo = geodesic::distance_km(sites[a], sites[b]);
                let factor = config.min_circuitousness
                    + rng.gen::<f64>() * (config.max_circuitousness - config.min_circuitousness);
                links.push(FiberLink {
                    a: key.0,
                    b: key.1,
                    route_km: geo * factor,
                });
            }
        };

        // k-nearest-neighbour edges.
        for i in 0..n {
            let mut by_distance: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (geodesic::distance_km(sites[i], sites[j]), j))
                .collect();
            by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            for &(_, j) in by_distance.iter().take(config.neighbors_per_city) {
                add_link(i, j, &mut links, &mut have, &mut rng);
            }
        }

        // Connectivity fallback: chain the cities in longitude order, which
        // guarantees a connected conduit graph even for sparse configurations.
        let mut by_lon: Vec<usize> = (0..n).collect();
        by_lon.sort_by(|&a, &b| {
            sites[a]
                .lon_deg
                .partial_cmp(&sites[b].lon_deg)
                .unwrap()
                .then(a.cmp(&b))
        });
        for w in by_lon.windows(2) {
            add_link(w[0], w[1], &mut links, &mut have, &mut rng);
        }

        Self { sites, links }
    }

    /// Build a network from explicit parts (used in tests).
    pub fn from_parts(sites: Vec<GeoPoint>, links: Vec<FiberLink>) -> Self {
        for l in &links {
            assert!(l.a < sites.len() && l.b < sites.len());
        }
        Self { sites, links }
    }

    /// Site locations, in the order used by link indices.
    pub fn sites(&self) -> &[GeoPoint] {
        &self.sites
    }

    /// Conduit segments.
    pub fn links(&self) -> &[FiberLink] {
        &self.links
    }

    /// Graph with conduit route lengths (km) as edge weights.
    pub fn route_graph(&self) -> Graph {
        let mut g = Graph::new(self.sites.len());
        for l in &self.links {
            g.add_undirected_edge(l.a, l.b, l.route_km);
        }
        g
    }

    /// Shortest fiber *route length* (km, physical conduit distance) between
    /// two sites, if connected.
    pub fn shortest_route_km(&self, from: usize, to: usize) -> Option<f64> {
        dijkstra::shortest_path(&self.route_graph(), from, to).map(|p| p.cost)
    }

    /// All-pairs shortest fiber route lengths, as a flat matrix in
    /// kilometres (`f64::INFINITY` where unconnected).
    pub fn route_distance_matrix(&self) -> DistMatrix {
        let g = self.route_graph();
        let n = self.sites.len();
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            data.extend(dijkstra::shortest_path_costs(&g, i));
        }
        DistMatrix::from_flat(n, data)
    }

    /// All-pairs *latency-equivalent* fiber distances: physical route length
    /// times the 1.5× fiber propagation factor. This is the `o_ij` input of
    /// the paper's design formulation (§3.2).
    pub fn latency_equivalent_matrix(&self) -> DistMatrix {
        let mut matrix = self.route_distance_matrix();
        matrix.map_in_place(|d| d * FIBER_LATENCY_FACTOR);
        matrix
    }

    /// Mean stretch of shortest fiber paths relative to c-latency across all
    /// connected pairs (the paper's InterTubes number is 1.93×).
    pub fn mean_latency_stretch(&self) -> f64 {
        let matrix = self.route_distance_matrix();
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..self.sites.len() {
            for j in (i + 1)..self.sites.len() {
                let geo = geodesic::distance_km(self.sites[i], self.sites[j]);
                if geo < 1.0 || !matrix[i][j].is_finite() {
                    continue;
                }
                total += matrix[i][j] * FIBER_LATENCY_FACTOR / geo;
                count += 1;
            }
        }
        if count == 0 {
            f64::NAN
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::us_population_centers;

    fn us_network() -> FiberNetwork {
        FiberNetwork::synthesize(11, &us_population_centers(), &FiberConfig::default())
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = us_network();
        let b = us_network();
        assert_eq!(a.links().len(), b.links().len());
        assert_eq!(a.links()[0], b.links()[0]);
    }

    #[test]
    fn network_is_connected() {
        let net = us_network();
        let matrix = net.route_distance_matrix();
        for &d in matrix.as_slice() {
            assert!(d.is_finite(), "fiber network must be connected");
        }
    }

    #[test]
    fn segment_lengths_exceed_geodesics() {
        let net = us_network();
        for l in net.links() {
            let geo = geodesic::distance_km(net.sites()[l.a], net.sites()[l.b]);
            assert!(l.route_km >= geo * 1.1, "conduit suspiciously straight");
            assert!(l.route_km <= geo * 1.5 + 1e-9, "conduit too circuitous");
        }
    }

    #[test]
    fn mean_latency_stretch_matches_intertubes_ballpark() {
        let net = us_network();
        let stretch = net.mean_latency_stretch();
        // Paper: 1.93×. The synthetic network should land in the same band.
        assert!(
            stretch > 1.7 && stretch < 2.3,
            "mean fiber stretch = {stretch}"
        );
    }

    #[test]
    fn latency_matrix_is_1_5x_route_matrix() {
        let net = us_network();
        let routes = net.route_distance_matrix();
        let latencies = net.latency_equivalent_matrix();
        assert!((latencies[0][1] - routes[0][1] * 1.5).abs() < 1e-9);
    }

    #[test]
    fn shortest_route_is_symmetric() {
        let net = us_network();
        let a = net.shortest_route_km(0, 10).unwrap();
        let b = net.shortest_route_km(10, 0).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_shortest_routes() {
        let net = us_network();
        let m = net.route_distance_matrix();
        // Spot-check a handful of triples.
        for &(i, j, k) in &[(0, 5, 10), (3, 20, 40), (1, 2, 3), (7, 30, 60)] {
            assert!(m[i][k] <= m[i][j] + m[j][k] + 1e-6);
        }
    }

    #[test]
    fn from_parts_validates_indices() {
        let sites = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)];
        let net = FiberNetwork::from_parts(
            sites,
            vec![FiberLink {
                a: 0,
                b: 1,
                route_km: 200.0,
            }],
        );
        assert_eq!(net.shortest_route_km(0, 1), Some(200.0));
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_indices() {
        FiberNetwork::from_parts(
            vec![GeoPoint::new(0.0, 0.0)],
            vec![FiberLink {
                a: 0,
                b: 3,
                route_km: 1.0,
            }],
        );
    }

    #[test]
    fn europe_network_also_connected() {
        let cities = crate::cities::europe_population_centers();
        let net = FiberNetwork::synthesize(5, &cities, &FiberConfig::default());
        let m = net.route_distance_matrix();
        assert!(m.as_slice().iter().all(|d| d.is_finite()));
    }
}

//! Synthetic long-haul fiber conduit network.
//!
//! The paper computes fiber latencies as shortest paths over the InterTubes
//! dataset of US long-haul conduits, finding that even latency-optimal fiber
//! paths average 1.93× the c-latency (§1), i.e. about 1.29× geodesic route
//! length on top of the 1.5× propagation-speed penalty. InterTubes cannot be
//! redistributed here, so this module synthesises a conduit graph with the
//! same two properties the design pipeline depends on:
//!
//! * conduits follow a road-like neighbour graph between population centers
//!   (each city is connected to a handful of its nearest neighbours), and
//! * individual conduit segments are 1.15–1.45× longer than the geodesic
//!   between their endpoints, so that end-to-end shortest fiber routes come
//!   out ≈1.2–1.4× circuitous, matching the measured InterTubes behaviour.
//!
//! For Europe the paper lacks conduit data and simply assumes the same
//! inflation as in the US (§6.2); [`FiberNetwork::synthesize`] works for any
//! city set, so we model Europe the same way.

use cisp_geo::{geodesic, units::FIBER_LATENCY_FACTOR, GeoPoint};
use cisp_graph::{dijkstra, pair_count, CsrGraph, DistMatrix, Graph, PathStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::City;
use crate::rng::seeded_rng;

/// A fiber conduit segment between two cities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiberLink {
    /// Index of one endpoint city.
    pub a: usize,
    /// Index of the other endpoint city.
    pub b: usize,
    /// Physical route length of the conduit, in kilometres (≥ geodesic).
    pub route_km: f64,
}

/// Configuration of the synthetic conduit generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FiberConfig {
    /// Number of nearest neighbours each city is connected to.
    pub neighbors_per_city: usize,
    /// Minimum per-segment circuitousness factor (route / geodesic).
    pub min_circuitousness: f64,
    /// Maximum per-segment circuitousness factor.
    pub max_circuitousness: f64,
}

impl Default for FiberConfig {
    fn default() -> Self {
        Self {
            neighbors_per_city: 4,
            min_circuitousness: 1.15,
            max_circuitousness: 1.45,
        }
    }
}

/// All-pairs shortest conduit routes: the route-length matrix plus the
/// conduit-hop path realising each pair's shortest route.
///
/// Paths are indexed by [`pair_index`] over unordered site pairs `(i, j)`,
/// `i < j`, and stored in the `i → j` direction as *directed conduit edge
/// ids*: edge `2·s` traverses segment `s` from `a` to `b`, edge `2·s + 1`
/// traverses it from `b` to `a` (the id convention of
/// [`FiberNetwork::route_csr`]). Unconnected pairs store an empty path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConduitRoutes {
    /// Shortest conduit route length per pair (km, `INFINITY` where
    /// unconnected, zero diagonal).
    pub route_km: DistMatrix,
    /// Directed conduit-edge path per unordered pair, [`pair_index`] order.
    pub paths: PathStore,
}

/// The synthetic fiber conduit network over a set of sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberNetwork {
    sites: Vec<GeoPoint>,
    links: Vec<FiberLink>,
}

impl FiberNetwork {
    /// Synthesise a conduit network over the given cities.
    pub fn synthesize(seed: u64, cities: &[City], config: &FiberConfig) -> Self {
        assert!(cities.len() >= 2, "need at least two cities");
        assert!(config.neighbors_per_city >= 1);
        assert!(config.min_circuitousness >= 1.0);
        assert!(config.max_circuitousness >= config.min_circuitousness);

        let sites: Vec<GeoPoint> = cities.iter().map(|c| c.location).collect();
        let mut rng = seeded_rng(seed, "fiber");
        let n = sites.len();
        let mut links: Vec<FiberLink> = Vec::new();
        let mut have: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();

        let add_link = |a: usize,
                        b: usize,
                        links: &mut Vec<FiberLink>,
                        have: &mut std::collections::HashSet<(usize, usize)>,
                        rng: &mut rand::rngs::StdRng| {
            let key = (a.min(b), a.max(b));
            if a != b && have.insert(key) {
                let geo = geodesic::distance_km(sites[a], sites[b]);
                let factor = config.min_circuitousness
                    + rng.gen::<f64>() * (config.max_circuitousness - config.min_circuitousness);
                links.push(FiberLink {
                    a: key.0,
                    b: key.1,
                    route_km: geo * factor,
                });
            }
        };

        // k-nearest-neighbour edges.
        for i in 0..n {
            let mut by_distance: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (geodesic::distance_km(sites[i], sites[j]), j))
                .collect();
            by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            for &(_, j) in by_distance.iter().take(config.neighbors_per_city) {
                add_link(i, j, &mut links, &mut have, &mut rng);
            }
        }

        // Connectivity fallback: chain the cities in longitude order, which
        // guarantees a connected conduit graph even for sparse configurations.
        let mut by_lon: Vec<usize> = (0..n).collect();
        by_lon.sort_by(|&a, &b| {
            sites[a]
                .lon_deg
                .partial_cmp(&sites[b].lon_deg)
                .unwrap()
                .then(a.cmp(&b))
        });
        for w in by_lon.windows(2) {
            add_link(w[0], w[1], &mut links, &mut have, &mut rng);
        }

        Self { sites, links }
    }

    /// Build a network from explicit parts (used in tests).
    pub fn from_parts(sites: Vec<GeoPoint>, links: Vec<FiberLink>) -> Self {
        for l in &links {
            assert!(l.a < sites.len() && l.b < sites.len());
        }
        Self { sites, links }
    }

    /// Site locations, in the order used by link indices.
    pub fn sites(&self) -> &[GeoPoint] {
        &self.sites
    }

    /// Conduit segments.
    pub fn links(&self) -> &[FiberLink] {
        &self.links
    }

    /// Graph with conduit route lengths (km) as edge weights.
    pub fn route_graph(&self) -> Graph {
        let mut g = Graph::new(self.sites.len());
        for l in &self.links {
            g.add_undirected_edge(l.a, l.b, l.route_km);
        }
        g
    }

    /// The conduit graph packed into flat CSR form, with the directed-edge
    /// id convention the stored conduit paths use: segment `s` contributes
    /// edge `2·s` (`a → b`) and edge `2·s + 1` (`b → a`), both weighted by
    /// the segment's physical route length.
    pub fn route_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(
            self.sites.len(),
            self.links
                .iter()
                .flat_map(|l| [(l.a, l.b, l.route_km), (l.b, l.a, l.route_km)]),
        )
    }

    /// Shortest fiber *route length* (km, physical conduit distance) between
    /// two sites, if connected.
    pub fn shortest_route_km(&self, from: usize, to: usize) -> Option<f64> {
        dijkstra::shortest_path(&self.route_graph(), from, to).map(|p| p.cost)
    }

    /// All-pairs shortest fiber route lengths, as a flat matrix in
    /// kilometres (`f64::INFINITY` where unconnected). One CSR Dijkstra tree
    /// per source; bit-identical to the adjacency-list formulation (pinned
    /// by the CSR parity suites).
    pub fn route_distance_matrix(&self) -> DistMatrix {
        let csr = self.route_csr();
        let n = self.sites.len();
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            data.append(&mut csr.shortest_path_tree(i, None).dist);
        }
        DistMatrix::from_flat(n, data)
    }

    /// All-pairs shortest conduit routes: the route-length matrix together
    /// with the conduit-hop path realising each pair, from the same CSR
    /// Dijkstra trees (so `routes.route_km` is bit-identical to
    /// [`Self::route_distance_matrix`]). This is what the conduit-backed
    /// topology constructor consumes.
    pub fn shortest_routes(&self) -> ConduitRoutes {
        let csr = self.route_csr();
        let n = self.sites.len();
        let mut data = Vec::with_capacity(n * n);
        let mut paths = PathStore::with_capacity(pair_count(n), 4 * n);
        let mut scratch = Vec::new();
        for i in 0..n {
            let tree = csr.shortest_path_tree(i, None);
            for j in (i + 1)..n {
                tree.edge_path_into(j, &mut scratch);
                paths.push_path(&scratch);
            }
            data.extend_from_slice(&tree.dist);
        }
        ConduitRoutes {
            route_km: DistMatrix::from_flat(n, data),
            paths,
        }
    }

    /// All-pairs *latency-equivalent* fiber distances: physical route length
    /// times the 1.5× fiber propagation factor. This is the `o_ij` input of
    /// the paper's design formulation (§3.2).
    pub fn latency_equivalent_matrix(&self) -> DistMatrix {
        let mut matrix = self.route_distance_matrix();
        matrix.map_in_place(|d| d * FIBER_LATENCY_FACTOR);
        matrix
    }

    /// Mean stretch of shortest fiber paths relative to c-latency across all
    /// connected pairs (the paper's InterTubes number is 1.93×).
    pub fn mean_latency_stretch(&self) -> f64 {
        let matrix = self.route_distance_matrix();
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..self.sites.len() {
            for j in (i + 1)..self.sites.len() {
                let geo = geodesic::distance_km(self.sites[i], self.sites[j]);
                if geo < 1.0 || !matrix[i][j].is_finite() {
                    continue;
                }
                total += matrix[i][j] * FIBER_LATENCY_FACTOR / geo;
                count += 1;
            }
        }
        if count == 0 {
            f64::NAN
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::us_population_centers;
    use cisp_graph::pair_index;

    fn us_network() -> FiberNetwork {
        FiberNetwork::synthesize(11, &us_population_centers(), &FiberConfig::default())
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = us_network();
        let b = us_network();
        assert_eq!(a.links().len(), b.links().len());
        assert_eq!(a.links()[0], b.links()[0]);
    }

    #[test]
    fn network_is_connected() {
        let net = us_network();
        let matrix = net.route_distance_matrix();
        for &d in matrix.as_slice() {
            assert!(d.is_finite(), "fiber network must be connected");
        }
    }

    #[test]
    fn segment_lengths_exceed_geodesics() {
        let net = us_network();
        for l in net.links() {
            let geo = geodesic::distance_km(net.sites()[l.a], net.sites()[l.b]);
            assert!(l.route_km >= geo * 1.1, "conduit suspiciously straight");
            assert!(l.route_km <= geo * 1.5 + 1e-9, "conduit too circuitous");
        }
    }

    #[test]
    fn mean_latency_stretch_matches_intertubes_ballpark() {
        let net = us_network();
        let stretch = net.mean_latency_stretch();
        // Paper: 1.93×. The synthetic network should land in the same band.
        assert!(
            stretch > 1.7 && stretch < 2.3,
            "mean fiber stretch = {stretch}"
        );
    }

    #[test]
    fn latency_matrix_is_1_5x_route_matrix() {
        let net = us_network();
        let routes = net.route_distance_matrix();
        let latencies = net.latency_equivalent_matrix();
        assert!((latencies[0][1] - routes[0][1] * 1.5).abs() < 1e-9);
    }

    #[test]
    fn shortest_route_is_symmetric() {
        let net = us_network();
        let a = net.shortest_route_km(0, 10).unwrap();
        let b = net.shortest_route_km(10, 0).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_shortest_routes() {
        let net = us_network();
        let m = net.route_distance_matrix();
        // Spot-check a handful of triples.
        for &(i, j, k) in &[(0, 5, 10), (3, 20, 40), (1, 2, 3), (7, 30, 60)] {
            assert!(m[i][k] <= m[i][j] + m[j][k] + 1e-6);
        }
    }

    #[test]
    fn from_parts_validates_indices() {
        let sites = vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)];
        let net = FiberNetwork::from_parts(
            sites,
            vec![FiberLink {
                a: 0,
                b: 1,
                route_km: 200.0,
            }],
        );
        assert_eq!(net.shortest_route_km(0, 1), Some(200.0));
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_indices() {
        FiberNetwork::from_parts(
            vec![GeoPoint::new(0.0, 0.0)],
            vec![FiberLink {
                a: 0,
                b: 3,
                route_km: 1.0,
            }],
        );
    }

    #[test]
    fn europe_network_also_connected() {
        let cities = crate::cities::europe_population_centers();
        let net = FiberNetwork::synthesize(5, &cities, &FiberConfig::default());
        let m = net.route_distance_matrix();
        assert!(m.as_slice().iter().all(|d| d.is_finite()));
    }

    /// Walk a stored conduit path from `i`, checking hop contiguity, and
    /// return `(end_node, summed_route_km)`. The sum is accumulated in hop
    /// order, which is exactly how the Dijkstra tree accumulated the
    /// pair's distance.
    fn walk_path(net: &FiberNetwork, i: usize, path: &[u32]) -> (usize, f64) {
        let mut cur = i;
        let mut total = 0.0;
        for &e in path {
            let seg = net.links()[(e / 2) as usize];
            let (from, to) = if e % 2 == 0 {
                (seg.a, seg.b)
            } else {
                (seg.b, seg.a)
            };
            assert_eq!(from, cur, "conduit path not contiguous");
            total += seg.route_km;
            cur = to;
        }
        (cur, total)
    }

    #[test]
    fn shortest_routes_paths_realise_the_distance_matrix() {
        let net = us_network();
        let routes = net.shortest_routes();
        let n = net.sites().len();
        assert_eq!(&routes.route_km, &net.route_distance_matrix());
        assert_eq!(routes.paths.len(), pair_count(n));
        for i in 0..n {
            for j in (i + 1)..n {
                let path = routes.paths.path(pair_index(n, i, j));
                assert!(!path.is_empty(), "connected pair must have a path");
                let (end, total) = walk_path(&net, i, path);
                assert_eq!(end, j, "path must end at the pair's far site");
                // Same summation order as the Dijkstra tree: exact equality.
                assert_eq!(total, routes.route_km[i][j], "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn shortest_routes_of_disconnected_pairs_are_empty() {
        let sites = vec![
            GeoPoint::new(30.0, -100.0),
            GeoPoint::new(31.0, -100.0),
            GeoPoint::new(45.0, -80.0),
        ];
        let net = FiberNetwork::from_parts(
            sites,
            vec![FiberLink {
                a: 0,
                b: 1,
                route_km: 150.0,
            }],
        );
        let routes = net.shortest_routes();
        assert_eq!(routes.paths.path(pair_index(3, 0, 1)), &[0u32]);
        assert!(routes.paths.path(pair_index(3, 0, 2)).is_empty());
        assert!(routes.route_km[0][2].is_infinite());
    }

    /// A random city set in the contiguous-US bounding box, spread widely
    /// enough that no pair is degenerate-close.
    fn random_cities(seed: u64, n: usize) -> Vec<City> {
        use rand::Rng;
        let mut rng = seeded_rng(seed, "fiber-proptest-cities");
        (0..n)
            .map(|k| {
                let lat = 27.0 + rng.gen::<f64>() * 20.0;
                let lon = -122.0 + rng.gen::<f64>() * 50.0;
                City::new(&format!("c{k}"), lat, lon, 1_000_000 - k as u64)
            })
            .collect()
    }

    /// Mean end-to-end route circuitousness (shortest conduit route over
    /// geodesic) across connected pairs with a non-degenerate geodesic.
    fn mean_circuitousness(net: &FiberNetwork) -> f64 {
        let m = net.route_distance_matrix();
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..net.sites().len() {
            for j in (i + 1)..net.sites().len() {
                let geo = geodesic::distance_km(net.sites()[i], net.sites()[j]);
                if geo >= 1.0 && m[i][j].is_finite() {
                    sum += m[i][j] / geo;
                    pairs += 1;
                }
            }
        }
        sum / pairs as f64
    }

    /// The hard half of the synthesizer's contract, checked on one random
    /// city set: latency-equivalent conduit distances never beat geodesic ×
    /// the fiber propagation factor (the floor the conduit-backed topology
    /// depends on), and the per-set mean circuitousness stays in a sane
    /// envelope. Kept out of the `proptest!` body to stay within the shim
    /// macro's per-token expansion budget.
    fn check_conduit_contract(seed: u64, n: usize) -> Result<(), proptest::prelude::TestCaseError> {
        use proptest::prop_assert;
        let cities = random_cities(seed, n);
        let net = FiberNetwork::synthesize(seed, &cities, &FiberConfig::default());
        let latency = net.latency_equivalent_matrix();
        for i in 0..n {
            for j in (i + 1)..n {
                let geo = geodesic::distance_km(net.sites()[i], net.sites()[j]);
                prop_assert!(
                    latency[i][j] >= geo * FIBER_LATENCY_FACTOR - 1e-9,
                    "pair ({}, {}): latency-equivalent {} beats geodesic floor {}",
                    i,
                    j,
                    latency[i][j],
                    geo * FIBER_LATENCY_FACTOR
                );
            }
        }
        // Individual draws have a sparse-set tail above the documented
        // band (a far-flung city whose few conduits all detour); the band
        // itself is pinned in aggregate below.
        let mean = mean_circuitousness(&net);
        prop_assert!(
            (1.15..=1.8).contains(&mean),
            "per-set mean circuitousness {} outside the sane envelope",
            mean
        );
        Ok(())
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        #[test]
        fn conduit_distances_dominate_geodesic_on_random_city_sets(
            seed in 0u64..512,
            n in 6usize..24,
        ) {
            check_conduit_contract(seed, n)?;
        }
    }

    /// The documented ≈1.2–1.4× end-to-end circuitousness band, pinned in
    /// aggregate: the mean over many random city sets must land inside the
    /// band (individual sparse sets may drift above it; the per-set
    /// envelope is asserted by the property test above).
    #[test]
    fn mean_circuitousness_over_random_city_sets_lands_in_documented_band() {
        let mut sum = 0.0;
        let mut sets = 0usize;
        for n in [6usize, 8, 10, 12] {
            for seed in 0..24u64 {
                let cities = random_cities(seed, n);
                let net = FiberNetwork::synthesize(seed, &cities, &FiberConfig::default());
                sum += mean_circuitousness(&net);
                sets += 1;
            }
        }
        let grand_mean = sum / sets as f64;
        assert!(
            (1.2..=1.4).contains(&grand_mean),
            "aggregate end-to-end circuitousness {grand_mean} outside the documented ≈1.2–1.4× band"
        );
    }
}

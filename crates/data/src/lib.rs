//! Datasets for the cISP reproduction.
//!
//! Four kinds of input data feed the paper's evaluation; this crate provides
//! each of them, either as embedded public data or as a seeded synthetic
//! stand-in (see `DESIGN.md` §1 for the substitution rationale):
//!
//! * [`cities`] — the most populous cities of the contiguous United States
//!   (embedded, real coordinates and populations) plus the coalescing step
//!   that merges nearby cities into the paper's 120 "population centers", and
//!   the European cities with population above 300 k used in §6.2.
//! * [`datacenters`] — the six publicly known US Google data-center sites
//!   used for the inter-DC and DC-edge traffic models (§6.3).
//! * [`towers`] — a synthetic microwave-tower registry standing in for the
//!   FCC Antenna Structure Registration database and commercial tower-company
//!   databases, including the paper's culling rules (§4, Step 1).
//! * [`fiber`] — a synthetic long-haul fiber conduit network standing in for
//!   the InterTubes dataset, calibrated so that latency-optimal fiber routes
//!   average ≈1.9× the geodesic c-latency, the figure the paper measures.
//! * [`rng`] — deterministic seed derivation so that every synthetic dataset
//!   is reproducible from a single experiment seed.

// The shim `proptest!` macro expands recursively per token; the fiber
// conduit property test has a sizeable body, so raise the budget for tests.
#![cfg_attr(test, recursion_limit = "1024")]

pub mod cities;
pub mod datacenters;
pub mod eu_cities;
pub mod fiber;
pub mod rng;
pub mod towers;
pub mod us_cities;

pub use cities::{coalesce_cities, City, Region};
pub use datacenters::google_us_datacenters;
pub use fiber::{FiberLink, FiberNetwork};
pub use towers::{Tower, TowerRegistry, TowerRegistryConfig};

//! Data-center sites for the inter-DC and DC-edge traffic models.
//!
//! §6.3 of the paper uses the six publicly known Google data-center locations
//! in the United States: Berkeley County SC, Council Bluffs IA, Douglas
//! County GA, Lenoir NC, Mayes County OK, and The Dalles OR.

use cisp_geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// A wide-area data-center site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataCenter {
    /// Site name.
    pub name: String,
    /// Location.
    pub location: GeoPoint,
}

impl DataCenter {
    /// Construct a data center.
    pub fn new(name: &str, lat: f64, lon: f64) -> Self {
        Self {
            name: name.to_string(),
            location: GeoPoint::new(lat, lon),
        }
    }
}

/// The six US Google data-center sites used by the paper (§6.3).
pub fn google_us_datacenters() -> Vec<DataCenter> {
    vec![
        DataCenter::new("Berkeley County, SC", 33.0632, -80.0433),
        DataCenter::new("Council Bluffs, IA", 41.2619, -95.8608),
        DataCenter::new("Douglas County, GA", 33.7515, -84.7477),
        DataCenter::new("Lenoir, NC", 35.9140, -81.5390),
        DataCenter::new("Mayes County, OK", 36.3021, -95.3261),
        DataCenter::new("The Dalles, OR", 45.5946, -121.1787),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_geo::geodesic;

    #[test]
    fn there_are_six_sites() {
        assert_eq!(google_us_datacenters().len(), 6);
    }

    #[test]
    fn sites_are_spread_across_the_country() {
        let dcs = google_us_datacenters();
        // The Dalles (OR) and Berkeley County (SC) are roughly transcontinental.
        let west = dcs.iter().find(|d| d.name.contains("Dalles")).unwrap();
        let east = dcs.iter().find(|d| d.name.contains("Berkeley")).unwrap();
        let d = geodesic::distance_km(west.location, east.location);
        assert!(d > 3000.0, "d = {d}");
    }

    #[test]
    fn sites_are_within_the_contiguous_us() {
        for dc in google_us_datacenters() {
            assert!(dc.location.lat_deg > 24.0 && dc.location.lat_deg < 50.0);
            assert!(dc.location.lon_deg > -125.0 && dc.location.lon_deg < -66.0);
        }
    }
}

//! Deterministic seed derivation.
//!
//! Every synthetic dataset (towers, fiber, storms, traffic perturbations) is
//! generated from a single experiment seed. To keep the datasets independent
//! of each other — so that, say, changing the tower count does not silently
//! reshuffle the weather — each consumer derives its own stream seed with
//! [`derive_seed`] using a domain label.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finaliser, used to mix the domain label into the master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a domain label (e.g. `"towers"`, `"fiber"`, `"storms"`) to a 64-bit
/// value using FNV-1a; stable across platforms and compiler versions.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive a stream seed from a master seed and a domain label.
pub fn derive_seed(master_seed: u64, label: &str) -> u64 {
    splitmix64(master_seed ^ hash_label(label))
}

/// Construct a seeded [`StdRng`] for a domain.
pub fn seeded_rng(master_seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master_seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, "towers"), derive_seed(42, "towers"));
    }

    #[test]
    fn different_labels_give_different_streams() {
        assert_ne!(derive_seed(42, "towers"), derive_seed(42, "fiber"));
        assert_ne!(derive_seed(42, "towers"), derive_seed(43, "towers"));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = seeded_rng(7, "storms");
        let mut b = seeded_rng(7, "storms");
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_streams_differ_across_labels() {
        let mut a = seeded_rng(7, "storms");
        let mut b = seeded_rng(7, "traffic");
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same == 0, "streams should not collide");
    }
}

//! Cities, population centers, and the coalescing step.
//!
//! §4 of the paper: "we connect only the 200 most populous cities in the
//! contiguous United States. In addition, we coalesce suburbs and cities
//! within 50 km of each other, ending up with 120 population centers." This
//! module provides the [`City`] type, the embedded US and EU city tables, and
//! [`coalesce_cities`], which implements exactly that merge.

use cisp_geo::{geodesic, GeoPoint};
use serde::{Deserialize, Serialize};

use crate::{eu_cities::EU_CITIES, us_cities::US_CITIES};

/// A city or coalesced population center.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// Name of the city (for coalesced centers, the name of the most populous
    /// constituent city).
    pub name: String,
    /// Location of the city centre (for coalesced centers, the location of
    /// the most populous constituent city).
    pub location: GeoPoint,
    /// Population (for coalesced centers, the sum of the constituents).
    pub population: u64,
}

impl City {
    /// Construct a city.
    pub fn new(name: &str, lat: f64, lon: f64, population: u64) -> Self {
        Self {
            name: name.to_string(),
            location: GeoPoint::new(lat, lon),
            population,
        }
    }
}

/// Geographic region of a deployment scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Region {
    /// Contiguous United States.
    UnitedStates,
    /// Continental Europe plus Great Britain.
    Europe,
}

impl Region {
    /// Bounding box of the region as `(min_lat, max_lat, min_lon, max_lon)`,
    /// used by the synthetic tower and storm generators.
    pub fn bounding_box(&self) -> (f64, f64, f64, f64) {
        match self {
            Region::UnitedStates => (24.5, 49.5, -125.0, -66.5),
            Region::Europe => (36.0, 62.0, -10.0, 31.0),
        }
    }

    /// All raw (pre-coalescing) cities of the region, ordered by decreasing
    /// population.
    pub fn raw_cities(&self) -> Vec<City> {
        let table = match self {
            Region::UnitedStates => US_CITIES,
            Region::Europe => EU_CITIES,
        };
        let mut cities: Vec<City> = table
            .iter()
            .map(|&(name, lat, lon, pop)| City::new(name, lat, lon, pop))
            .collect();
        cities.sort_by(|a, b| b.population.cmp(&a.population).then(a.name.cmp(&b.name)));
        cities
    }
}

/// The raw top-`n` most populous US cities (no coalescing).
pub fn us_top_cities(n: usize) -> Vec<City> {
    let mut cities = Region::UnitedStates.raw_cities();
    cities.truncate(n);
    cities
}

/// European cities with population at least `min_population`.
pub fn eu_cities_above(min_population: u64) -> Vec<City> {
    Region::Europe
        .raw_cities()
        .into_iter()
        .filter(|c| c.population >= min_population)
        .collect()
}

/// Coalesce cities within `radius_km` of each other into population centers.
///
/// The merge is greedy in population order, exactly as a person would do it
/// with a map: take the most populous unassigned city, absorb every
/// unassigned city within `radius_km` of it, and repeat. The center keeps the
/// anchor city's name and location and the summed population.
pub fn coalesce_cities(cities: &[City], radius_km: f64) -> Vec<City> {
    assert!(radius_km >= 0.0);
    let mut sorted: Vec<&City> = cities.iter().collect();
    sorted.sort_by(|a, b| b.population.cmp(&a.population).then(a.name.cmp(&b.name)));

    let mut assigned = vec![false; sorted.len()];
    let mut centers = Vec::new();
    for i in 0..sorted.len() {
        if assigned[i] {
            continue;
        }
        assigned[i] = true;
        let anchor = sorted[i];
        let mut population = anchor.population;
        for j in (i + 1)..sorted.len() {
            if assigned[j] {
                continue;
            }
            if geodesic::distance_km(anchor.location, sorted[j].location) <= radius_km {
                assigned[j] = true;
                population += sorted[j].population;
            }
        }
        centers.push(City {
            name: anchor.name.clone(),
            location: anchor.location,
            population,
        });
    }
    centers
}

/// The paper's default US scenario: top 200 cities coalesced at 50 km into
/// population centers (the paper arrives at 120).
pub fn us_population_centers() -> Vec<City> {
    coalesce_cities(&us_top_cities(200), 50.0)
}

/// The paper's European scenario: cities above 300 k population, coalesced at
/// 50 km.
pub fn europe_population_centers() -> Vec<City> {
    coalesce_cities(&eu_cities_above(300_000), 50.0)
}

/// Fraction of the total tabulated population that lives within `radius_km`
/// of one of the given centers (the paper quotes 85 % within 100 km of the
/// 120 US centers).
pub fn population_coverage(centers: &[City], all_cities: &[City], radius_km: f64) -> f64 {
    let total: u64 = all_cities.iter().map(|c| c.population).sum();
    if total == 0 {
        return 0.0;
    }
    let covered: u64 = all_cities
        .iter()
        .filter(|c| {
            centers
                .iter()
                .any(|center| geodesic::distance_km(center.location, c.location) <= radius_km)
        })
        .map(|c| c.population)
        .sum();
    covered as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_table_is_large_and_sorted() {
        let cities = Region::UnitedStates.raw_cities();
        assert!(cities.len() >= 190, "got {}", cities.len());
        for w in cities.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
        assert_eq!(cities[0].name, "New York");
    }

    #[test]
    fn all_us_cities_inside_bounding_box() {
        let (min_lat, max_lat, min_lon, max_lon) = Region::UnitedStates.bounding_box();
        for c in Region::UnitedStates.raw_cities() {
            assert!(
                c.location.lat_deg >= min_lat
                    && c.location.lat_deg <= max_lat
                    && c.location.lon_deg >= min_lon
                    && c.location.lon_deg <= max_lon,
                "{} at {} outside the contiguous US box",
                c.name,
                c.location
            );
        }
    }

    #[test]
    fn eu_table_has_major_capitals() {
        let cities = Region::Europe.raw_cities();
        for name in ["London", "Paris", "Berlin", "Madrid", "Warsaw"] {
            assert!(cities.iter().any(|c| c.name == name), "missing {name}");
        }
    }

    #[test]
    fn coalescing_reduces_count_to_population_centers() {
        let centers = us_population_centers();
        // The paper gets 120 from 200; our table of ~200 raw entries lands in
        // the same neighbourhood.
        assert!(
            centers.len() >= 100 && centers.len() <= 160,
            "got {} centers",
            centers.len()
        );
        // Coalescing must not lose population.
        let raw_total: u64 = us_top_cities(200).iter().map(|c| c.population).sum();
        let center_total: u64 = centers.iter().map(|c| c.population).sum();
        assert_eq!(raw_total, center_total);
    }

    #[test]
    fn coalescing_merges_known_suburbs() {
        let centers = us_population_centers();
        // Long Beach (≈30 km from LA) must be absorbed into Los Angeles.
        assert!(!centers.iter().any(|c| c.name == "Long Beach"));
        let la = centers.iter().find(|c| c.name == "Los Angeles").unwrap();
        assert!(la.population > 3_792_621, "LA should have absorbed suburbs");
        // St. Paul merges into Minneapolis.
        assert!(!centers.iter().any(|c| c.name == "St. Paul"));
    }

    #[test]
    fn coalescing_keeps_distant_cities_separate() {
        let centers = us_population_centers();
        for name in ["New York", "Chicago", "Denver", "Seattle", "Miami"] {
            assert!(centers.iter().any(|c| c.name == name), "missing {name}");
        }
        // All pairwise distances between centers exceed... not necessarily the
        // radius (greedy merge), but no two centers may be closer than a few km.
        for (i, a) in centers.iter().enumerate() {
            for b in centers.iter().skip(i + 1) {
                assert!(
                    geodesic::distance_km(a.location, b.location) > 5.0,
                    "{} and {} are nearly co-located",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn coalesce_with_zero_radius_is_identity_sized() {
        let cities = us_top_cities(50);
        let centers = coalesce_cities(&cities, 0.0);
        assert_eq!(centers.len(), 50);
    }

    #[test]
    fn coverage_of_centers_over_raw_cities_is_high() {
        let centers = us_population_centers();
        let raw = us_top_cities(200);
        let coverage = population_coverage(&centers, &raw, 100.0);
        // Within the tabulated universe, coverage at 100 km should be ~1.0
        // (every tabulated city is itself near some center).
        assert!(coverage > 0.95, "coverage = {coverage}");
    }

    #[test]
    fn europe_centers_count_is_plausible() {
        let centers = europe_population_centers();
        assert!(
            centers.len() >= 60 && centers.len() <= 130,
            "got {} centers",
            centers.len()
        );
    }

    #[test]
    fn us_top_cities_truncates() {
        assert_eq!(us_top_cities(10).len(), 10);
        assert_eq!(us_top_cities(10)[0].name, "New York");
    }

    #[test]
    fn eu_cities_above_filters_population() {
        let big = eu_cities_above(1_000_000);
        assert!(big.iter().all(|c| c.population >= 1_000_000));
        assert!(big.len() >= 10);
    }
}

//! Synthetic microwave-tower registry.
//!
//! The paper culls the FCC Antenna Structure Registration database plus
//! several commercial tower-company databases down to 12,080 usable towers
//! (§4, Step 1): rental-company towers are kept, FCC towers only above 100 m,
//! and when density exceeds 50 towers per 0.5° grid cell the excess is
//! sampled away. Those databases cannot be redistributed, so this module
//! generates a registry with the same statistical structure:
//!
//! * tower density follows population (towers cluster around cities, with a
//!   thinner uniform rural background along the long-haul corridors),
//! * heights follow a registry-like distribution (mostly 60–200 m, a tail to
//!   350 m), and
//! * the paper's culling rules are applied afterwards, so downstream code
//!   sees exactly the kind of input the paper's Step 1 consumed.
//!
//! The registry also provides the spatial grid index used to enumerate
//! candidate tower pairs within microwave range.

use std::collections::HashMap;

use cisp_geo::{geodesic, GeoPoint};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::City;
use crate::rng::seeded_rng;

/// Where a synthetic tower "came from", mirroring the paper's data sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TowerSource {
    /// FCC Antenna Structure Registration-like entry (subject to the 100 m
    /// height rule).
    FccRegistration,
    /// Commercial tower-rental company entry (kept regardless of height).
    RentalCompany,
}

/// A single tower.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tower {
    /// Ground location of the tower.
    pub location: GeoPoint,
    /// Structural height above ground, in metres.
    pub height_m: f64,
    /// Data source the tower mimics.
    pub source: TowerSource,
}

/// Configuration of the synthetic registry generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TowerRegistryConfig {
    /// Number of towers to generate *before* culling.
    pub raw_count: usize,
    /// Fraction of towers clustered around cities (the rest are uniform
    /// rural background).
    pub city_clustered_fraction: f64,
    /// Scatter radius (km) of the city-clustered towers around their city.
    pub city_scatter_km: f64,
    /// Fraction of towers tagged as rental-company towers.
    pub rental_fraction: f64,
    /// Minimum height for FCC-like towers to survive culling (paper: 100 m).
    pub fcc_min_height_m: f64,
    /// Maximum towers kept per 0.5° × 0.5° grid cell (paper: 50).
    pub max_per_half_degree_cell: usize,
}

impl Default for TowerRegistryConfig {
    fn default() -> Self {
        Self {
            raw_count: 18_000,
            city_clustered_fraction: 0.6,
            city_scatter_km: 90.0,
            rental_fraction: 0.45,
            fcc_min_height_m: 100.0,
            max_per_half_degree_cell: 50,
        }
    }
}

impl TowerRegistryConfig {
    /// A small configuration for fast tests: a few thousand towers.
    pub fn small() -> Self {
        Self {
            raw_count: 3_000,
            ..Self::default()
        }
    }
}

/// The culled tower registry with a spatial index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TowerRegistry {
    towers: Vec<Tower>,
    /// Grid index: 0.5°-cell → tower indices, for range queries.
    #[serde(skip)]
    grid: GridIndex,
}

/// Cell size of the spatial index, in degrees.
const CELL_DEG: f64 = 0.5;

/// Flat grid-bucket index: one sorted array of packed cell keys, one CSR
/// offset array, one contiguous item array.
///
/// The previous `HashMap<(i32, i32), Vec<usize>>` paid a hash plus a
/// pointer-chase per probed cell and scattered every bucket across the heap;
/// a full `pairs_within` sweep probes hundreds of thousands of cells. Here a
/// probe is one binary search over a dense `i64` array and the bucket is a
/// slice of one shared allocation. Buckets hold tower indices in ascending
/// order (the build sort is by `(key, index)`), matching the hash version's
/// per-bucket insertion order.
#[derive(Debug, Clone, Default)]
struct GridIndex {
    /// Packed `(lat_cell, lon_cell)` keys, sorted ascending, one per
    /// non-empty cell.
    keys: Vec<i64>,
    /// `offsets[k]..offsets[k + 1]` is cell `k`'s slice of `items`.
    offsets: Vec<u32>,
    /// Tower indices, grouped by cell, ascending within each cell.
    items: Vec<u32>,
}

/// Pack a grid cell into one orderable key.
#[inline]
fn pack_cell(cell: (i32, i32)) -> i64 {
    ((cell.0 as i64) << 32) | (cell.1 as i64 & 0xFFFF_FFFF)
}

impl GridIndex {
    fn build(towers: &[Tower]) -> Self {
        let mut entries: Vec<(i64, u32)> = towers
            .iter()
            .enumerate()
            .map(|(i, t)| (pack_cell(t.location.grid_cell(CELL_DEG)), i as u32))
            .collect();
        entries.sort_unstable();
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut items = Vec::with_capacity(entries.len());
        for (key, idx) in entries {
            if keys.last() != Some(&key) {
                keys.push(key);
                offsets.push(items.len() as u32);
            }
            items.push(idx);
        }
        offsets.push(items.len() as u32);
        Self {
            keys,
            offsets,
            items,
        }
    }

    /// Tower indices in `cell`, or an empty slice.
    #[inline]
    fn bucket(&self, cell: (i32, i32)) -> &[u32] {
        match self.keys.binary_search(&pack_cell(cell)) {
            Ok(k) => &self.items[self.offsets[k] as usize..self.offsets[k + 1] as usize],
            Err(_) => &[],
        }
    }

    fn max_occupancy(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

impl TowerRegistry {
    /// Generate a synthetic registry for a bounding box and set of cities.
    ///
    /// `bbox` is `(min_lat, max_lat, min_lon, max_lon)`; towers are clustered
    /// around `cities` in proportion to population. The result is already
    /// culled per the paper's rules.
    pub fn synthesize(
        seed: u64,
        bbox: (f64, f64, f64, f64),
        cities: &[City],
        config: &TowerRegistryConfig,
    ) -> Self {
        assert!(!cities.is_empty(), "need at least one city for clustering");
        let (min_lat, max_lat, min_lon, max_lon) = bbox;
        assert!(max_lat > min_lat && max_lon > min_lon, "degenerate bbox");
        let mut rng = seeded_rng(seed, "towers");

        // Cumulative population weights for city selection.
        let total_pop: f64 = cities.iter().map(|c| c.population as f64).sum();
        let mut cumulative = Vec::with_capacity(cities.len());
        let mut acc = 0.0;
        for c in cities {
            acc += c.population as f64 / total_pop;
            cumulative.push(acc);
        }

        let mut raw: Vec<Tower> = Vec::with_capacity(config.raw_count);
        while raw.len() < config.raw_count {
            let clustered = rng.gen::<f64>() < config.city_clustered_fraction;
            let location = if clustered {
                let u: f64 = rng.gen();
                let city_idx = cumulative.iter().position(|&c| u <= c).unwrap_or(0);
                let bearing = rng.gen::<f64>() * 360.0;
                // Exponential-ish scatter: most towers near the city, a tail
                // reaching out along the corridors.
                let distance = -config.city_scatter_km * (1.0 - rng.gen::<f64>()).ln() * 0.5;
                geodesic::destination(cities[city_idx].location, bearing, distance)
            } else {
                GeoPoint::new(
                    min_lat + rng.gen::<f64>() * (max_lat - min_lat),
                    min_lon + rng.gen::<f64>() * (max_lon - min_lon),
                )
            };
            // Keep only towers inside the bounding box (scatter can escape it).
            if location.lat_deg < min_lat
                || location.lat_deg > max_lat
                || location.lon_deg < min_lon
                || location.lon_deg > max_lon
            {
                continue;
            }
            // Height: 60 m base plus an exponential tail, truncated at 350 m.
            let height_m = (60.0 - 70.0 * (1.0 - rng.gen::<f64>()).ln()).min(350.0);
            let source = if rng.gen::<f64>() < config.rental_fraction {
                TowerSource::RentalCompany
            } else {
                TowerSource::FccRegistration
            };
            raw.push(Tower {
                location,
                height_m,
                source,
            });
        }

        // Culling rule 1: FCC towers must be at least `fcc_min_height_m` tall.
        raw.retain(|t| match t.source {
            TowerSource::FccRegistration => t.height_m >= config.fcc_min_height_m,
            TowerSource::RentalCompany => true,
        });

        // Culling rule 2: at most `max_per_half_degree_cell` per 0.5° cell,
        // sampled deterministically (keep the first N in generation order —
        // the generator is already random, so this is a uniform subsample).
        let mut per_cell: HashMap<(i32, i32), usize> = HashMap::new();
        let mut culled = Vec::with_capacity(raw.len());
        for t in raw {
            let cell = t.location.grid_cell(CELL_DEG);
            let count = per_cell.entry(cell).or_insert(0);
            if *count < config.max_per_half_degree_cell {
                *count += 1;
                culled.push(t);
            }
        }

        Self::from_towers(culled)
    }

    /// Build a registry from an explicit tower list (used by tests and by
    /// callers with their own data).
    pub fn from_towers(towers: Vec<Tower>) -> Self {
        let grid = GridIndex::build(&towers);
        Self { towers, grid }
    }

    /// All towers.
    pub fn towers(&self) -> &[Tower] {
        &self.towers
    }

    /// Number of towers.
    pub fn len(&self) -> usize {
        self.towers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.towers.is_empty()
    }

    /// Rebuild the spatial index (needed after deserialisation, where the
    /// index is skipped).
    pub fn rebuild_index(&mut self) {
        *self = Self::from_towers(std::mem::take(&mut self.towers));
    }

    /// Indices of towers within `radius_km` of `point`.
    pub fn towers_within(&self, point: GeoPoint, radius_km: f64) -> Vec<usize> {
        let mut result = Vec::new();
        self.towers_within_into(point, radius_km, &mut result);
        result
    }

    /// [`Self::towers_within`] writing into a caller-owned buffer (cleared
    /// first), so sweeping callers — site attachment, `pairs_within` — reuse
    /// one allocation across queries. Results are ascending tower indices,
    /// identical to `towers_within`.
    pub fn towers_within_into(&self, point: GeoPoint, radius_km: f64, result: &mut Vec<usize>) {
        assert!(radius_km >= 0.0);
        result.clear();
        // 0.5° of latitude ≈ 55.6 km; pad the cell search generously for
        // longitude shrink at high latitudes.
        let lat_cells = (radius_km / 55.6 / CELL_DEG).ceil() as i32 + 1;
        let cos_lat = point.lat_deg.to_radians().cos().max(0.2);
        let lon_cells = (radius_km / (111.32 * cos_lat) / CELL_DEG).ceil() as i32 + 1;
        let (cell_lat, cell_lon) = point.grid_cell(CELL_DEG);

        for dlat in -lat_cells..=lat_cells {
            for dlon in -lon_cells..=lon_cells {
                for &i in self.grid.bucket((cell_lat + dlat, cell_lon + dlon)) {
                    let i = i as usize;
                    if geodesic::distance_km(point, self.towers[i].location) <= radius_km {
                        result.push(i);
                    }
                }
            }
        }
        result.sort_unstable();
    }

    /// All unordered tower pairs within `range_km` of each other, as index
    /// pairs `(i, j)` with `i < j`.
    pub fn pairs_within(&self, range_km: f64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut near = Vec::new();
        for i in 0..self.towers.len() {
            self.towers_within_into(self.towers[i].location, range_km, &mut near);
            for &j in &near {
                if j > i {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Histogram of towers per 0.5° cell (diagnostics / tests).
    pub fn max_cell_occupancy(&self) -> usize {
        self.grid.max_occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::us_top_cities;

    fn small_registry(seed: u64) -> TowerRegistry {
        let cities = us_top_cities(30);
        TowerRegistry::synthesize(
            seed,
            (24.5, 49.5, -125.0, -66.5),
            &cities,
            &TowerRegistryConfig::small(),
        )
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = small_registry(1);
        let b = small_registry(1);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.towers()[0], b.towers()[0]);
        let c = small_registry(2);
        assert_ne!(
            a.towers()[0].location.lat_deg,
            c.towers()[0].location.lat_deg
        );
    }

    #[test]
    fn culling_respects_fcc_height_rule() {
        let reg = small_registry(3);
        for t in reg.towers() {
            if t.source == TowerSource::FccRegistration {
                assert!(
                    t.height_m >= 100.0,
                    "FCC tower of {} m survived",
                    t.height_m
                );
            }
            assert!(t.height_m >= 60.0 && t.height_m <= 350.0);
        }
    }

    #[test]
    fn culling_respects_cell_cap() {
        let reg = small_registry(4);
        assert!(reg.max_cell_occupancy() <= 50);
    }

    #[test]
    fn towers_stay_inside_bounding_box() {
        let reg = small_registry(5);
        for t in reg.towers() {
            assert!(t.location.lat_deg >= 24.5 && t.location.lat_deg <= 49.5);
            assert!(t.location.lon_deg >= -125.0 && t.location.lon_deg <= -66.5);
        }
    }

    #[test]
    fn density_is_higher_near_big_cities() {
        let reg = small_registry(6);
        let nyc = GeoPoint::new(40.71, -74.0);
        let rural_montana = GeoPoint::new(47.0, -108.5);
        let near_nyc = reg.towers_within(nyc, 100.0).len();
        let near_rural = reg.towers_within(rural_montana, 100.0).len();
        assert!(
            near_nyc > near_rural,
            "NYC {near_nyc} towers vs rural Montana {near_rural}"
        );
        assert!(
            near_nyc >= 5,
            "cities must host several towers ({near_nyc})"
        );
    }

    #[test]
    fn range_query_matches_brute_force() {
        let reg = small_registry(7);
        let p = GeoPoint::new(39.0, -95.0);
        let radius = 120.0;
        let fast = reg.towers_within(p, radius);
        let brute: Vec<usize> = reg
            .towers()
            .iter()
            .enumerate()
            .filter(|(_, t)| geodesic::distance_km(p, t.location) <= radius)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fast, brute);
    }

    #[test]
    fn pairs_within_are_symmetric_free_and_in_range() {
        let cities = us_top_cities(10);
        let reg = TowerRegistry::synthesize(
            8,
            (30.0, 45.0, -100.0, -80.0),
            &cities,
            &TowerRegistryConfig {
                raw_count: 400,
                ..TowerRegistryConfig::default()
            },
        );
        let pairs = reg.pairs_within(100.0);
        for &(i, j) in &pairs {
            assert!(i < j);
            let d = geodesic::distance_km(reg.towers()[i].location, reg.towers()[j].location);
            assert!(d <= 100.0 + 1e-9);
        }
        // No duplicates.
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pairs.len());
    }

    #[test]
    fn towers_within_into_reuses_buffer_and_matches() {
        let reg = small_registry(9);
        let mut buf = vec![usize::MAX; 7]; // stale contents must be cleared
        for (k, &(lat, lon)) in [(40.0, -90.0), (35.0, -110.0), (45.0, -75.0)]
            .iter()
            .enumerate()
        {
            let p = GeoPoint::new(lat, lon);
            let radius = 80.0 + 40.0 * k as f64;
            reg.towers_within_into(p, radius, &mut buf);
            assert_eq!(buf, reg.towers_within(p, radius));
        }
    }

    #[test]
    fn from_towers_roundtrip_and_empty() {
        let empty = TowerRegistry::from_towers(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.max_cell_occupancy(), 0);
        assert!(empty
            .towers_within(GeoPoint::new(0.0, 0.0), 50.0)
            .is_empty());
    }
}

//! Seeded, hash-based value noise and fractal Brownian motion (fBm).
//!
//! The terrain model needs a smooth pseudo-random field that is (a) fully
//! deterministic given a seed, (b) cheap to evaluate at arbitrary points
//! without storing a raster, and (c) free of external dependencies. Classic
//! lattice value noise with quintic smoothing fits the bill. Perlin gradient
//! noise would look marginally nicer but feasibility statistics only care
//! about amplitude and correlation length, not visual aesthetics.

/// A deterministic 64-bit mixer (SplitMix64 finaliser). Used to hash lattice
/// coordinates plus the seed into pseudo-random values.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a 2-D integer lattice point and a seed to a float in `[0, 1)`.
#[inline]
fn lattice_value(ix: i64, iy: i64, seed: u64) -> f64 {
    let h = mix64(
        (ix as u64)
            .wrapping_mul(0x8545_9F85_C592_9F3B)
            .wrapping_add((iy as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(mix64(seed)),
    );
    // Take the top 53 bits for a uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Quintic smoothstep used to interpolate lattice values (C² continuous).
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Single-octave 2-D value noise in `[0, 1]`, with unit lattice spacing.
pub fn value_noise(x: f64, y: f64, seed: u64) -> f64 {
    let ix = x.floor() as i64;
    let iy = y.floor() as i64;
    let fx = x - ix as f64;
    let fy = y - iy as f64;

    let v00 = lattice_value(ix, iy, seed);
    let v10 = lattice_value(ix + 1, iy, seed);
    let v01 = lattice_value(ix, iy + 1, seed);
    let v11 = lattice_value(ix + 1, iy + 1, seed);

    let sx = smooth(fx);
    let sy = smooth(fy);

    let a = v00 + (v10 - v00) * sx;
    let b = v01 + (v11 - v01) * sx;
    a + (b - a) * sy
}

/// Parameters for fractal Brownian motion.
#[derive(Debug, Clone, Copy)]
pub struct FbmParams {
    /// Number of octaves to sum.
    pub octaves: u32,
    /// Spatial frequency of the first octave (cycles per unit distance).
    pub base_frequency: f64,
    /// Frequency multiplier between octaves (usually ~2).
    pub lacunarity: f64,
    /// Amplitude multiplier between octaves (usually ~0.5).
    pub gain: f64,
}

impl Default for FbmParams {
    fn default() -> Self {
        Self {
            octaves: 5,
            base_frequency: 1.0,
            lacunarity: 2.0,
            gain: 0.5,
        }
    }
}

/// Fractal Brownian motion: a sum of value-noise octaves, normalised to
/// `[0, 1]`.
pub fn fbm(x: f64, y: f64, seed: u64, params: FbmParams) -> f64 {
    assert!(params.octaves >= 1, "fBm needs at least one octave");
    let mut total = 0.0;
    let mut amplitude = 1.0;
    let mut frequency = params.base_frequency;
    let mut max_amplitude = 0.0;
    for octave in 0..params.octaves {
        let octave_seed = seed.wrapping_add(0x9E37 * octave as u64 + 1);
        total += amplitude * value_noise(x * frequency, y * frequency, octave_seed);
        max_amplitude += amplitude;
        amplitude *= params.gain;
        frequency *= params.lacunarity;
    }
    total / max_amplitude
}

/// Ridged multifractal noise in `[0, 1]`: sharp crests, useful for mountain
/// ridge crest variation.
pub fn ridged(x: f64, y: f64, seed: u64, params: FbmParams) -> f64 {
    assert!(params.octaves >= 1);
    let mut total = 0.0;
    let mut amplitude = 1.0;
    let mut frequency = params.base_frequency;
    let mut max_amplitude = 0.0;
    for octave in 0..params.octaves {
        let octave_seed = seed.wrapping_add(0xC0FFEE * (octave as u64 + 1));
        let n = value_noise(x * frequency, y * frequency, octave_seed);
        let r = 1.0 - (2.0 * n - 1.0).abs(); // fold around the midpoint
        total += amplitude * r * r;
        max_amplitude += amplitude;
        amplitude *= params.gain;
        frequency *= params.lacunarity;
    }
    total / max_amplitude
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads_bits() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // A weak avalanche check: flipping one input bit flips many output bits.
        let a = mix64(0x1234_5678);
        let b = mix64(0x1234_5679);
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn value_noise_in_unit_interval_and_deterministic() {
        for i in 0..200 {
            let x = i as f64 * 0.37;
            let y = i as f64 * 0.71 - 10.0;
            let v = value_noise(x, y, 7);
            assert!((0.0..=1.0).contains(&v), "noise out of range: {v}");
            assert_eq!(v, value_noise(x, y, 7));
        }
    }

    #[test]
    fn value_noise_depends_on_seed() {
        let mut differs = 0;
        for i in 0..50 {
            let x = i as f64 * 0.61;
            if (value_noise(x, 3.3, 1) - value_noise(x, 3.3, 2)).abs() > 1e-6 {
                differs += 1;
            }
        }
        assert!(
            differs > 40,
            "seeds should decorrelate noise ({differs}/50)"
        );
    }

    #[test]
    fn value_noise_is_continuous() {
        // Adjacent evaluations differ by a bounded amount.
        let eps = 1e-4;
        for i in 0..100 {
            let x = i as f64 * 0.131;
            let y = i as f64 * 0.377;
            let d = (value_noise(x + eps, y, 3) - value_noise(x, y, 3)).abs();
            assert!(d < 0.01, "discontinuity {d} at ({x}, {y})");
        }
    }

    #[test]
    fn value_noise_matches_lattice_at_integers() {
        // At integer coordinates the interpolation weights collapse to a
        // single lattice value, so the result must be that hash value.
        let v = value_noise(5.0, -3.0, 11);
        assert!((0.0..=1.0).contains(&v));
        assert_eq!(v, value_noise(5.0, -3.0, 11));
    }

    #[test]
    fn fbm_and_ridged_stay_in_range() {
        let params = FbmParams::default();
        for i in 0..200 {
            let x = i as f64 * 0.17 - 10.0;
            let y = i as f64 * 0.29 + 4.0;
            let f = fbm(x, y, 99, params);
            let r = ridged(x, y, 99, params);
            assert!((0.0..=1.0).contains(&f), "fbm {f}");
            assert!((0.0..=1.0).contains(&r), "ridged {r}");
        }
    }

    #[test]
    fn fbm_octaves_add_detail() {
        // With more octaves the field has more high-frequency variance; test
        // indirectly by checking the two parameterisations differ.
        let one = FbmParams {
            octaves: 1,
            ..FbmParams::default()
        };
        let five = FbmParams::default();
        let mut diff = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.123;
            diff += (fbm(x, 0.5, 5, one) - fbm(x, 0.5, 5, five)).abs();
        }
        assert!(diff > 0.1);
    }

    #[test]
    #[should_panic]
    fn fbm_rejects_zero_octaves() {
        fbm(
            0.0,
            0.0,
            1,
            FbmParams {
                octaves: 0,
                ..FbmParams::default()
            },
        );
    }
}

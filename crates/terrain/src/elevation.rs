//! The continental elevation model.
//!
//! A [`TerrainModel`] is a pure function from a [`GeoPoint`] to an elevation
//! in metres above sea level. It is composed of:
//!
//! * a base field: low-amplitude fBm "rolling terrain" on top of a regional
//!   baseline that rises gently towards the continental interior,
//! * a set of [`MountainRange`]s: great-circle ridge segments with a Gaussian
//!   cross-section and a ridged-noise crest, and
//! * water masking is *not* modelled — the paper's own hop-feasibility example
//!   (the 96 km hop across Lake Michigan) shows over-water hops are viable, so
//!   water behaves like flat terrain at elevation ~0.
//!
//! The built-in [`TerrainModel::united_states`] and [`TerrainModel::europe`]
//! configurations place the major ranges at their true locations so that the
//! designed networks detour where the paper's do.

use cisp_geo::units::EARTH_RADIUS_KM;
use cisp_geo::{geodesic, GeoPoint};
use serde::{Deserialize, Serialize};

use crate::noise::{fbm, ridged, FbmParams};

/// Safety margin, in km, added to the per-range chord skip bound so that
/// floating-point rounding in the chord length can never skip a range whose
/// Gaussian contribution would have been non-zero. The bound itself is exact
/// mathematics (see [`RangeAxis::skip_beyond_km`]); the margin only has to
/// cover ULP-level error, so 1 km is vast.
const SKIP_MARGIN_KM: f64 = 1.0;

/// Precomputed axis geometry of one [`MountainRange`].
///
/// `distance_to_axis_km` recomputes the axis length, the axis bearing, and
/// two haversines per query even though the axis never moves. The elevation
/// hot path (hop-feasibility sampling evaluates the terrain at millions of
/// points) caches the per-axis constants here, plus a conservative reject
/// radius that skips the whole range with one dot product.
#[derive(Debug, Clone)]
struct RangeAxis {
    /// Axis length `d(start, end)` in km.
    total_km: f64,
    /// Initial bearing of the axis at `start`, degrees.
    bearing_axis_deg: f64,
    /// Unit vector of `start` (for the chord lower bound).
    start_unit: [f64; 3],
    /// Axis shorter than 1 mm: the range degenerates to a point.
    degenerate: bool,
    /// Skip the range outright when the chord lower bound on `d(p, start)`
    /// exceeds this. Since the chord is a lower bound on the great-circle
    /// distance, `chord > total + 4σ + margin` implies the distance to every
    /// axis point exceeds `4σ`, where the Gaussian contribution is defined
    /// to be exactly `0.0` — so skipping is bit-identical.
    skip_beyond_km: f64,
}

/// A mountain range modelled as a ridge line with Gaussian cross-section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MountainRange {
    /// Human-readable name (for diagnostics only).
    pub name: String,
    /// One end of the ridge axis.
    pub start: GeoPoint,
    /// Other end of the ridge axis.
    pub end: GeoPoint,
    /// Peak crest height added above the base terrain, in metres.
    pub peak_m: f64,
    /// Half-width of the range, in kilometres (Gaussian sigma).
    pub half_width_km: f64,
}

impl MountainRange {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        start: GeoPoint,
        end: GeoPoint,
        peak_m: f64,
        half_width_km: f64,
    ) -> Self {
        assert!(peak_m > 0.0 && half_width_km > 0.0);
        Self {
            name: name.to_string(),
            start,
            end,
            peak_m,
            half_width_km,
        }
    }

    /// Shortest distance from `p` to the ridge axis segment, in kilometres.
    fn distance_to_axis_km(&self, p: GeoPoint) -> f64 {
        let total = geodesic::distance_km(self.start, self.end);
        if total < 1e-9 {
            return geodesic::distance_km(self.start, p);
        }
        // Along-track projection of p onto the axis.
        let d_sp = geodesic::distance_km(self.start, p);
        let xt = geodesic::cross_track_distance_km(self.start, self.end, p);
        // Along-track distance via the spherical right-triangle relation; for
        // the continental scales involved the planar approximation is fine.
        let at = (d_sp * d_sp - xt * xt).max(0.0).sqrt();
        // Is p "before" the start? Compare bearings.
        let bearing_axis = geodesic::initial_bearing_deg(self.start, self.end);
        let bearing_p = geodesic::initial_bearing_deg(self.start, p);
        let mut diff = (bearing_axis - bearing_p).abs();
        if diff > 180.0 {
            diff = 360.0 - diff;
        }
        let at_signed = if diff > 90.0 { -at } else { at };

        if at_signed < 0.0 {
            geodesic::distance_km(self.start, p)
        } else if at_signed > total {
            geodesic::distance_km(self.end, p)
        } else {
            xt
        }
    }

    /// Ridge height contribution at `p`, before crest noise, in metres.
    fn contribution_m(&self, p: GeoPoint) -> f64 {
        let d = self.distance_to_axis_km(p);
        // Ignore anything beyond 4 sigma: negligible and saves work.
        if d > 4.0 * self.half_width_km {
            return 0.0;
        }
        let x = d / self.half_width_km;
        self.peak_m * (-0.5 * x * x).exp()
    }

    /// Precompute the axis constants reused by every elevation query.
    fn axis(&self) -> RangeAxis {
        let total_km = geodesic::distance_km(self.start, self.end);
        RangeAxis {
            total_km,
            bearing_axis_deg: geodesic::initial_bearing_deg(self.start, self.end),
            start_unit: self.start.to_unit_vector(),
            degenerate: total_km < 1e-9,
            skip_beyond_km: total_km + 4.0 * self.half_width_km + SKIP_MARGIN_KM,
        }
    }

    /// [`Self::distance_to_axis_km`] with the axis constants supplied from a
    /// [`RangeAxis`] cache. Every expression reuses or replays the exact
    /// arithmetic of the uncached version (the cached values are pure
    /// functions of the axis endpoints), so the result is bit-identical —
    /// which the `cached_elevation_matches_reference` test pins.
    fn distance_to_axis_cached_km(&self, axis: &RangeAxis, p: GeoPoint) -> f64 {
        if axis.degenerate {
            return geodesic::distance_km(self.start, p);
        }
        let total = axis.total_km;
        let d_sp = geodesic::distance_km(self.start, p);
        let bearing_p = geodesic::initial_bearing_deg(self.start, p);
        // cross_track_distance_km inlined so its central angle reuses d_sp
        // and its axis bearing comes from the cache: same values, computed
        // once instead of three times.
        let delta13 = d_sp / EARTH_RADIUS_KM;
        let theta13 = bearing_p.to_radians();
        let theta12 = axis.bearing_axis_deg.to_radians();
        let xt = (delta13.sin() * (theta13 - theta12).sin()).asin().abs() * EARTH_RADIUS_KM;
        let at = (d_sp * d_sp - xt * xt).max(0.0).sqrt();
        let mut diff = (axis.bearing_axis_deg - bearing_p).abs();
        if diff > 180.0 {
            diff = 360.0 - diff;
        }
        let at_signed = if diff > 90.0 { -at } else { at };

        if at_signed < 0.0 {
            d_sp
        } else if at_signed > total {
            geodesic::distance_km(self.end, p)
        } else {
            xt
        }
    }

    /// [`Self::contribution_m`] over the cached axis geometry.
    fn contribution_cached_m(&self, axis: &RangeAxis, p: GeoPoint) -> f64 {
        let d = self.distance_to_axis_cached_km(axis, p);
        if d > 4.0 * self.half_width_km {
            return 0.0;
        }
        let x = d / self.half_width_km;
        self.peak_m * (-0.5 * x * x).exp()
    }
}

/// Parameters of the base (non-mountain) terrain field.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BaseTerrainParams {
    /// Mean elevation of the lowlands, metres.
    pub baseline_m: f64,
    /// Amplitude of rolling-terrain noise, metres.
    pub relief_m: f64,
    /// Correlation length of the rolling terrain, in degrees of arc.
    pub correlation_deg: f64,
}

impl Default for BaseTerrainParams {
    fn default() -> Self {
        Self {
            baseline_m: 150.0,
            relief_m: 220.0,
            correlation_deg: 0.8,
        }
    }
}

/// The procedural elevation model. See the module docs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TerrainModel {
    seed: u64,
    base: BaseTerrainParams,
    ranges: Vec<MountainRange>,
    /// Extra crest-noise amplitude as a fraction of the local ridge height.
    crest_noise_fraction: f64,
    /// Per-range axis cache, parallel to `ranges`. Rebuilt by the
    /// constructor; when absent (e.g. a deserialized model) queries fall
    /// back to the uncached path, so the cache is purely a speedup.
    #[serde(skip)]
    axes: Vec<RangeAxis>,
}

impl TerrainModel {
    /// Build a model from explicit parts.
    pub fn new(
        seed: u64,
        base: BaseTerrainParams,
        ranges: Vec<MountainRange>,
        crest_noise_fraction: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&crest_noise_fraction));
        let axes = ranges.iter().map(MountainRange::axis).collect();
        Self {
            seed,
            base,
            ranges,
            crest_noise_fraction,
            axes,
        }
    }

    /// Perfectly flat terrain at sea level — useful for tests and for
    /// isolating the pure-geometry behaviour of line-of-sight checks.
    pub fn flat() -> Self {
        Self {
            seed: 0,
            base: BaseTerrainParams {
                baseline_m: 0.0,
                relief_m: 0.0,
                correlation_deg: 1.0,
            },
            ranges: Vec::new(),
            crest_noise_fraction: 0.0,
            axes: Vec::new(),
        }
    }

    /// The contiguous-United-States configuration: Rockies, Sierra Nevada,
    /// Cascades, Appalachians, plus a high-plains uplift towards the west.
    pub fn united_states(seed: u64) -> Self {
        let ranges = vec![
            MountainRange::new(
                "Rocky Mountains (north)",
                GeoPoint::new(48.8, -114.0),
                GeoPoint::new(43.5, -110.0),
                2600.0,
                160.0,
            ),
            MountainRange::new(
                "Rocky Mountains (central)",
                GeoPoint::new(43.5, -110.0),
                GeoPoint::new(38.5, -106.0),
                2900.0,
                170.0,
            ),
            MountainRange::new(
                "Rocky Mountains (south)",
                GeoPoint::new(38.5, -106.0),
                GeoPoint::new(33.5, -105.5),
                2400.0,
                140.0,
            ),
            MountainRange::new(
                "Sierra Nevada",
                GeoPoint::new(40.5, -121.3),
                GeoPoint::new(35.5, -118.0),
                2700.0,
                90.0,
            ),
            MountainRange::new(
                "Cascades",
                GeoPoint::new(48.8, -121.5),
                GeoPoint::new(41.0, -122.0),
                2200.0,
                80.0,
            ),
            MountainRange::new(
                "Wasatch / Great Basin",
                GeoPoint::new(42.0, -112.0),
                GeoPoint::new(37.5, -113.5),
                1900.0,
                150.0,
            ),
            MountainRange::new(
                "Appalachians (north)",
                GeoPoint::new(44.0, -72.5),
                GeoPoint::new(38.5, -79.5),
                900.0,
                110.0,
            ),
            MountainRange::new(
                "Appalachians (south)",
                GeoPoint::new(38.5, -79.5),
                GeoPoint::new(34.5, -84.0),
                1100.0,
                110.0,
            ),
            MountainRange::new(
                "Ozarks",
                GeoPoint::new(37.5, -93.0),
                GeoPoint::new(35.5, -94.0),
                450.0,
                90.0,
            ),
        ];
        Self::new(seed, BaseTerrainParams::default(), ranges, 0.35)
    }

    /// The European configuration: Alps, Pyrenees, Carpathians, Apennines,
    /// Scandinavian mountains, Dinarides.
    pub fn europe(seed: u64) -> Self {
        let ranges = vec![
            MountainRange::new(
                "Alps",
                GeoPoint::new(44.2, 6.8),
                GeoPoint::new(47.5, 14.5),
                3000.0,
                110.0,
            ),
            MountainRange::new(
                "Pyrenees",
                GeoPoint::new(43.3, -1.8),
                GeoPoint::new(42.4, 2.8),
                2300.0,
                60.0,
            ),
            MountainRange::new(
                "Carpathians",
                GeoPoint::new(49.5, 19.5),
                GeoPoint::new(45.5, 25.5),
                1800.0,
                100.0,
            ),
            MountainRange::new(
                "Apennines",
                GeoPoint::new(44.5, 9.5),
                GeoPoint::new(40.0, 16.0),
                1700.0,
                70.0,
            ),
            MountainRange::new(
                "Dinarides",
                GeoPoint::new(46.0, 14.0),
                GeoPoint::new(42.5, 19.5),
                1600.0,
                80.0,
            ),
            MountainRange::new(
                "Scandinavian Mountains",
                GeoPoint::new(62.0, 9.0),
                GeoPoint::new(68.0, 17.0),
                1500.0,
                130.0,
            ),
            MountainRange::new(
                "Massif Central",
                GeoPoint::new(45.8, 2.5),
                GeoPoint::new(44.5, 3.8),
                1200.0,
                90.0,
            ),
        ];
        Self::new(
            seed,
            BaseTerrainParams {
                baseline_m: 120.0,
                relief_m: 200.0,
                correlation_deg: 0.7,
            },
            ranges,
            0.35,
        )
    }

    /// The model's seed (useful for reporting experiment provenance).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured mountain ranges.
    pub fn ranges(&self) -> &[MountainRange] {
        &self.ranges
    }

    /// Ground elevation (metres above sea level) at a point. Always finite
    /// and non-negative.
    pub fn elevation_m(&self, p: GeoPoint) -> f64 {
        let mut elevation = self.base.baseline_m;
        if self.base.relief_m > 0.0 {
            let params = FbmParams {
                octaves: 5,
                base_frequency: 1.0 / self.base.correlation_deg,
                lacunarity: 2.1,
                gain: 0.5,
            };
            let rolling = fbm(p.lon_deg, p.lat_deg, self.seed, params);
            elevation += self.base.relief_m * rolling;
        }

        if !self.ranges.is_empty() {
            // The crest-noise modulation is the same value for every range
            // at a given point; compute it at most once per query.
            let mut modulation: Option<f64> = None;
            if self.axes.len() == self.ranges.len() {
                let vp = p.to_unit_vector();
                for (range, axis) in self.ranges.iter().zip(&self.axes) {
                    // Chord length is a lower bound on the great-circle
                    // distance to the axis start; beyond the reject radius
                    // the Gaussian is exactly zero, so skipping changes
                    // nothing.
                    let dx = vp[0] - axis.start_unit[0];
                    let dy = vp[1] - axis.start_unit[1];
                    let dz = vp[2] - axis.start_unit[2];
                    let chord_km = EARTH_RADIUS_KM * (dx * dx + dy * dy + dz * dz).sqrt();
                    if chord_km > axis.skip_beyond_km {
                        continue;
                    }
                    let ridge = range.contribution_cached_m(axis, p);
                    if ridge > 0.0 {
                        let m = *modulation.get_or_insert_with(|| self.crest_modulation(p));
                        elevation += ridge * m;
                    }
                }
            } else {
                for range in &self.ranges {
                    let ridge = range.contribution_m(p);
                    if ridge > 0.0 {
                        let m = *modulation.get_or_insert_with(|| self.crest_modulation(p));
                        elevation += ridge * m;
                    }
                }
            }
        }
        elevation.max(0.0)
    }

    /// The ridged crest-noise modulation factor at `p` (a pure function of
    /// the point and seed — identical for every range).
    fn crest_modulation(&self, p: GeoPoint) -> f64 {
        let crest_params = FbmParams {
            octaves: 4,
            base_frequency: 2.5,
            lacunarity: 2.0,
            gain: 0.55,
        };
        let crest = ridged(p.lon_deg, p.lat_deg, self.seed ^ 0xA11C_E5ED, crest_params);
        1.0 - self.crest_noise_fraction + self.crest_noise_fraction * crest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_terrain_is_zero_everywhere() {
        let t = TerrainModel::flat();
        for &(lat, lon) in &[(40.0, -100.0), (35.0, -80.0), (47.0, 8.0)] {
            assert_eq!(t.elevation_m(GeoPoint::new(lat, lon)), 0.0);
        }
    }

    #[test]
    fn us_model_is_deterministic_per_seed() {
        let t1 = TerrainModel::united_states(7);
        let t2 = TerrainModel::united_states(7);
        let t3 = TerrainModel::united_states(8);
        let p = GeoPoint::new(39.0, -105.0);
        assert_eq!(t1.elevation_m(p), t2.elevation_m(p));
        assert_ne!(t1.elevation_m(p), t3.elevation_m(p));
    }

    #[test]
    fn rockies_are_high_great_plains_are_not() {
        let t = TerrainModel::united_states(42);
        let rockies = t.elevation_m(GeoPoint::new(39.5, -106.0));
        let kansas = t.elevation_m(GeoPoint::new(38.5, -98.0));
        let florida = t.elevation_m(GeoPoint::new(28.5, -81.5));
        assert!(rockies > 1800.0, "Rockies = {rockies}");
        assert!(kansas < 800.0, "Kansas = {kansas}");
        assert!(florida < 800.0, "Florida = {florida}");
        assert!(rockies > kansas + 1000.0);
    }

    #[test]
    fn appalachians_are_moderate() {
        let t = TerrainModel::united_states(42);
        let appalachia = t.elevation_m(GeoPoint::new(37.0, -81.5));
        assert!(
            appalachia > 400.0 && appalachia < 2000.0,
            "Appalachia = {appalachia}"
        );
    }

    #[test]
    fn alps_dominate_european_lowlands() {
        let t = TerrainModel::europe(42);
        let alps = t.elevation_m(GeoPoint::new(46.5, 10.5));
        let netherlands = t.elevation_m(GeoPoint::new(52.2, 5.3));
        assert!(alps > 1800.0, "Alps = {alps}");
        assert!(netherlands < 700.0, "NL = {netherlands}");
    }

    #[test]
    fn elevation_is_nonnegative_and_finite_everywhere() {
        let t = TerrainModel::united_states(3);
        for i in 0..40 {
            for j in 0..40 {
                let lat = 25.0 + i as f64 * 0.6;
                let lon = -124.0 + j as f64 * 1.4;
                let e = t.elevation_m(GeoPoint::new(lat, lon));
                assert!(
                    e.is_finite() && e >= 0.0,
                    "bad elevation {e} at {lat},{lon}"
                );
            }
        }
    }

    #[test]
    fn elevation_is_spatially_continuous() {
        let t = TerrainModel::united_states(5);
        // 100 m steps must not produce cliffs of more than a few metres of
        // noise plus the mountain gradient (generous bound: 50 m).
        let base = GeoPoint::new(39.7, -105.2);
        let mut prev = t.elevation_m(base);
        for i in 1..50 {
            let p = GeoPoint::new(39.7, -105.2 + i as f64 * 0.001);
            let e = t.elevation_m(p);
            assert!((e - prev).abs() < 50.0, "cliff of {} m", (e - prev).abs());
            prev = e;
        }
    }

    #[test]
    fn mountain_range_distance_handles_off_axis_points() {
        let range = MountainRange::new(
            "test",
            GeoPoint::new(40.0, -110.0),
            GeoPoint::new(40.0, -105.0),
            2000.0,
            100.0,
        );
        // A point past the east end is measured to the endpoint, not the
        // infinite great circle.
        let east = GeoPoint::new(40.0, -100.0);
        let d = range.distance_to_axis_km(east);
        let expected = geodesic::distance_km(GeoPoint::new(40.0, -105.0), east);
        assert!((d - expected).abs() < 1.0, "d = {d}, expected {expected}");

        // A point near the middle of the axis is close to it (the great
        // circle between two points at latitude 40° arcs slightly north of
        // the parallel, hence the ~10 km tolerance) and gets essentially the
        // full ridge contribution.
        let on_axis = GeoPoint::new(40.0, -107.5);
        assert!(range.distance_to_axis_km(on_axis) < 15.0);
        assert!(range.contribution_m(on_axis) > 1900.0);

        // Far away contributes nothing.
        assert_eq!(range.contribution_m(GeoPoint::new(30.0, -85.0)), 0.0);
    }

    // The cached-axis fast path (chord skip + reused haversine/bearing) must
    // be bit-identical to a reference evaluation built from the uncached
    // `contribution_m`, across points near, on, beyond, and far from every
    // range — any drift here would silently change hop feasibility.
    #[test]
    fn cached_elevation_matches_reference() {
        for t in [TerrainModel::united_states(42), TerrainModel::europe(7)] {
            let reference = |p: GeoPoint| {
                let mut elevation = t.base.baseline_m;
                if t.base.relief_m > 0.0 {
                    let params = FbmParams {
                        octaves: 5,
                        base_frequency: 1.0 / t.base.correlation_deg,
                        lacunarity: 2.1,
                        gain: 0.5,
                    };
                    elevation += t.base.relief_m * fbm(p.lon_deg, p.lat_deg, t.seed, params);
                }
                for range in &t.ranges {
                    let ridge = range.contribution_m(p);
                    if ridge > 0.0 {
                        elevation += ridge * t.crest_modulation(p);
                    }
                }
                elevation.max(0.0)
            };
            for i in 0..30 {
                for j in 0..30 {
                    let lat = 25.0 + i as f64 * 1.5;
                    let lon = -125.0 + j as f64 * 5.0;
                    let p = GeoPoint::new(lat, lon);
                    let fast = t.elevation_m(p);
                    let slow = reference(p);
                    assert!(fast == slow, "divergence at {lat},{lon}: {fast} vs {slow}");
                }
            }
            // Per-range parity of the cached distance itself.
            for (range, axis) in t.ranges.iter().zip(&t.axes) {
                for k in 0..20 {
                    let p = GeoPoint::new(28.0 + k as f64, -120.0 + k as f64 * 4.0);
                    assert!(
                        range.distance_to_axis_cached_km(axis, p) == range.distance_to_axis_km(p),
                        "axis distance diverged for {} at point {k}",
                        range.name
                    );
                }
            }
        }
    }

    #[test]
    fn contribution_decays_with_distance() {
        let range = MountainRange::new(
            "test",
            GeoPoint::new(40.0, -110.0),
            GeoPoint::new(40.0, -105.0),
            2000.0,
            100.0,
        );
        let near = range.contribution_m(GeoPoint::new(40.5, -107.5));
        let far = range.contribution_m(GeoPoint::new(42.5, -107.5));
        assert!(near > far, "near {near} vs far {far}");
    }
}

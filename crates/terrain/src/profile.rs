//! Elevation and obstruction profiles along great-circle paths.
//!
//! Line-of-sight feasibility (in `cisp-core`) needs the obstacle surface —
//! ground elevation plus clutter — sampled along the straight path between
//! two antennas. This module bundles the sampling logic so that terrain and
//! clutter are always combined consistently.

use cisp_geo::{geodesic, GeoPoint};

use crate::clutter::ClutterModel;
use crate::elevation::TerrainModel;

/// Sample the ground elevation (metres ASL) at `n_samples` evenly spaced
/// points along the great circle from `a` to `b`, including the endpoints.
pub fn elevation_profile(
    terrain: &TerrainModel,
    a: GeoPoint,
    b: GeoPoint,
    n_samples: usize,
) -> Vec<f64> {
    geodesic::sample_path(a, b, n_samples)
        .into_iter()
        .map(|p| terrain.elevation_m(p))
        .collect()
}

/// Sample the obstruction surface — ground elevation plus clutter — along the
/// great circle from `a` to `b`.
pub fn obstruction_profile(
    terrain: &TerrainModel,
    clutter: &ClutterModel,
    a: GeoPoint,
    b: GeoPoint,
    n_samples: usize,
) -> Vec<f64> {
    geodesic::sample_path(a, b, n_samples)
        .into_iter()
        .map(|p| terrain.elevation_m(p) + clutter.clutter_m(p))
        .collect()
}

/// Choose a sample count for a hop of the given length: roughly one sample
/// per kilometre, clamped to a reasonable range. This mirrors the ~30 m SRTM
/// posting only loosely — clearance errors from coarser sampling are absorbed
/// by the Fresnel-zone margin, and the paper reports its own assessments are
/// accurate to ~2 m against LIDAR.
pub fn samples_for_hop(hop_km: f64) -> usize {
    ((hop_km.ceil() as usize) + 1).clamp(16, 160)
}

/// Highest obstruction along a path (convenience for diagnostics).
pub fn max_obstruction_m(
    terrain: &TerrainModel,
    clutter: &ClutterModel,
    a: GeoPoint,
    b: GeoPoint,
    n_samples: usize,
) -> f64 {
    obstruction_profile(terrain, clutter, a, b, n_samples)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_requested_length_and_match_endpoints() {
        let terrain = TerrainModel::united_states(11);
        let a = GeoPoint::new(41.0, -100.0);
        let b = GeoPoint::new(40.0, -98.0);
        let profile = elevation_profile(&terrain, a, b, 33);
        assert_eq!(profile.len(), 33);
        assert!((profile[0] - terrain.elevation_m(a)).abs() < 1e-9);
        assert!((profile[32] - terrain.elevation_m(b)).abs() < 1e-9);
    }

    #[test]
    fn obstruction_is_at_least_elevation() {
        let terrain = TerrainModel::united_states(11);
        let clutter = ClutterModel::with_seed(11);
        let a = GeoPoint::new(41.0, -100.0);
        let b = GeoPoint::new(40.0, -98.0);
        let bare = elevation_profile(&terrain, a, b, 21);
        let full = obstruction_profile(&terrain, &clutter, a, b, 21);
        for (g, o) in bare.iter().zip(full.iter()) {
            assert!(o >= g);
        }
    }

    #[test]
    fn flat_terrain_profile_is_flat() {
        let terrain = TerrainModel::flat();
        let clutter = ClutterModel::none();
        let a = GeoPoint::new(41.0, -100.0);
        let b = GeoPoint::new(41.0, -99.0);
        let profile = obstruction_profile(&terrain, &clutter, a, b, 10);
        assert!(profile.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn sample_count_scales_with_hop_length() {
        assert_eq!(samples_for_hop(1.0), 16);
        assert_eq!(samples_for_hop(50.0), 51);
        assert_eq!(samples_for_hop(100.0), 101);
        assert_eq!(samples_for_hop(1000.0), 160);
    }

    #[test]
    fn max_obstruction_crossing_rockies_is_high() {
        let terrain = TerrainModel::united_states(42);
        let clutter = ClutterModel::none();
        // Denver to Grand Junction crosses the central Rockies.
        let denver = GeoPoint::new(39.74, -104.99);
        let gj = GeoPoint::new(39.06, -108.55);
        let peak = max_obstruction_m(&terrain, &clutter, denver, gj, 120);
        assert!(peak > 2000.0, "peak = {peak}");
    }
}

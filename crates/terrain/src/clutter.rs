//! Ground clutter: tree canopy and built structures.
//!
//! The SRTM surface model the paper uses "includes buildings and ground
//! clutter, and effectively incorporates the height of the tree canopy"
//! (§3.1, footnote 1). Microwave line-of-sight must clear this surface, not
//! the bare ground, so the feasibility engine adds a clutter height on top of
//! the [`crate::TerrainModel`] elevation.
//!
//! The clutter model is a noise field whose amplitude depends on a coarse
//! land-cover proxy: forested regions get up to ~30 m of canopy, open plains
//! a few metres of vegetation, and a small urban component is added near
//! cities by the caller (towers in cities are registered with their true
//! heights, so urban clutter mostly matters for the first/last hop which the
//! paper treats as within-city anyway).

use cisp_geo::GeoPoint;
use serde::{Deserialize, Serialize};

use crate::noise::{fbm, FbmParams};

/// Parameters of the clutter model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClutterParams {
    /// Maximum canopy height in heavily forested areas, metres.
    pub max_canopy_m: f64,
    /// Minimum vegetation height in open terrain, metres.
    pub min_vegetation_m: f64,
    /// Fraction of the map that is "forest-like" (controls the threshold of
    /// the forest-cover noise field), in `[0, 1]`.
    pub forest_fraction: f64,
}

impl Default for ClutterParams {
    fn default() -> Self {
        Self {
            max_canopy_m: 30.0,
            min_vegetation_m: 2.0,
            forest_fraction: 0.45,
        }
    }
}

/// Deterministic clutter-height field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClutterModel {
    seed: u64,
    params: ClutterParams,
}

impl ClutterModel {
    /// Create a clutter model with the given seed and parameters.
    pub fn new(seed: u64, params: ClutterParams) -> Self {
        assert!(params.max_canopy_m >= params.min_vegetation_m);
        assert!((0.0..=1.0).contains(&params.forest_fraction));
        Self { seed, params }
    }

    /// Default clutter model for a seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(seed, ClutterParams::default())
    }

    /// A clutter model that adds nothing anywhere (for isolating geometry in
    /// tests).
    pub fn none() -> Self {
        Self::new(
            0,
            ClutterParams {
                max_canopy_m: 0.0,
                min_vegetation_m: 0.0,
                forest_fraction: 0.0,
            },
        )
    }

    /// Clutter height above ground at a point, in metres.
    pub fn clutter_m(&self, p: GeoPoint) -> f64 {
        if self.params.max_canopy_m <= 0.0 {
            return 0.0;
        }
        // Forest-cover field: large correlation length (~1.5°).
        let cover = fbm(
            p.lon_deg,
            p.lat_deg,
            self.seed ^ 0xF0_0D,
            FbmParams {
                octaves: 4,
                base_frequency: 1.0 / 1.5,
                lacunarity: 2.0,
                gain: 0.5,
            },
        );
        // Canopy-height variation field: shorter correlation (~0.2°).
        let variation = fbm(
            p.lon_deg,
            p.lat_deg,
            self.seed ^ 0xBEEF,
            FbmParams {
                octaves: 3,
                base_frequency: 5.0,
                lacunarity: 2.0,
                gain: 0.5,
            },
        );

        let threshold = 1.0 - self.params.forest_fraction;
        if cover >= threshold {
            // Forested: canopy between ~60% and 100% of max, modulated.
            let canopy = self.params.max_canopy_m * (0.6 + 0.4 * variation);
            canopy.max(self.params.min_vegetation_m)
        } else {
            // Open terrain: low vegetation.
            self.params.min_vegetation_m + 3.0 * variation
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_zero() {
        let c = ClutterModel::none();
        assert_eq!(c.clutter_m(GeoPoint::new(40.0, -100.0)), 0.0);
    }

    #[test]
    fn clutter_is_bounded_and_nonnegative() {
        let c = ClutterModel::with_seed(9);
        for i in 0..30 {
            for j in 0..30 {
                let p = GeoPoint::new(25.0 + i as f64, -124.0 + j as f64 * 2.0);
                let h = c.clutter_m(p);
                assert!((0.0..=35.0).contains(&h), "clutter {h} out of range");
            }
        }
    }

    #[test]
    fn clutter_is_deterministic() {
        let a = ClutterModel::with_seed(3);
        let b = ClutterModel::with_seed(3);
        let p = GeoPoint::new(44.4, -93.1);
        assert_eq!(a.clutter_m(p), b.clutter_m(p));
    }

    #[test]
    fn forest_fraction_controls_tall_clutter_prevalence() {
        let open = ClutterModel::new(
            5,
            ClutterParams {
                forest_fraction: 0.05,
                ..ClutterParams::default()
            },
        );
        let forest = ClutterModel::new(
            5,
            ClutterParams {
                forest_fraction: 0.95,
                ..ClutterParams::default()
            },
        );
        let mut tall_open = 0;
        let mut tall_forest = 0;
        for i in 0..400 {
            let p = GeoPoint::new(30.0 + (i / 20) as f64, -120.0 + (i % 20) as f64 * 2.0);
            if open.clutter_m(p) > 15.0 {
                tall_open += 1;
            }
            if forest.clutter_m(p) > 15.0 {
                tall_forest += 1;
            }
        }
        assert!(tall_forest > tall_open, "{tall_forest} vs {tall_open}");
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_heights() {
        ClutterModel::new(
            1,
            ClutterParams {
                max_canopy_m: 1.0,
                min_vegetation_m: 5.0,
                forest_fraction: 0.5,
            },
        );
    }
}

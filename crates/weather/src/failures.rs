//! Per-interval link failures under a storm field.
//!
//! A built microwave link is a series of ~tens-of-km hops along the
//! site-to-site path. The binary failure model of §6.1 marks the whole link
//! failed if *any* of its hops exceeds its fade margin during the interval.
//! Because the weather crate operates on the designed topology (which stores
//! the site-to-site geometry rather than every tower position), hops are
//! approximated as equal-length segments of the link's great-circle path —
//! the same granularity at which the synthetic storm field varies.

use cisp_core::topology::HybridTopology;
use cisp_geo::geodesic;
use serde::{Deserialize, Serialize};

use crate::attenuation::FadeMargin;
use crate::storms::StormField;

/// Configuration of the failure model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Fade margin per hop.
    pub fade_margin: FadeMargin,
    /// Carrier frequency, GHz.
    pub frequency_ghz: f64,
    /// Nominal hop length used to segment links, km.
    pub hop_length_km: f64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self {
            fade_margin: FadeMargin::default(),
            frequency_ghz: 11.0,
            hop_length_km: 75.0,
        }
    }
}

/// Indices (into `topology.mw_links()`) of links that fail under the given
/// storm field.
pub fn link_failures(
    topology: &HybridTopology,
    field: &StormField,
    config: &FailureConfig,
) -> Vec<usize> {
    assert!(config.hop_length_km > 0.0);
    let sites = topology.sites();
    let mut failed = Vec::new();
    for (idx, link) in topology.mw_links().iter().enumerate() {
        let a = sites[link.site_a];
        let b = sites[link.site_b];
        let total_km = geodesic::distance_km(a, b);
        let hops = (total_km / config.hop_length_km).ceil().max(1.0) as usize;
        let hop_km = total_km / hops as f64;
        let mut link_failed = false;
        for h in 0..hops {
            let start = geodesic::intermediate(a, b, h as f64 / hops as f64);
            let end = geodesic::intermediate(a, b, (h + 1) as f64 / hops as f64);
            // Worst-case rain over the hop drives its attenuation.
            let rain = field.max_rain_along(start, end);
            if !config
                .fade_margin
                .survives(hop_km, rain, config.frequency_ghz)
            {
                link_failed = true;
                break;
            }
        }
        if link_failed {
            failed.push(idx);
        }
    }
    failed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storms::Storm;
    use cisp_core::links::CandidateLink;
    use cisp_geo::GeoPoint;

    fn topology_with_two_links() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -95.0),
            GeoPoint::new(35.0, -95.0),
        ];
        let traffic = vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ];
        let fiber: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 2.0)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1usize, 2usize)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a,
                site_b: b,
                mw_length_km: geo * 1.03,
                tower_count: 6,
                tower_path: vec![0; 6],
            });
        }
        topo
    }

    #[test]
    fn clear_skies_fail_nothing() {
        let topo = topology_with_two_links();
        let failures = link_failures(&topo, &StormField::default(), &FailureConfig::default());
        assert!(failures.is_empty());
    }

    #[test]
    fn a_violent_storm_on_one_link_fails_only_that_link() {
        let topo = topology_with_two_links();
        // Storm centred on the midpoint of link 0 (40°N corridor).
        let field = StormField {
            storms: vec![Storm {
                center: GeoPoint::new(40.05, -97.5),
                radius_km: 60.0,
                peak_mm_h: 100.0,
            }],
        };
        let failures = link_failures(&topo, &field, &FailureConfig::default());
        assert_eq!(failures, vec![0]);
    }

    #[test]
    fn light_rain_does_not_fail_links() {
        let topo = topology_with_two_links();
        let field = StormField {
            storms: vec![Storm {
                center: GeoPoint::new(40.0, -97.5),
                radius_km: 300.0,
                peak_mm_h: 4.0,
            }],
        };
        let failures = link_failures(&topo, &field, &FailureConfig::default());
        assert!(failures.is_empty());
    }

    #[test]
    fn widespread_severe_weather_can_fail_everything() {
        let topo = topology_with_two_links();
        let field = StormField {
            storms: vec![
                Storm {
                    center: GeoPoint::new(40.0, -97.5),
                    radius_km: 400.0,
                    peak_mm_h: 90.0,
                },
                Storm {
                    center: GeoPoint::new(37.0, -95.0),
                    radius_km: 400.0,
                    peak_mm_h: 90.0,
                },
            ],
        };
        let failures = link_failures(&topo, &field, &FailureConfig::default());
        assert_eq!(failures, vec![0, 1]);
    }

    #[test]
    fn tighter_fade_margin_fails_more() {
        let topo = topology_with_two_links();
        let field = StormField {
            storms: vec![Storm {
                center: GeoPoint::new(40.0, -97.5),
                radius_km: 80.0,
                peak_mm_h: 35.0,
            }],
        };
        let lenient = FailureConfig {
            fade_margin: FadeMargin { margin_db: 40.0 },
            ..FailureConfig::default()
        };
        let strict = FailureConfig {
            fade_margin: FadeMargin { margin_db: 8.0 },
            ..FailureConfig::default()
        };
        assert!(
            link_failures(&topo, &field, &lenient).len()
                <= link_failures(&topo, &field, &strict).len()
        );
        assert!(!link_failures(&topo, &field, &strict).is_empty());
    }
}

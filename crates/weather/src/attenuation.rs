//! Rain attenuation of microwave links (ITU-R P.838 / P.530 style).
//!
//! The specific attenuation of rain at rate `R` (mm/h) is `γ = k · Rᵅ` dB/km,
//! with frequency-dependent coefficients `k` and `α`. Over a path, rain cells
//! do not cover the whole length uniformly, so the standard practice is to
//! multiply by an *effective* path length `d_eff = d · 1/(1 + d/d₀(R))`.
//! A link is considered failed when the total attenuation exceeds its fade
//! margin — the binary model §6.1 adopts.

use serde::{Deserialize, Serialize};

/// ITU-R P.838-3 coefficients (horizontal polarisation) at selected
/// frequencies bracketing the paper's 6–18 GHz band.
const COEFFS: &[(f64, f64, f64)] = &[
    // (frequency GHz, k, alpha)
    (6.0, 0.0050, 1.354),
    (8.0, 0.0099, 1.288),
    (10.0, 0.0168, 1.217),
    (11.0, 0.0179, 1.210),
    (12.0, 0.0239, 1.160),
    (15.0, 0.0387, 1.106),
    (18.0, 0.0591, 1.063),
];

/// Interpolate the P.838 coefficients at a frequency in the 6–18 GHz band.
fn coefficients(freq_ghz: f64) -> (f64, f64) {
    assert!(
        (6.0..=18.0).contains(&freq_ghz),
        "frequency {freq_ghz} GHz outside the modelled 6-18 GHz band"
    );
    let mut prev = COEFFS[0];
    for &entry in COEFFS.iter() {
        if freq_ghz <= entry.0 {
            if entry.0 == prev.0 {
                return (entry.1, entry.2);
            }
            let t = (freq_ghz - prev.0) / (entry.0 - prev.0);
            // k varies roughly log-linearly with frequency; α linearly.
            let k = prev.1 * (entry.1 / prev.1).powf(t);
            let alpha = prev.2 + t * (entry.2 - prev.2);
            return (k, alpha);
        }
        prev = entry;
    }
    (prev.1, prev.2)
}

/// Specific attenuation `γ` in dB/km for rain rate `rain_mm_h` at
/// `freq_ghz`.
pub fn specific_attenuation_db_per_km(rain_mm_h: f64, freq_ghz: f64) -> f64 {
    assert!(rain_mm_h >= 0.0);
    if rain_mm_h == 0.0 {
        return 0.0;
    }
    let (k, alpha) = coefficients(freq_ghz);
    k * rain_mm_h.powf(alpha)
}

/// Effective path length factor (ITU-R P.530 style): rain cells are a few km
/// to a few tens of km across, so long paths are only partially covered.
pub fn effective_path_km(path_km: f64, rain_mm_h: f64) -> f64 {
    assert!(path_km >= 0.0);
    if path_km == 0.0 || rain_mm_h <= 0.0 {
        return 0.0;
    }
    // d0 shrinks with rain intensity: heavy rain comes in small cells.
    let d0 = 35.0 * (-0.015 * rain_mm_h.min(100.0)).exp();
    path_km / (1.0 + path_km / d0)
}

/// Total rain attenuation in dB over a path of `path_km` experiencing a
/// (uniform) rain rate of `rain_mm_h` at `freq_ghz`.
pub fn rain_attenuation_db(path_km: f64, rain_mm_h: f64, freq_ghz: f64) -> f64 {
    specific_attenuation_db_per_km(rain_mm_h, freq_ghz) * effective_path_km(path_km, rain_mm_h)
}

/// Link fade budget parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FadeMargin {
    /// Attenuation the link can absorb before its bandwidth degrades, dB.
    pub margin_db: f64,
}

impl Default for FadeMargin {
    fn default() -> Self {
        // Typical long-haul MW design margin for high availability.
        Self { margin_db: 25.0 }
    }
}

impl FadeMargin {
    /// Whether a hop of `hop_km` survives rain of `rain_mm_h` at `freq_ghz`.
    pub fn survives(&self, hop_km: f64, rain_mm_h: f64, freq_ghz: f64) -> bool {
        rain_attenuation_db(hop_km, rain_mm_h, freq_ghz) <= self.margin_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rain_no_attenuation() {
        assert_eq!(specific_attenuation_db_per_km(0.0, 11.0), 0.0);
        assert_eq!(rain_attenuation_db(80.0, 0.0, 11.0), 0.0);
    }

    #[test]
    fn specific_attenuation_matches_itu_magnitudes() {
        // At 11 GHz and 25 mm/h the ITU model gives roughly 0.9 dB/km.
        let g = specific_attenuation_db_per_km(25.0, 11.0);
        assert!(g > 0.5 && g < 1.5, "γ = {g}");
        // At 100 mm/h (tropical downpour) several dB/km.
        let heavy = specific_attenuation_db_per_km(100.0, 11.0);
        assert!(heavy > 4.0 && heavy < 10.0, "γ = {heavy}");
    }

    #[test]
    fn attenuation_increases_with_frequency_and_rate() {
        assert!(
            specific_attenuation_db_per_km(30.0, 18.0) > specific_attenuation_db_per_km(30.0, 11.0)
        );
        assert!(
            specific_attenuation_db_per_km(30.0, 11.0) > specific_attenuation_db_per_km(30.0, 6.0)
        );
        assert!(
            specific_attenuation_db_per_km(60.0, 11.0) > specific_attenuation_db_per_km(20.0, 11.0)
        );
    }

    #[test]
    fn coefficient_interpolation_is_monotone_and_exact_at_knots() {
        let (k11, a11) = coefficients(11.0);
        assert!((k11 - 0.0179).abs() < 1e-6);
        assert!((a11 - 1.210).abs() < 1e-6);
        let (k9, _) = coefficients(9.0);
        let (k8, _) = coefficients(8.0);
        let (k10, _) = coefficients(10.0);
        assert!(k8 < k9 && k9 < k10);
    }

    #[test]
    fn effective_path_saturates_for_long_links() {
        let short = effective_path_km(10.0, 30.0);
        let long = effective_path_km(100.0, 30.0);
        assert!(short > 5.0 && short <= 10.0);
        assert!(
            long < 40.0,
            "long-path effective length should saturate, got {long}"
        );
        assert!(long > short);
    }

    #[test]
    fn fade_margin_binary_failure() {
        let margin = FadeMargin::default();
        // Drizzle never kills a hop.
        assert!(margin.survives(80.0, 2.0, 11.0));
        // A violent storm kills a long hop.
        assert!(!margin.survives(80.0, 90.0, 11.0));
        // The same storm over a very short hop may survive.
        assert!(margin.survives(3.0, 90.0, 11.0));
    }

    #[test]
    #[should_panic]
    fn out_of_band_frequency_rejected() {
        specific_attenuation_db_per_km(10.0, 30.0);
    }
}

//! Weather impairment analysis for microwave links (§6.1).
//!
//! Precipitation attenuates microwave signals. The paper treats the effect in
//! a binary way: if rain attenuation along a link exceeds the fade margin the
//! link is considered failed for that interval, and traffic falls back to the
//! shortest surviving route (any mix of microwave and fiber). Using a year of
//! NASA precipitation data sampled in 30-minute intervals, the paper shows
//! that 99th-percentile latencies are nearly identical to fair-weather
//! latencies and even the worst intervals stay well below fiber latency
//! (Fig. 7).
//!
//! This crate provides:
//!
//! * [`attenuation`] — the ITU-R P.838 specific-attenuation model
//!   (`γ = k·Rᵅ` dB/km) with coefficients around the paper's 11 GHz band and
//!   an effective-path-length correction.
//! * [`storms`] — a seeded synthetic precipitation year: seasonally modulated
//!   storm systems with spatially correlated rain fields, standing in for the
//!   TRMM/GPM rasters (see `DESIGN.md` §1).
//! * [`failures`] — per-interval link-outage computation for a designed
//!   topology.
//! * [`reroute`] — per-pair latency/stretch statistics across a year of
//!   intervals (best / 99th percentile / worst / fiber-only), i.e. the data
//!   behind Fig. 7.
//! * [`simulate`] — the queueing-aware variant: failed links are mapped onto
//!   the lowered packet network (`cisp_core::evaluate`), routes are
//!   recomputed around them, and the traffic is replayed through the packet
//!   engine, so storm scenarios report delivered latency and loss rather
//!   than geodesic stretch alone.

pub mod attenuation;
pub mod failures;
pub mod reroute;
pub mod simulate;
pub mod storms;

pub use attenuation::{rain_attenuation_db, specific_attenuation_db_per_km};
pub use failures::{link_failures, FailureConfig};
pub use reroute::{weather_year_analysis, WeatherYearReport};
pub use simulate::{storm_queueing_analysis, QueueingWeatherReport};
pub use storms::{StormField, StormYear, StormYearConfig};

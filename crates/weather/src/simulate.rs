//! Queueing-aware weather analysis: storms pushed through the packet
//! simulator.
//!
//! The geodesic rerouting analysis ([`crate::reroute`]) answers "how much
//! *propagation* latency does bad weather cost?". This module answers the
//! operational question behind it: when microwave links fail and their
//! traffic is re-routed onto the surviving (narrower) network, what happens
//! to *delivered* latency and loss once queueing is accounted for? Each
//! storm interval's failed links are mapped onto the lowered site-level
//! network via [`LoweredNetwork::mw_link_ids`], routes are recomputed
//! avoiding them, and the same demand set is replayed through the sharded
//! packet engine.
//!
//! Consecutive intervals with identical failure sets (calm spells, long
//! storms) reuse the previous interval's simulation result outright, the
//! same memoisation the geodesic year sweep uses.

use cisp_core::evaluate::{lower, EvaluateConfig, LoweredNetwork};
use cisp_core::topology::HybridTopology;
use cisp_graph::DistMatrix;
use cisp_netsim::sim::Simulation;
use cisp_netsim::SimReport;
use serde::{Deserialize, Serialize};

use crate::failures::{link_failures, FailureConfig};
use crate::storms::StormField;

/// One interval's queueing-aware outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalQueueing {
    /// Number of microwave links down this interval.
    pub failed_links: usize,
    /// Mean delivered one-way delay, milliseconds.
    pub mean_delay_ms: f64,
    /// 95th-percentile delivered one-way delay, milliseconds.
    pub p95_delay_ms: f64,
    /// Mean queueing delay per packet, milliseconds.
    pub mean_queue_delay_ms: f64,
    /// Fraction of offered packets lost.
    pub loss_rate: f64,
}

impl IntervalQueueing {
    fn from_report(report: &SimReport, failed_links: usize) -> Self {
        Self {
            failed_links,
            mean_delay_ms: report.mean_delay_ms,
            p95_delay_ms: report.p95_delay_ms,
            mean_queue_delay_ms: report.mean_queue_delay_ms,
            loss_rate: report.loss_rate,
        }
    }
}

/// The queueing-aware weather report: the fair-weather baseline plus one
/// entry per analysed storm interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueingWeatherReport {
    /// All-links-up baseline.
    pub fair: IntervalQueueing,
    /// Per-interval outcomes, in interval order.
    pub intervals: Vec<IntervalQueueing>,
}

impl QueueingWeatherReport {
    /// Worst mean delivered delay across intervals (the fair baseline when
    /// no intervals were analysed).
    pub fn worst_mean_delay_ms(&self) -> f64 {
        self.intervals
            .iter()
            .map(|i| i.mean_delay_ms)
            .fold(self.fair.mean_delay_ms, f64::max)
    }

    /// The `q`-quantile of the per-interval mean delivered delay.
    pub fn mean_delay_quantile_ms(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.intervals.is_empty() {
            return self.fair.mean_delay_ms;
        }
        let mut sorted: Vec<f64> = self.intervals.iter().map(|i| i.mean_delay_ms).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    /// Worst per-interval loss rate.
    pub fn worst_loss_rate(&self) -> f64 {
        self.intervals
            .iter()
            .map(|i| i.loss_rate)
            .fold(self.fair.loss_rate, f64::max)
    }

    /// Mean number of failed links per interval.
    pub fn mean_failed_links(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals
            .iter()
            .map(|i| i.failed_links as f64)
            .sum::<f64>()
            / self.intervals.len() as f64
    }
}

/// Run the queueing-aware weather analysis: lower the designed topology
/// once, then for every storm field fail the affected links, re-route the
/// demands around them, and replay the traffic through the packet engine.
pub fn storm_queueing_analysis(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    fields: &[StormField],
    failure_config: &FailureConfig,
    evaluate_config: &EvaluateConfig,
) -> QueueingWeatherReport {
    let lowered = lower(topology, offered_traffic, evaluate_config);
    let fair_report = lowered.simulation().run();
    let fair = IntervalQueueing::from_report(&fair_report, 0);

    let mut intervals = Vec::with_capacity(fields.len());
    let mut memo: Option<(Vec<usize>, IntervalQueueing)> = None;
    for field in fields {
        let failed = link_failures(topology, field, failure_config);
        if failed.is_empty() {
            intervals.push(fair.clone());
            continue;
        }
        if let Some((memo_failed, memo_interval)) = &memo {
            if memo_failed == &failed {
                intervals.push(memo_interval.clone());
                continue;
            }
        }
        let report = simulate_with_failures(&lowered, &failed);
        let interval = IntervalQueueing::from_report(&report, failed.len());
        intervals.push(interval.clone());
        memo = Some((failed, interval));
    }

    QueueingWeatherReport { fair, intervals }
}

/// One storm scenario: fail `failed_mw_links` (indices into
/// `topology.mw_links()`) on the lowered network, re-route, simulate.
pub fn simulate_with_failures(lowered: &LoweredNetwork, failed_mw_links: &[usize]) -> SimReport {
    lowered.simulation_without(failed_mw_links).run()
}

/// The delivered outcome of one conduit-cut scenario (or the uncut
/// baseline).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConduitCutOutcome {
    /// Number of conduit segments cut in this scenario.
    pub cut_segments: usize,
    /// Demands (of those with distinct endpoints) left with no surviving
    /// route at all.
    pub unroutable_demands: usize,
    /// Mean delivered one-way delay, milliseconds.
    pub mean_delay_ms: f64,
    /// 95th-percentile delivered one-way delay, milliseconds.
    pub p95_delay_ms: f64,
    /// Mean queueing delay per packet, milliseconds.
    pub mean_queue_delay_ms: f64,
    /// Fraction of offered packets lost.
    pub loss_rate: f64,
    /// Packets delivered.
    pub delivered: u64,
}

/// The conduit-cut report: the uncut baseline plus one outcome per cut
/// scenario, in scenario order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConduitCutReport {
    /// All-conduits-up baseline.
    pub baseline: ConduitCutOutcome,
    /// Per-scenario outcomes.
    pub cuts: Vec<ConduitCutOutcome>,
}

impl ConduitCutReport {
    /// Worst mean delivered delay across cut scenarios (the baseline when
    /// none were analysed).
    pub fn worst_mean_delay_ms(&self) -> f64 {
        self.cuts
            .iter()
            .map(|c| c.mean_delay_ms)
            .fold(self.baseline.mean_delay_ms, f64::max)
    }

    /// Worst loss rate across cut scenarios.
    pub fn worst_loss_rate(&self) -> f64 {
        self.cuts
            .iter()
            .map(|c| c.loss_rate)
            .fold(self.baseline.loss_rate, f64::max)
    }
}

/// Conduit segments ranked by how much traffic their simulator links
/// carried in `report` (most-loaded first, zero-utilisation segments
/// omitted) — the natural pick for "cut a loaded conduit" scenarios.
pub fn most_loaded_conduits(lowered: &LoweredNetwork, report: &SimReport) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = lowered
        .conduit_link_ids
        .iter()
        .enumerate()
        .filter(|&(_, &(fwd, _))| fwd != usize::MAX)
        .map(|(s, &(fwd, rev))| {
            (
                s,
                report.link_utilizations[fwd].max(report.link_utilizations[rev]),
            )
        })
        .filter(|&(_, u)| u > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.into_iter().map(|(s, _)| s).collect()
}

fn conduit_outcome(sim: &mut Simulation, cut_segments: usize) -> ConduitCutOutcome {
    let unroutable = sim
        .demands()
        .iter()
        .enumerate()
        .filter(|&(k, d)| d.src != d.dst && sim.routes().route(k).is_empty())
        .count();
    let report = sim.run();
    ConduitCutOutcome {
        cut_segments,
        unroutable_demands: unroutable,
        mean_delay_ms: report.mean_delay_ms,
        p95_delay_ms: report.p95_delay_ms,
        mean_queue_delay_ms: report.mean_queue_delay_ms,
        loss_rate: report.loss_rate,
        delivered: report.delivered,
    }
}

/// Fiber-cut analysis over a conduit-backed topology: for every scenario
/// (a set of conduit segment indices to sever), disable the affected
/// simulator links, recompute routes around them — surviving traffic
/// re-routes over the remaining conduits and the microwave spine — and
/// replay the same demand set through the packet engine. This is the
/// scenario family the paper's conduit grounding motivates and a
/// pre-flattened fiber matrix cannot express: cutting one physical
/// segment severs *every* route that shares it.
///
/// Panics unless `topology` is conduit-backed
/// ([`HybridTopology::with_conduits`]). Callers that have already lowered
/// the topology (e.g. to rank segments with [`most_loaded_conduits`])
/// should use [`conduit_cut_analysis_on`] instead, which reuses that
/// lowering and so cannot rank and cut under mismatched configurations.
pub fn conduit_cut_analysis(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    cut_scenarios: &[Vec<usize>],
    evaluate_config: &EvaluateConfig,
) -> ConduitCutReport {
    assert!(
        topology.conduits().is_some(),
        "conduit_cut_analysis needs a conduit-backed topology \
         (HybridTopology::with_conduits)"
    );
    conduit_cut_analysis_on(
        &lower(topology, offered_traffic, evaluate_config),
        cut_scenarios,
    )
}

/// [`conduit_cut_analysis`] over an existing conduit-backed lowering.
pub fn conduit_cut_analysis_on(
    lowered: &LoweredNetwork,
    cut_scenarios: &[Vec<usize>],
) -> ConduitCutReport {
    assert!(
        !lowered.conduit_link_ids.is_empty(),
        "conduit cut analysis needs a conduit-backed lowering"
    );
    let baseline = conduit_outcome(&mut lowered.simulation(), 0);
    let cuts = cut_scenarios
        .iter()
        .map(|cut| conduit_outcome(&mut lowered.simulation_without_conduits(cut), cut.len()))
        .collect();
    ConduitCutReport { baseline, cuts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storms::Storm;
    use cisp_core::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};
    use cisp_netsim::sim::SimConfig;

    /// A 4-site topology with MW links on a chain, fiber at 1.9×.
    fn test_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(41.9, -87.6),  // Chicago
            GeoPoint::new(39.1, -94.6),  // Kansas City
            GeoPoint::new(32.8, -96.8),  // Dallas
            GeoPoint::new(39.7, -105.0), // Denver
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    fn fast_config() -> EvaluateConfig {
        EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.4,
            sim: SimConfig {
                duration_s: 0.05,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        }
    }

    #[test]
    fn storms_raise_queueing_aware_latency_but_calm_skies_do_not() {
        let topo = test_topology();
        let calm = StormField::default();
        // A violent storm over Kansas City knocks out its links.
        let violent = StormField {
            storms: vec![Storm {
                center: GeoPoint::new(39.1, -94.6),
                radius_km: 400.0,
                peak_mm_h: 100.0,
            }],
        };
        let fields = vec![calm.clone(), violent.clone(), violent, calm];
        let report = storm_queueing_analysis(
            &topo,
            topo.traffic(),
            &fields,
            &FailureConfig::default(),
            &fast_config(),
        );
        assert_eq!(report.intervals.len(), 4);
        // Calm intervals equal the fair baseline exactly (memoised).
        assert_eq!(report.intervals[0].mean_delay_ms, report.fair.mean_delay_ms);
        assert_eq!(report.intervals[3].failed_links, 0);
        // The stormy intervals failed links and pay latency for it.
        assert!(report.intervals[1].failed_links > 0);
        assert!(report.intervals[1].mean_delay_ms > report.fair.mean_delay_ms);
        // Identical consecutive failure sets are memoised to identical rows.
        assert_eq!(
            report.intervals[1].mean_delay_ms,
            report.intervals[2].mean_delay_ms
        );
        assert!(report.worst_mean_delay_ms() >= report.fair.mean_delay_ms);
        assert!(report.mean_failed_links() > 0.0);
        assert!(report.mean_delay_quantile_ms(0.5) >= report.fair.mean_delay_ms);
        assert!(report.worst_loss_rate() >= 0.0);
    }

    /// The 4-site topology conduit-backed: a conduit chain through Kansas
    /// City plus a direct Chicago–Denver conduit, no MW spine — every
    /// demand rides the conduits, so cuts bite.
    fn conduit_topology() -> HybridTopology {
        use cisp_core::topology::{FiberLink, FiberNetwork};
        let sites = vec![
            GeoPoint::new(41.9, -87.6),  // Chicago
            GeoPoint::new(39.1, -94.6),  // Kansas City
            GeoPoint::new(32.8, -96.8),  // Dallas
            GeoPoint::new(39.7, -105.0), // Denver
        ];
        let n = sites.len();
        let seg = |a: usize, b: usize, factor: f64| FiberLink {
            a,
            b,
            route_km: cisp_geo::geodesic::distance_km(sites[a], sites[b]) * factor,
        };
        let fiber = FiberNetwork::from_parts(
            sites.clone(),
            vec![
                seg(0, 1, 1.25),
                seg(1, 2, 1.25),
                seg(1, 3, 1.25),
                seg(0, 3, 1.4),
            ],
        );
        let traffic = vec![vec![1.0; n]; n];
        HybridTopology::with_conduits(sites, traffic, &fiber)
    }

    #[test]
    fn cutting_a_loaded_conduit_strictly_degrades_delivery() {
        let topo = conduit_topology();
        let config = EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.5,
            // Fiber capacity in demand range, so re-routed traffic both
            // lengthens paths and congests the survivors.
            fiber_rate_bps: 2e9,
            sim: SimConfig {
                duration_s: 0.05,
                ..SimConfig::default()
            },
            ..EvaluateConfig::default()
        };
        let lowered = lower(&topo, topo.traffic(), &config);
        let baseline_report = lowered.simulation().run();
        let ranked = most_loaded_conduits(&lowered, &baseline_report);
        assert!(!ranked.is_empty(), "baseline must load some conduit");

        // Cut the most-loaded conduit alone, then the two most-loaded.
        let scenarios = vec![vec![ranked[0]], ranked.iter().copied().take(2).collect()];
        let report = conduit_cut_analysis(&topo, topo.traffic(), &scenarios, &config);
        assert_eq!(report.baseline.cut_segments, 0);
        assert_eq!(report.baseline.unroutable_demands, 0);
        assert!(report.baseline.delivered > 0);
        assert_eq!(report.cuts.len(), 2);
        for cut in &report.cuts {
            assert!(cut.delivered > 0, "the conduit graph survives these cuts");
            // Severing a loaded conduit must strictly worsen delivered
            // latency or loss — the acceptance invariant.
            assert!(
                cut.mean_delay_ms > report.baseline.mean_delay_ms
                    || cut.loss_rate > report.baseline.loss_rate,
                "cutting {} loaded segment(s) did not degrade delivery \
                 (delay {} vs {}, loss {} vs {})",
                cut.cut_segments,
                cut.mean_delay_ms,
                report.baseline.mean_delay_ms,
                cut.loss_rate,
                report.baseline.loss_rate
            );
        }
        assert!(report.worst_mean_delay_ms() >= report.baseline.mean_delay_ms);
        assert!(report.worst_loss_rate() >= report.baseline.loss_rate);
    }

    #[test]
    fn cutting_every_conduit_leaves_demands_unroutable() {
        let topo = conduit_topology();
        let config = fast_config();
        let all: Vec<usize> = (0..topo.conduits().unwrap().num_segments()).collect();
        let report = conduit_cut_analysis(&topo, topo.traffic(), &[all], &config);
        let cut = &report.cuts[0];
        assert_eq!(cut.cut_segments, 4);
        // No MW spine and no conduits: every distinct-endpoint demand dies.
        assert_eq!(cut.unroutable_demands, 12);
        assert_eq!(cut.delivered, 0);
        assert_eq!(cut.mean_delay_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "conduit-backed")]
    fn conduit_cut_analysis_rejects_matrix_backed_topologies() {
        let topo = test_topology();
        conduit_cut_analysis(&topo, topo.traffic(), &[], &fast_config());
    }
}

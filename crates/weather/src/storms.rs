//! A synthetic year of precipitation (the TRMM/GPM stand-in).
//!
//! The paper samples one random 30-minute interval per day over a year of
//! NASA precipitation data and asks which links the rain would take down
//! (§6.1). This module generates an equivalent synthetic year: every daily
//! interval gets a set of storm systems whose number, intensity and size
//! follow a seasonal cycle (more, stronger convective storms in summer;
//! broader, weaker systems in winter). Rain rate at a point is the sum of
//! Gaussian storm-cell contributions, giving the spatial correlation that
//! makes *regional* groups of links fail together — the property Fig. 7
//! depends on.

use cisp_geo::{geodesic, GeoPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single storm cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Storm {
    /// Storm centre.
    pub center: GeoPoint,
    /// Characteristic radius (Gaussian sigma), km.
    pub radius_km: f64,
    /// Peak rain rate at the centre, mm/h.
    pub peak_mm_h: f64,
}

impl Storm {
    /// Rain rate contributed by this storm at a point.
    pub fn rain_at(&self, p: GeoPoint) -> f64 {
        let d = geodesic::distance_km(self.center, p);
        if d > 4.0 * self.radius_km {
            return 0.0;
        }
        let x = d / self.radius_km;
        self.peak_mm_h * (-0.5 * x * x).exp()
    }
}

/// The storm field of one 30-minute interval.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StormField {
    /// Active storms during the interval.
    pub storms: Vec<Storm>,
}

impl StormField {
    /// Total rain rate at a point (mm/h).
    pub fn rain_at(&self, p: GeoPoint) -> f64 {
        self.storms.iter().map(|s| s.rain_at(p)).sum()
    }

    /// Maximum rain rate along a great-circle path, sampled every ~10 km.
    pub fn max_rain_along(&self, a: GeoPoint, b: GeoPoint) -> f64 {
        let d = geodesic::distance_km(a, b);
        let samples = ((d / 10.0).ceil() as usize).clamp(2, 64);
        geodesic::sample_path(a, b, samples)
            .into_iter()
            .map(|p| self.rain_at(p))
            .fold(0.0, f64::max)
    }
}

/// Configuration of the synthetic storm year.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StormYearConfig {
    /// Bounding box `(min_lat, max_lat, min_lon, max_lon)` storms appear in.
    pub bbox: (f64, f64, f64, f64),
    /// Mean number of storm systems per interval in mid-summer.
    pub summer_mean_storms: f64,
    /// Mean number of storm systems per interval in mid-winter.
    pub winter_mean_storms: f64,
    /// Number of daily intervals (the paper uses one per day for a year).
    pub days: usize,
}

impl StormYearConfig {
    /// The default configuration for the contiguous US.
    pub fn us_default() -> Self {
        Self {
            bbox: (24.5, 49.5, -125.0, -66.5),
            summer_mean_storms: 6.0,
            winter_mean_storms: 3.0,
            days: 365,
        }
    }
}

/// A year of daily 30-minute storm fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormYear {
    fields: Vec<StormField>,
}

impl StormYear {
    /// Generate the synthetic year.
    pub fn generate(seed: u64, config: &StormYearConfig) -> Self {
        assert!(config.days >= 1);
        let (min_lat, max_lat, min_lon, max_lon) = config.bbox;
        assert!(max_lat > min_lat && max_lon > min_lon);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5701_2117);
        let mut fields = Vec::with_capacity(config.days);
        for day in 0..config.days {
            // Seasonal factor: 1 at mid-summer (day ~196), 0 at mid-winter.
            let season = 0.5 + 0.5 * ((day as f64 - 196.0) / 365.0 * std::f64::consts::TAU).cos();
            let mean = config.winter_mean_storms
                + season * (config.summer_mean_storms - config.winter_mean_storms);
            // Poisson-ish count via repeated Bernoulli thinning.
            let count = {
                let mut c = 0usize;
                let lambda = mean;
                let l = (-lambda).exp();
                let mut p = 1.0;
                loop {
                    p *= rng.gen::<f64>();
                    if p < l {
                        break;
                    }
                    c += 1;
                }
                c
            };
            let mut storms = Vec::with_capacity(count);
            for _ in 0..count {
                let center = GeoPoint::new(
                    min_lat + rng.gen::<f64>() * (max_lat - min_lat),
                    min_lon + rng.gen::<f64>() * (max_lon - min_lon),
                );
                // Summer: smaller, more intense convective cells; winter:
                // broad, weaker systems.
                let convective = rng.gen::<f64>() < 0.3 + 0.5 * season;
                let (radius_km, peak_mm_h) = if convective {
                    (
                        20.0 + rng.gen::<f64>() * 60.0,
                        25.0 + rng.gen::<f64>() * 85.0,
                    )
                } else {
                    (
                        80.0 + rng.gen::<f64>() * 200.0,
                        3.0 + rng.gen::<f64>() * 17.0,
                    )
                };
                storms.push(Storm {
                    center,
                    radius_km,
                    peak_mm_h,
                });
            }
            fields.push(StormField { storms });
        }
        Self { fields }
    }

    /// The per-day storm fields.
    pub fn fields(&self) -> &[StormField] {
        &self.fields
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the year has no intervals (never true for a generated year).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_rain_decays_with_distance() {
        let storm = Storm {
            center: GeoPoint::new(40.0, -95.0),
            radius_km: 50.0,
            peak_mm_h: 60.0,
        };
        assert!((storm.rain_at(storm.center) - 60.0).abs() < 1e-9);
        let near = storm.rain_at(GeoPoint::new(40.3, -95.0));
        let far = storm.rain_at(GeoPoint::new(42.0, -95.0));
        assert!(near > far);
        assert_eq!(storm.rain_at(GeoPoint::new(45.0, -80.0)), 0.0);
    }

    #[test]
    fn field_sums_overlapping_storms() {
        let field = StormField {
            storms: vec![
                Storm {
                    center: GeoPoint::new(40.0, -95.0),
                    radius_km: 50.0,
                    peak_mm_h: 30.0,
                },
                Storm {
                    center: GeoPoint::new(40.0, -95.2),
                    radius_km: 50.0,
                    peak_mm_h: 30.0,
                },
            ],
        };
        assert!(field.rain_at(GeoPoint::new(40.0, -95.1)) > 30.0);
    }

    #[test]
    fn max_rain_along_detects_mid_path_storm() {
        let a = GeoPoint::new(40.0, -100.0);
        let b = GeoPoint::new(40.0, -90.0);
        let mid = geodesic::intermediate(a, b, 0.5);
        let field = StormField {
            storms: vec![Storm {
                center: mid,
                radius_km: 40.0,
                peak_mm_h: 80.0,
            }],
        };
        assert!(field.max_rain_along(a, b) > 70.0);
        // Endpoints far from the storm see little rain.
        assert!(field.rain_at(a) < 5.0);
    }

    #[test]
    fn year_generation_is_deterministic_and_sized() {
        let cfg = StormYearConfig {
            days: 60,
            ..StormYearConfig::us_default()
        };
        let a = StormYear::generate(3, &cfg);
        let b = StormYear::generate(3, &cfg);
        let c = StormYear::generate(4, &cfg);
        assert_eq!(a.len(), 60);
        assert_eq!(a.fields()[10].storms.len(), b.fields()[10].storms.len());
        let total_a: usize = a.fields().iter().map(|f| f.storms.len()).sum();
        let total_c: usize = c.fields().iter().map(|f| f.storms.len()).sum();
        assert_ne!(total_a, total_c);
    }

    #[test]
    fn storms_stay_in_bbox_and_have_sane_parameters() {
        let cfg = StormYearConfig {
            days: 120,
            ..StormYearConfig::us_default()
        };
        let year = StormYear::generate(9, &cfg);
        for field in year.fields() {
            for s in &field.storms {
                assert!(s.center.lat_deg >= 24.5 && s.center.lat_deg <= 49.5);
                assert!(s.center.lon_deg >= -125.0 && s.center.lon_deg <= -66.5);
                assert!(s.radius_km > 0.0 && s.radius_km <= 280.0);
                assert!(s.peak_mm_h > 0.0 && s.peak_mm_h <= 110.0);
            }
        }
    }

    #[test]
    fn summer_is_stormier_than_winter() {
        let cfg = StormYearConfig {
            days: 365,
            ..StormYearConfig::us_default()
        };
        let year = StormYear::generate(11, &cfg);
        let winter: usize = (0..60).map(|d| year.fields()[d].storms.len()).sum();
        let summer: usize = (170..230).map(|d| year.fields()[d].storms.len()).sum();
        assert!(summer > winter, "summer {summer} vs winter {winter}");
    }
}

//! Latency under weather: the year-long rerouting analysis behind Fig. 7.
//!
//! For each interval of the storm year, the failed links are removed and
//! every site pair falls back to its shortest surviving route (microwave
//! and/or fiber — the paper notes that heavy precipitation is predictable
//! minutes ahead, so even slow centralised rerouting suffices). Per pair we
//! record the best, worst and 99th-percentile stretch across the year, plus
//! the fiber-only stretch for comparison; Fig. 7 plots the CDFs of these four
//! series over all pairs.

use cisp_core::topology::HybridTopology;
use cisp_geo::latency;
use cisp_graph::{pair_indices, UpperTriangleMatrix};
use serde::{Deserialize, Serialize};

use crate::failures::{link_failures, FailureConfig};
use crate::storms::StormYear;

/// Per-pair stretch statistics across the year.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairWeatherStats {
    /// First site of the pair.
    pub site_a: usize,
    /// Second site of the pair.
    pub site_b: usize,
    /// Best (fair-weather) stretch.
    pub best: f64,
    /// 99th-percentile stretch across intervals.
    pub p99: f64,
    /// Worst stretch across intervals.
    pub worst: f64,
    /// Fiber-only stretch (no microwave at all).
    pub fiber_only: f64,
}

/// The full year analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeatherYearReport {
    /// Per-pair statistics.
    pub pairs: Vec<PairWeatherStats>,
    /// Number of intervals analysed.
    pub intervals: usize,
    /// Mean number of failed links per interval.
    pub mean_failed_links: f64,
}

impl WeatherYearReport {
    /// Extract one of the four CDF series of Fig. 7, sorted ascending.
    pub fn sorted_series(&self, which: WeatherSeries) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .pairs
            .iter()
            .map(|p| match which {
                WeatherSeries::Best => p.best,
                WeatherSeries::P99 => p.p99,
                WeatherSeries::Worst => p.worst,
                WeatherSeries::FiberOnly => p.fiber_only,
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Median of a series across pairs.
    pub fn median(&self, which: WeatherSeries) -> f64 {
        let s = self.sorted_series(which);
        if s.is_empty() {
            return f64::NAN;
        }
        s[(s.len() - 1) / 2]
    }
}

/// Which Fig. 7 series to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeatherSeries {
    /// Fair-weather (all links up) stretch.
    Best,
    /// 99th-percentile stretch across the year.
    P99,
    /// Worst interval's stretch.
    Worst,
    /// Stretch if only fiber existed.
    FiberOnly,
}

/// Run the year-long weather analysis on a designed topology.
pub fn weather_year_analysis(
    topology: &HybridTopology,
    year: &StormYear,
    config: &FailureConfig,
) -> WeatherYearReport {
    assert!(!year.is_empty());
    let n = topology.num_sites();

    // Fair-weather and fiber-only baselines.
    let best_matrix = topology.effective_matrix();
    let fiber_matrix = topology.fiber_matrix();

    // Per-interval stretch samples, one slot per analysed pair (positive
    // geodesic distance only). The per-interval effective matrix is rebuilt
    // into one reusable upper-triangle scratch buffer — the sweep only reads
    // unordered pairs, so symmetric storage halves the scratch memory
    // traffic — and consecutive intervals with an identical failure set
    // (common during calm spells and long storms) reuse the previous
    // rebuild outright.
    let analysed: Vec<(usize, usize)> = pair_indices(n)
        .filter(|&(i, j)| topology.geodesic_km(i, j) > 0.0)
        .collect();
    let mut samples: Vec<Vec<f64>> = analysed
        .iter()
        .map(|_| Vec::with_capacity(year.len()))
        .collect();
    let mut failed_total = 0usize;
    let mut scratch = UpperTriangleMatrix::zeros(n);
    let mut scratch_failed: Option<Vec<usize>> = None;
    for field in year.fields() {
        let failed = link_failures(topology, field, config);
        failed_total += failed.len();
        if failed.is_empty() {
            for (slot, &(i, j)) in samples.iter_mut().zip(&analysed) {
                slot.push(latency::distance_stretch(
                    best_matrix[i][j],
                    topology.geodesic_km(i, j),
                ));
            }
        } else {
            if scratch_failed.as_deref() != Some(failed.as_slice()) {
                topology.effective_matrix_without_into_tri(&failed, &mut scratch);
                scratch_failed = Some(failed);
            }
            for (slot, &(i, j)) in samples.iter_mut().zip(&analysed) {
                slot.push(latency::distance_stretch(
                    scratch.get(i, j),
                    topology.geodesic_km(i, j),
                ));
            }
        }
    }

    let mut pairs = Vec::new();
    for (s, &(i, j)) in samples.iter_mut().zip(&analysed) {
        if s.is_empty() {
            continue;
        }
        let geo = topology.geodesic_km(i, j);
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99_idx = ((s.len() - 1) as f64 * 0.99).round() as usize;
        pairs.push(PairWeatherStats {
            site_a: i,
            site_b: j,
            best: latency::distance_stretch(best_matrix[i][j], geo),
            p99: s[p99_idx],
            worst: *s.last().unwrap(),
            fiber_only: latency::distance_stretch(fiber_matrix[i][j], geo),
        });
    }

    WeatherYearReport {
        intervals: year.len(),
        mean_failed_links: failed_total as f64 / year.len() as f64,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storms::StormYearConfig;
    use cisp_core::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    /// A 5-site topology spanning the central US with direct MW links on a
    /// few pairs, fiber at 1.9× elsewhere.
    fn test_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(41.9, -87.6),  // Chicago
            GeoPoint::new(39.1, -94.6),  // Kansas City
            GeoPoint::new(32.8, -96.8),  // Dallas
            GeoPoint::new(39.7, -105.0), // Denver
            GeoPoint::new(33.4, -112.1), // Phoenix
        ];
        let n = sites.len();
        let traffic = vec![vec![1.0; n]; n];
        let fiber: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        for (a, b) in [(0usize, 1usize), (1, 2), (1, 3), (3, 4)] {
            let geo = geodesic::distance_km(sites[a], sites[b]);
            topo.add_mw_link(CandidateLink {
                site_a: a.min(b),
                site_b: a.max(b),
                mw_length_km: geo * 1.04,
                tower_count: (geo / 80.0).ceil() as usize,
                tower_path: vec![0; 3],
            });
        }
        topo
    }

    fn short_year(seed: u64, days: usize) -> StormYear {
        StormYear::generate(
            seed,
            &StormYearConfig {
                days,
                ..StormYearConfig::us_default()
            },
        )
    }

    #[test]
    fn report_covers_all_pairs_and_orders_series() {
        let topo = test_topology();
        let year = short_year(3, 40);
        let report = weather_year_analysis(&topo, &year, &FailureConfig::default());
        assert_eq!(report.intervals, 40);
        assert_eq!(report.pairs.len(), 10);
        for p in &report.pairs {
            assert!(p.best >= 1.0 - 1e-9);
            assert!(p.p99 >= p.best - 1e-9, "p99 {} < best {}", p.p99, p.best);
            assert!(p.worst >= p.p99 - 1e-9);
            // Weather can never make a pair worse than pure fiber.
            assert!(p.worst <= p.fiber_only + 1e-9);
            assert!(p.fiber_only <= 1.9 + 1e-9);
        }
    }

    #[test]
    fn fair_weather_best_matches_topology_stretch() {
        let topo = test_topology();
        let year = short_year(5, 10);
        let report = weather_year_analysis(&topo, &year, &FailureConfig::default());
        for p in &report.pairs {
            assert!((p.best - topo.stretch(p.site_a, p.site_b)).abs() < 1e-9);
        }
    }

    #[test]
    fn storms_cause_some_failures_but_p99_stays_low() {
        let topo = test_topology();
        let year = short_year(7, 120);
        let report = weather_year_analysis(&topo, &year, &FailureConfig::default());
        // The synthetic year should include at least some severe weather.
        assert!(report.mean_failed_links >= 0.0);
        // Median 99th-percentile stretch stays well below fiber (Fig. 7's
        // headline: "99th-percentile latencies are nearly the same as the
        // best").
        let p99_median = report.median(WeatherSeries::P99);
        let fiber_median = report.median(WeatherSeries::FiberOnly);
        assert!(
            p99_median < fiber_median,
            "p99 {p99_median} should beat fiber {fiber_median}"
        );
    }

    #[test]
    fn sorted_series_is_ascending() {
        let topo = test_topology();
        let year = short_year(9, 30);
        let report = weather_year_analysis(&topo, &year, &FailureConfig::default());
        for which in [
            WeatherSeries::Best,
            WeatherSeries::P99,
            WeatherSeries::Worst,
            WeatherSeries::FiberOnly,
        ] {
            let s = report.sorted_series(which);
            for w in s.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }
}

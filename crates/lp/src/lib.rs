//! A from-scratch linear-programming and mixed-integer-programming solver.
//!
//! The paper solves its network-design ILP with Gurobi (§3.2, §4). No
//! comparable solver is available as a pure-Rust offline dependency, so this
//! crate provides the minimal solver stack the reproduction needs:
//!
//! * [`model`] — a small modelling layer: variables with bounds and
//!   integrality, linear expressions, constraints, minimisation objective.
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule for the LP relaxations.
//! * [`branch_bound`] — best-first branch-and-bound on fractional integer
//!   variables, with incumbent tracking and optional node limits, producing
//!   proven-optimal MILP solutions on the small instances the evaluation
//!   needs (the paper's own point in Fig. 2 is that exact ILP does not
//!   scale; ours hits its wall sooner than Gurobi's, which only shifts the
//!   curve of Fig. 2(a), not its shape).
//!
//! The solver is dense and entirely deterministic. It is *not* a
//! general-purpose replacement for a commercial solver — it is sized for the
//! validation experiments of the cISP reproduction (a few hundred variables
//! and constraints) and for the unit-scale problems in its own test-suite.
//!
//! # Example
//!
//! ```
//! use cisp_lp::model::{Problem, VarKind};
//! use cisp_lp::branch_bound::solve_milp;
//!
//! // A tiny knapsack: maximise 8x0 + 11x1 + 6x2 subject to
//! // 5x0 + 7x1 + 4x2 <= 14, x binary  (optimum: x0 = x1 = 1, value 19).
//! let mut p = Problem::minimize();
//! let x0 = p.add_var("x0", VarKind::Binary, -8.0);
//! let x1 = p.add_var("x1", VarKind::Binary, -11.0);
//! let x2 = p.add_var("x2", VarKind::Binary, -6.0);
//! p.add_le(vec![(x0, 5.0), (x1, 7.0), (x2, 4.0)], 14.0);
//!
//! let sol = solve_milp(&p, &Default::default()).expect("solvable");
//! assert!((sol.objective + 19.0).abs() < 1e-6);
//! assert!(sol.values[x0.index()] > 0.5 && sol.values[x1.index()] > 0.5);
//! ```

pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use branch_bound::{solve_milp, MilpOptions, MilpSolution};
pub use model::{Problem, VarId, VarKind};
pub use simplex::{solve_lp, LpError, LpSolution};

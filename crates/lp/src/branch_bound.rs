//! Best-first branch-and-bound for mixed-integer programs.
//!
//! The algorithm is the textbook one:
//!
//! 1. solve the LP relaxation of the node (with branching bounds applied as
//!    extra constraints),
//! 2. prune if infeasible or if the bound is no better than the incumbent,
//! 3. if the relaxation is integral, update the incumbent,
//! 4. otherwise branch on the most fractional integer variable, creating a
//!    "floor" child and a "ceil" child.
//!
//! Nodes are explored best-bound-first (a min-heap on the relaxation value),
//! which gives good incumbents early and makes the node limit a graceful
//! degradation knob rather than a cliff.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::model::{Problem, Sense, VarId, VarKind};
use crate::simplex::{solve_lp, LpError};

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock limit for the search.
    pub time_limit: Option<Duration>,
    /// Absolute optimality gap at which the search may stop early.
    pub absolute_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            max_nodes: 200_000,
            time_limit: None,
            absolute_gap: 1e-9,
        }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Objective value of the best integral solution found.
    pub objective: f64,
    /// Variable values of the best integral solution.
    pub values: Vec<f64>,
    /// Whether optimality was proven (search space exhausted or gap closed)
    /// rather than the search stopping on a node/time limit.
    pub proven_optimal: bool,
    /// Number of branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Errors from the MILP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpError {
    /// No integral feasible solution exists (or none was found before the
    /// relaxation proved infeasibility).
    Infeasible,
    /// The relaxation is unbounded, so the MILP is ill-posed for minimisation.
    Unbounded,
    /// Search limits were hit before any integral solution was found.
    LimitReached,
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "MILP is infeasible"),
            MilpError::Unbounded => write!(f, "MILP relaxation is unbounded"),
            MilpError::LimitReached => {
                write!(
                    f,
                    "node or time limit reached before finding a feasible solution"
                )
            }
        }
    }
}

impl std::error::Error for MilpError {}

/// A branching decision: an additional bound on one variable.
#[derive(Debug, Clone, Copy)]
struct Branch {
    var: usize,
    sense: Sense,
    bound: f64,
}

/// A node in the search tree.
struct Node {
    bound: f64,
    branches: Vec<Branch>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound: reverse the comparison.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Apply a node's branching bounds to a copy of the relaxed problem.
fn problem_with_branches(relaxed: &Problem, branches: &[Branch]) -> Problem {
    let mut p = relaxed.clone();
    for b in branches {
        p.add_constraint(vec![(VarId(b.var), 1.0)], b.sense, b.bound);
    }
    p
}

/// Find the most fractional integer variable in an LP solution, if any.
fn most_fractional(problem: &Problem, values: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (var, value, distance from 0.5)
    for idx in problem.integer_vars() {
        let v = values[idx];
        let frac = v - v.floor();
        if frac > INT_TOL && frac < 1.0 - INT_TOL {
            let dist = (frac - 0.5).abs();
            match best {
                None => best = Some((idx, v, dist)),
                Some((_, _, d0)) if dist < d0 => best = Some((idx, v, dist)),
                _ => {}
            }
        }
    }
    best.map(|(idx, v, _)| (idx, v))
}

/// Round an LP solution to the nearest integers and keep it only if feasible.
/// Cheap incumbent heuristic that often succeeds on set-cover-like problems.
fn rounding_heuristic(problem: &Problem, values: &[f64]) -> Option<Vec<f64>> {
    let mut rounded = values.to_vec();
    for idx in problem.integer_vars() {
        rounded[idx] = rounded[idx].round();
        if matches!(problem.variables()[idx].kind, VarKind::Binary) {
            rounded[idx] = rounded[idx].clamp(0.0, 1.0);
        }
    }
    if problem.is_feasible(&rounded, 1e-6) {
        Some(rounded)
    } else {
        None
    }
}

/// Solve a mixed-integer program by branch and bound.
///
/// Returns the best integral solution found; `proven_optimal` indicates
/// whether the search completed. Errors follow [`MilpError`].
pub fn solve_milp(problem: &Problem, options: &MilpOptions) -> Result<MilpSolution, MilpError> {
    let start = Instant::now();
    let relaxed = problem.relaxed();

    // Root relaxation.
    let root = match solve_lp(&relaxed) {
        Ok(sol) => sol,
        Err(LpError::Infeasible) => return Err(MilpError::Infeasible),
        Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
        Err(LpError::IterationLimit) => return Err(MilpError::LimitReached),
    };

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    // Try the rounding heuristic on the root relaxation.
    if let Some(r) = rounding_heuristic(problem, &root.values) {
        incumbent = Some((problem.objective_value(&r), r));
    }
    // The root relaxation may already be integral.
    if most_fractional(problem, &root.values).is_none() && problem.is_feasible(&root.values, 1e-6) {
        return Ok(MilpSolution {
            objective: root.objective,
            values: root.values,
            proven_optimal: true,
            nodes_explored: 1,
        });
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        branches: Vec::new(),
    });

    let mut nodes_explored = 0usize;
    let mut exhausted = true;

    while let Some(node) = heap.pop() {
        if nodes_explored >= options.max_nodes {
            exhausted = false;
            break;
        }
        if let Some(limit) = options.time_limit {
            if start.elapsed() > limit {
                exhausted = false;
                break;
            }
        }
        // Bound pruning against the incumbent.
        if let Some((best_obj, _)) = &incumbent {
            if node.bound >= *best_obj - options.absolute_gap {
                // Best-first order ⇒ every remaining node is at least as bad.
                break;
            }
        }
        nodes_explored += 1;

        let node_problem = problem_with_branches(&relaxed, &node.branches);
        let lp = match solve_lp(&node_problem) {
            Ok(sol) => sol,
            Err(LpError::Infeasible) => continue,
            Err(LpError::Unbounded) => return Err(MilpError::Unbounded),
            Err(LpError::IterationLimit) => {
                exhausted = false;
                continue;
            }
        };

        if let Some((best_obj, _)) = &incumbent {
            if lp.objective >= *best_obj - options.absolute_gap {
                continue;
            }
        }

        match most_fractional(problem, &lp.values) {
            None => {
                // Integral (within tolerance): candidate incumbent.
                let mut vals = lp.values.clone();
                for idx in problem.integer_vars() {
                    vals[idx] = vals[idx].round();
                }
                if problem.is_feasible(&vals, 1e-6) {
                    let obj = problem.objective_value(&vals);
                    if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                        incumbent = Some((obj, vals));
                    }
                }
            }
            Some((var, value)) => {
                // Occasionally try rounding for an early incumbent.
                if nodes_explored % 16 == 1 {
                    if let Some(r) = rounding_heuristic(problem, &lp.values) {
                        let obj = problem.objective_value(&r);
                        if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                            incumbent = Some((obj, r));
                        }
                    }
                }
                let mut down = node.branches.clone();
                down.push(Branch {
                    var,
                    sense: Sense::Le,
                    bound: value.floor(),
                });
                let mut up = node.branches.clone();
                up.push(Branch {
                    var,
                    sense: Sense::Ge,
                    bound: value.ceil(),
                });
                heap.push(Node {
                    bound: lp.objective,
                    branches: down,
                });
                heap.push(Node {
                    bound: lp.objective,
                    branches: up,
                });
            }
        }
    }

    match incumbent {
        Some((objective, values)) => Ok(MilpSolution {
            objective,
            values,
            proven_optimal: exhausted,
            nodes_explored,
        }),
        None => {
            if exhausted {
                Err(MilpError::Infeasible)
            } else {
                Err(MilpError::LimitReached)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn knapsack_small() {
        // maximise 10x0 + 13x1 + 7x2 + 4x3, weights 5,6,4,3, capacity 10.
        // Optimum: items 1 and 2 (13 + 7 = 20, weight 10).
        let values = [10.0, 13.0, 7.0, 4.0];
        let weights = [5.0, 6.0, 4.0, 3.0];
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..4)
            .map(|i| p.add_var(&format!("x{i}"), VarKind::Binary, -values[i]))
            .collect();
        p.add_le(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            10.0,
        );
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_close(sol.objective, -20.0);
        assert!(sol.proven_optimal);
        assert!(sol.values[vars[1].index()] > 0.5);
        assert!(sol.values[vars[2].index()] > 0.5);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // maximise x + y s.t. 2x + 3y <= 12, 3x + 2y <= 12, integer.
        // LP optimum x = y = 2.4 (value 4.8); ILP optimum 4 (e.g. x=2,y=2 or 3/1).
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, -1.0);
        let y = p.add_var("y", VarKind::Integer, -1.0);
        p.add_le(vec![(x, 2.0), (y, 3.0)], 12.0);
        p.add_le(vec![(x, 3.0), (y, 2.0)], 12.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_close(sol.objective, -4.0);
        assert!(sol.proven_optimal);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn assignment_problem_is_integral() {
        // 3x3 assignment; costs chosen so optimum = 1 + 2 + 3 = 6 on the
        // diagonal of the permuted matrix.
        let costs = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut p = Problem::minimize();
        let mut vars = [[VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = p.add_var(&format!("x{i}{j}"), VarKind::Binary, costs[i][j]);
            }
        }
        for i in 0..3 {
            p.add_eq((0..3).map(|j| (vars[i][j], 1.0)).collect(), 1.0);
            p.add_eq((0..3).map(|j| (vars[j][i], 1.0)).collect(), 1.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        // Optimal assignment: row0→col1 (1), row1→col0 (2), row2→col2 (2) = 5.
        assert_close(sol.objective, 5.0);
        assert!(sol.proven_optimal);
    }

    #[test]
    fn infeasible_milp() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Binary, 1.0);
        let y = p.add_var("y", VarKind::Binary, 1.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        assert_eq!(
            solve_milp(&p, &MilpOptions::default()).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn already_integral_root() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 1.0);
        p.add_ge(vec![(x, 1.0)], 3.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_close(sol.objective, 3.0);
        assert_eq!(sol.nodes_explored, 1);
    }

    #[test]
    fn node_limit_reports_not_proven() {
        // A knapsack big enough to need more than one node, with max_nodes=1.
        let mut p = Problem::minimize();
        let weights = [3.0, 5.0, 7.0, 11.0, 13.0, 17.0];
        let values = [3.1, 5.2, 7.7, 11.3, 13.9, 17.1];
        let vars: Vec<_> = (0..6)
            .map(|i| p.add_var(&format!("x{i}"), VarKind::Binary, -values[i]))
            .collect();
        p.add_le(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            23.0,
        );
        let opts = MilpOptions {
            max_nodes: 1,
            ..Default::default()
        };
        match solve_milp(&p, &opts) {
            Ok(sol) => assert!(!sol.proven_optimal || sol.nodes_explored <= 1),
            Err(MilpError::LimitReached) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // minimise x + 10 y, x continuous >= 0, y binary;
        // constraint x + 6 y >= 5 → either y=1 (cost 10 + 0·x? x can be 0 →
        // need x >= -1 → x=0, cost 10) or y=0, x=5 (cost 5). Optimum 5.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 1.0);
        let y = p.add_var("y", VarKind::Binary, 10.0);
        p.add_ge(vec![(x, 1.0), (y, 6.0)], 5.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_close(sol.objective, 5.0);
        assert!(sol.values[x.index()] > 4.9);
        assert!(sol.values[y.index()] < 0.5);
    }

    #[test]
    fn set_cover_instance() {
        // Universe {1..5}; sets A={1,2,3} cost 3, B={2,4} cost 2, C={3,4,5}
        // cost 3, D={1,5} cost 2, E={1,2,3,4,5} cost 6.
        // Optimal cover: A + C = 6 or B + D + ... let's check: B+D covers
        // {1,2,4,5} missing 3 → +A or C → 7. A+C = 6, E alone = 6. So 6.
        let sets: &[(&[usize], f64)] = &[
            (&[1, 2, 3], 3.0),
            (&[2, 4], 2.0),
            (&[3, 4, 5], 3.0),
            (&[1, 5], 2.0),
            (&[1, 2, 3, 4, 5], 6.0),
        ];
        let mut p = Problem::minimize();
        let vars: Vec<_> = sets
            .iter()
            .enumerate()
            .map(|(i, (_, c))| p.add_var(&format!("s{i}"), VarKind::Binary, *c))
            .collect();
        for element in 1..=5usize {
            let terms: Vec<_> = sets
                .iter()
                .enumerate()
                .filter(|(_, (members, _))| members.contains(&element))
                .map(|(i, _)| (vars[i], 1.0))
                .collect();
            p.add_ge(terms, 1.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(sol.proven_optimal);
    }
}

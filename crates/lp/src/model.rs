//! Modelling layer: variables, constraints and objectives.
//!
//! The model is deliberately minimal: every problem is a *minimisation* over
//! non-negative variables with optional finite upper bounds, linear
//! constraints of the three usual senses, and per-variable integrality. That
//! is exactly the shape of the cISP design ILP and of the LP relaxations the
//! branch-and-bound explores.

/// Identifier of a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable (column in the constraint matrix and
    /// position in solution vectors).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous variable in `[0, upper]`.
    Continuous,
    /// Integer variable in `{0, 1, …, upper}`.
    Integer,
    /// Binary variable in `{0, 1}`.
    Binary,
}

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// A decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Name, used only for diagnostics.
    pub name: String,
    /// Kind (continuous/integer/binary).
    pub kind: VarKind,
    /// Objective coefficient (minimisation).
    pub objective: f64,
    /// Upper bound; binaries always have 1.0. `f64::INFINITY` means none.
    pub upper_bound: f64,
}

/// A linear constraint `Σ aᵢ xᵢ  (≤ | ≥ | =)  b`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficient list (variable, coefficient).
    pub terms: Vec<(VarId, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimisation problem over non-negative variables.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Create an empty minimisation problem.
    pub fn minimize() -> Self {
        Self::default()
    }

    /// Add a variable with the given kind and objective coefficient.
    /// Continuous and integer variables default to an infinite upper bound;
    /// binaries are bounded by 1.
    pub fn add_var(&mut self, name: &str, kind: VarKind, objective: f64) -> VarId {
        assert!(
            objective.is_finite(),
            "objective coefficient must be finite"
        );
        let upper_bound = match kind {
            VarKind::Binary => 1.0,
            _ => f64::INFINITY,
        };
        self.variables.push(Variable {
            name: name.to_string(),
            kind,
            objective,
            upper_bound,
        });
        VarId(self.variables.len() - 1)
    }

    /// Add a variable with an explicit upper bound.
    pub fn add_bounded_var(
        &mut self,
        name: &str,
        kind: VarKind,
        objective: f64,
        upper_bound: f64,
    ) -> VarId {
        assert!(upper_bound >= 0.0, "upper bound must be non-negative");
        let id = self.add_var(name, kind, objective);
        self.variables[id.0].upper_bound = match kind {
            VarKind::Binary => upper_bound.min(1.0),
            _ => upper_bound,
        };
        id
    }

    /// Add a `≤` constraint.
    pub fn add_le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, Sense::Le, rhs);
    }

    /// Add a `≥` constraint.
    pub fn add_ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, Sense::Ge, rhs);
    }

    /// Add an `=` constraint.
    pub fn add_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(terms, Sense::Eq, rhs);
    }

    /// Add a constraint of arbitrary sense.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, sense: Sense, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        for &(v, c) in &terms {
            assert!(
                v.0 < self.variables.len(),
                "constraint references unknown variable"
            );
            assert!(c.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints (not counting variable bounds).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The variables, indexed by [`VarId::index`].
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value of a candidate assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.num_vars());
        self.variables
            .iter()
            .zip(values)
            .map(|(v, &x)| v.objective * x)
            .sum()
    }

    /// Check whether an assignment satisfies every constraint, variable bound
    /// and integrality requirement, within tolerance `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.num_vars() {
            return false;
        }
        for (var, &x) in self.variables.iter().zip(values) {
            if x < -tol || x > var.upper_bound + tol {
                return false;
            }
            match var.kind {
                VarKind::Integer | VarKind::Binary => {
                    if (x - x.round()).abs() > tol {
                        return false;
                    }
                }
                VarKind::Continuous => {}
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * values[v.0]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Return a copy of the problem with every integer/binary variable
    /// relaxed to a continuous variable with the same bounds.
    pub fn relaxed(&self) -> Problem {
        let mut p = self.clone();
        for v in &mut p.variables {
            v.kind = VarKind::Continuous;
        }
        p
    }

    /// Indices of the variables that must be integral.
    pub fn integer_vars(&self) -> Vec<usize> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_creation_and_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 1.0);
        let y = p.add_var("y", VarKind::Binary, -2.0);
        let z = p.add_bounded_var("z", VarKind::Integer, 0.0, 7.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(x.index(), 0);
        assert_eq!(p.variables()[y.index()].upper_bound, 1.0);
        assert_eq!(p.variables()[z.index()].upper_bound, 7.0);
    }

    #[test]
    fn binary_bound_clamped_to_one() {
        let mut p = Problem::minimize();
        let b = p.add_bounded_var("b", VarKind::Binary, 0.0, 100.0);
        assert_eq!(p.variables()[b.index()].upper_bound, 1.0);
    }

    #[test]
    fn objective_and_feasibility() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 2.0);
        let y = p.add_var("y", VarKind::Continuous, 3.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        p.add_ge(vec![(x, 1.0)], 2.0);
        p.add_eq(vec![(y, 1.0)], 4.0);

        assert_eq!(p.objective_value(&[2.0, 4.0]), 16.0);
        assert!(p.is_feasible(&[2.0, 4.0], 1e-9));
        assert!(!p.is_feasible(&[1.0, 4.0], 1e-9), "violates x >= 2");
        assert!(!p.is_feasible(&[2.0, 5.0], 1e-9), "violates y == 4");
        assert!(!p.is_feasible(&[8.0, 4.0], 1e-9), "violates x + y <= 10");
        assert!(!p.is_feasible(&[-1.0, 4.0], 1e-9), "violates x >= 0");
    }

    #[test]
    fn integrality_checked_in_feasibility() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 1.0);
        let _ = x;
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[2.5], 1e-9));
    }

    #[test]
    fn relaxation_drops_integrality() {
        let mut p = Problem::minimize();
        p.add_var("x", VarKind::Binary, 1.0);
        p.add_var("y", VarKind::Continuous, 1.0);
        assert_eq!(p.integer_vars(), vec![0]);
        let r = p.relaxed();
        assert!(r.integer_vars().is_empty());
        // Bounds survive relaxation.
        assert_eq!(r.variables()[0].upper_bound, 1.0);
    }

    #[test]
    #[should_panic]
    fn constraint_with_unknown_variable_panics() {
        let mut p = Problem::minimize();
        p.add_le(vec![(VarId(3), 1.0)], 1.0);
    }
}

//! Dense two-phase primal simplex.
//!
//! Solves the continuous relaxation of a [`Problem`]: minimise `cᵀx` subject
//! to the problem's linear constraints, `x ≥ 0`, and finite upper bounds
//! (which are materialised as extra `≤` rows). The implementation is the
//! classic dense tableau method:
//!
//! 1. normalise every row to a non-negative right-hand side,
//! 2. add slack, surplus and artificial columns as required,
//! 3. phase 1 minimises the sum of artificials (infeasible if positive),
//! 4. phase 2 minimises the true objective with artificials barred.
//!
//! Pivot selection uses Bland's rule (smallest eligible index), which makes
//! the solver immune to cycling and fully deterministic at the cost of some
//! extra pivots — an acceptable trade for the problem sizes in this
//! workspace.

use crate::model::{Problem, Sense};

/// Numerical tolerance used throughout the solver.
const EPS: f64 = 1e-9;

/// Outcome of an LP solve that did not produce an optimal solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
    /// The pivot limit was exceeded (should not happen with Bland's rule;
    /// kept as a defensive backstop).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution to the LP relaxation.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value (minimisation).
    pub objective: f64,
    /// Value of every original problem variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
}

/// Internal dense tableau.
struct Tableau {
    /// Constraint rows: `rows[i]` has `n_total + 1` entries, the last being
    /// the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), `n_total + 1` entries; the last entry
    /// is the negated objective value.
    obj: Vec<f64>,
    /// Basis: for each row, the column index of its basic variable.
    basis: Vec<usize>,
    /// Total number of columns excluding the RHS.
    n_total: usize,
    /// Number of original (problem) variables.
    n_orig: usize,
    /// Column indices of artificial variables.
    artificials: Vec<usize>,
}

impl Tableau {
    /// Rebuild the objective row for cost vector `costs` (length `n_total`)
    /// so that it is consistent with the current basis (reduced costs of
    /// basic columns are zero).
    fn set_objective(&mut self, costs: &[f64]) {
        let m = self.rows.len();
        let mut obj = vec![0.0; self.n_total + 1];
        obj[..self.n_total].copy_from_slice(costs);
        // Price out the basic variables: obj -= cost[basis[i]] * row[i].
        for i in 0..m {
            let cb = costs[self.basis[i]];
            if cb.abs() > 0.0 {
                for (o, r) in obj.iter_mut().zip(&self.rows[i]) {
                    *o -= cb * r;
                }
            }
        }
        self.obj = obj;
    }

    /// Perform one pivot on (row `r`, column `c`).
    fn pivot(&mut self, r: usize, c: usize) {
        let pivot_val = self.rows[r][c];
        debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / pivot_val;
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i != r {
                let factor = row[c];
                if factor.abs() > 0.0 {
                    for (v, pv) in row.iter_mut().zip(pivot_row.iter()) {
                        *v -= factor * pv;
                    }
                }
            }
        }
        let factor = self.obj[c];
        if factor.abs() > 0.0 {
            for (v, pv) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
        }
        self.basis[r] = c;
    }

    /// Run simplex iterations until optimal, with columns in `barred` never
    /// allowed to enter the basis. Returns `Err(Unbounded)` if a column with
    /// negative reduced cost has no positive entry.
    fn optimize(&mut self, barred: &[bool], max_iters: usize) -> Result<(), LpError> {
        for _ in 0..max_iters {
            // Bland's rule: smallest-index column with negative reduced cost.
            let entering = (0..self.n_total).find(|&j| !barred[j] && self.obj[j] < -EPS);
            let c = match entering {
                Some(c) => c,
                None => return Ok(()),
            };
            // Ratio test; Bland tie-break on smallest basis variable index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for (i, row) in self.rows.iter().enumerate() {
                if row[c] > EPS {
                    let ratio = row[self.n_total] / row[c];
                    let key = (ratio, self.basis[i]);
                    match best {
                        None => best = Some((key.0, key.1, i)),
                        Some((r0, b0, _)) => {
                            if ratio < r0 - EPS || ((ratio - r0).abs() <= EPS && key.1 < b0) {
                                best = Some((key.0, key.1, i));
                            }
                        }
                    }
                }
            }
            match best {
                Some((_, _, r)) => self.pivot(r, c),
                None => return Err(LpError::Unbounded),
            }
        }
        Err(LpError::IterationLimit)
    }

    /// Extract the value of every column from the current basis.
    fn column_values(&self) -> Vec<f64> {
        let mut values = vec![0.0; self.n_total];
        for (i, &b) in self.basis.iter().enumerate() {
            values[b] = self.rows[i][self.n_total];
        }
        values
    }
}

/// Build the initial tableau for a problem.
fn build_tableau(problem: &Problem) -> Tableau {
    let n_orig = problem.num_vars();

    // Materialise finite upper bounds as extra `≤` rows.
    #[derive(Clone, Copy)]
    struct Row<'a> {
        terms: &'a [(crate::model::VarId, f64)],
        single: Option<(usize, f64)>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in problem.constraints() {
        rows.push(Row {
            terms: &c.terms,
            single: None,
            sense: c.sense,
            rhs: c.rhs,
        });
    }
    let bound_rows: Vec<(usize, f64)> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.upper_bound.is_finite())
        .map(|(i, v)| (i, v.upper_bound))
        .collect();
    for &(i, ub) in &bound_rows {
        rows.push(Row {
            terms: &[],
            single: Some((i, 1.0)),
            sense: Sense::Le,
            rhs: ub,
        });
    }

    let m = rows.len();
    // Count auxiliary columns.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in &rows {
        // After normalising to rhs >= 0:
        let rhs_neg = row.rhs < 0.0;
        let sense = match (row.sense, rhs_neg) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        match sense {
            Sense::Le => n_slack += 1,
            Sense::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Sense::Eq => n_art += 1,
        }
    }
    let n_total = n_orig + n_slack + n_art;

    let mut tableau_rows = vec![vec![0.0; n_total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut artificials = Vec::with_capacity(n_art);
    let mut next_slack = n_orig;
    let mut next_art = n_orig + n_slack;

    for (i, row) in rows.iter().enumerate() {
        let sign = if row.rhs < 0.0 { -1.0 } else { 1.0 };
        let tr = &mut tableau_rows[i];
        if let Some((j, coef)) = row.single {
            tr[j] += sign * coef;
        }
        for &(v, coef) in row.terms {
            tr[v.index()] += sign * coef;
        }
        tr[n_total] = sign * row.rhs;

        let sense = match (row.sense, sign < 0.0) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        match sense {
            Sense::Le => {
                tr[next_slack] = 1.0;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Sense::Ge => {
                tr[next_slack] = -1.0;
                next_slack += 1;
                tr[next_art] = 1.0;
                basis[i] = next_art;
                artificials.push(next_art);
                next_art += 1;
            }
            Sense::Eq => {
                tr[next_art] = 1.0;
                basis[i] = next_art;
                artificials.push(next_art);
                next_art += 1;
            }
        }
    }

    Tableau {
        rows: tableau_rows,
        obj: vec![0.0; n_total + 1],
        basis,
        n_total,
        n_orig,
        artificials,
    }
}

/// Solve the LP relaxation of `problem` (integrality is ignored; bounds and
/// constraints are honoured). Returns the optimal solution or an
/// [`LpError`].
pub fn solve_lp(problem: &Problem) -> Result<LpSolution, LpError> {
    // A problem with no constraints at all: each variable independently sits
    // at 0 or at its upper bound depending on its cost sign.
    if problem.num_constraints() == 0
        && problem
            .variables()
            .iter()
            .all(|v| !v.upper_bound.is_finite())
    {
        if problem.variables().iter().any(|v| v.objective < -EPS) {
            return Err(LpError::Unbounded);
        }
        return Ok(LpSolution {
            objective: 0.0,
            values: vec![0.0; problem.num_vars()],
        });
    }

    let mut t = build_tableau(problem);
    let m = t.rows.len();
    let max_iters = 50 * (t.n_total + m) + 1000;

    // Phase 1: minimise the sum of artificials.
    if !t.artificials.is_empty() {
        let mut phase1_costs = vec![0.0; t.n_total];
        for &a in &t.artificials {
            phase1_costs[a] = 1.0;
        }
        t.set_objective(&phase1_costs);
        let barred = vec![false; t.n_total];
        t.optimize(&barred, max_iters)?;
        let phase1_value = -t.obj[t.n_total];
        if phase1_value > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial still in the basis (at value ~0) out if we can.
        let art_set: Vec<bool> = {
            let mut v = vec![false; t.n_total];
            for &a in &t.artificials {
                v[a] = true;
            }
            v
        };
        for r in 0..m {
            if art_set[t.basis[r]] {
                if let Some(c) = (0..t.n_total).find(|&j| !art_set[j] && t.rows[r][j].abs() > EPS) {
                    t.pivot(r, c);
                }
            }
        }
    }

    // Phase 2: minimise the real objective with artificials barred.
    let mut costs = vec![0.0; t.n_total];
    for (i, v) in problem.variables().iter().enumerate() {
        costs[i] = v.objective;
    }
    t.set_objective(&costs);
    let mut barred = vec![false; t.n_total];
    for &a in &t.artificials {
        barred[a] = true;
    }
    t.optimize(&barred, max_iters)?;

    let col_values = t.column_values();
    let values = col_values[..t.n_orig].to_vec();
    let objective = problem.objective_value(&values);
    Ok(LpSolution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_var_lp() {
        // maximise 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18
        // classic optimum x = 2, y = 6, value 36.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, -3.0);
        let y = p.add_var("y", VarKind::Continuous, -5.0);
        p.add_le(vec![(x, 1.0)], 4.0);
        p.add_le(vec![(y, 2.0)], 12.0);
        p.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, -36.0);
        assert_close(sol.values[x.index()], 2.0);
        assert_close(sol.values[y.index()], 6.0);
    }

    #[test]
    fn lp_with_ge_and_eq_constraints() {
        // minimise 2x + 3y  s.t. x + y = 10, x >= 3, y >= 2  → x = 8, y = 2.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 2.0);
        let y = p.add_var("y", VarKind::Continuous, 3.0);
        p.add_eq(vec![(x, 1.0), (y, 1.0)], 10.0);
        p.add_ge(vec![(x, 1.0)], 3.0);
        p.add_ge(vec![(y, 1.0)], 2.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, 22.0);
        assert_close(sol.values[x.index()], 8.0);
        assert_close(sol.values[y.index()], 2.0);
    }

    #[test]
    fn infeasible_lp_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 1.0);
        p.add_ge(vec![(x, 1.0)], 5.0);
        p.add_le(vec![(x, 1.0)], 3.0);
        assert!(matches!(solve_lp(&p), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_lp_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, -1.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0);
        p.add_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        match solve_lp(&p) {
            Err(LpError::Unbounded) => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn upper_bounds_are_respected() {
        // minimise -x with x <= 2.5 → x = 2.5.
        let mut p = Problem::minimize();
        let x = p.add_bounded_var("x", VarKind::Continuous, -1.0, 2.5);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.values[x.index()], 2.5);
        assert_close(sol.objective, -2.5);
    }

    #[test]
    fn binary_relaxation_stays_in_unit_box() {
        // minimise -(x + y) with x + y <= 1.3, x, y binary → LP relaxation
        // should land on x + y = 1.3 with both within [0, 1].
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Binary, -1.0);
        let y = p.add_var("y", VarKind::Binary, -1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 1.3);
        let sol = solve_lp(&p.relaxed()).unwrap();
        assert_close(sol.objective, -1.3);
        assert!(sol.values.iter().all(|&v| v <= 1.0 + 1e-9));
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // x - y <= -2  (i.e. y >= x + 2), minimise y  with x >= 1 → x=1, y=3.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0);
        let y = p.add_var("y", VarKind::Continuous, 1.0);
        p.add_le(vec![(x, 1.0), (y, -1.0)], -2.0);
        p.add_ge(vec![(x, 1.0)], 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, 3.0);
        assert_close(sol.values[y.index()], 3.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classically degenerate LP (Beale's example structure) must still
        // terminate thanks to Bland's rule.
        let mut p = Problem::minimize();
        let x1 = p.add_var("x1", VarKind::Continuous, -0.75);
        let x2 = p.add_var("x2", VarKind::Continuous, 150.0);
        let x3 = p.add_var("x3", VarKind::Continuous, -0.02);
        let x4 = p.add_var("x4", VarKind::Continuous, 6.0);
        p.add_le(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        p.add_le(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        p.add_le(vec![(x3, 1.0)], 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, -0.05);
    }

    #[test]
    fn equality_only_system_with_unique_point() {
        // x = 2, y = 5 forced by equalities; objective arbitrary.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 7.0);
        let y = p.add_var("y", VarKind::Continuous, -2.0);
        p.add_eq(vec![(x, 1.0)], 2.0);
        p.add_eq(vec![(x, 1.0), (y, 1.0)], 7.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.values[x.index()], 2.0);
        assert_close(sol.values[y.index()], 5.0);
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn transportation_like_lp() {
        // Two supplies (10, 15), two demands (12, 13); costs:
        //   c11=2 c12=4 / c21=3 c22=1. Optimal cost = 12*2 + 0*4 + 0*3... let
        // us compute: ship s1→d1 =10, s2→d1=2, s2→d2=13 → 20 + 6 + 13 = 39.
        let mut p = Problem::minimize();
        let x11 = p.add_var("x11", VarKind::Continuous, 2.0);
        let x12 = p.add_var("x12", VarKind::Continuous, 4.0);
        let x21 = p.add_var("x21", VarKind::Continuous, 3.0);
        let x22 = p.add_var("x22", VarKind::Continuous, 1.0);
        p.add_le(vec![(x11, 1.0), (x12, 1.0)], 10.0);
        p.add_le(vec![(x21, 1.0), (x22, 1.0)], 15.0);
        p.add_eq(vec![(x11, 1.0), (x21, 1.0)], 12.0);
        p.add_eq(vec![(x12, 1.0), (x22, 1.0)], 13.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, 39.0);
    }

    #[test]
    fn no_constraint_problem() {
        let mut p = Problem::minimize();
        p.add_var("x", VarKind::Continuous, 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_close(sol.objective, 0.0);

        let mut p2 = Problem::minimize();
        p2.add_var("x", VarKind::Continuous, -1.0);
        assert!(matches!(solve_lp(&p2), Err(LpError::Unbounded)));
    }
}

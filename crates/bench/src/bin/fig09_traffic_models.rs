//! Fig. 9 — cost per GB under different traffic models (§6.3).
//!
//! Three deployment scenarios are designed with the same methodology and
//! budget, then provisioned across a throughput sweep:
//!
//! * **City–City** — the population-product matrix (the default, and the most
//!   expensive because its footprint is the widest);
//! * **DC–DC** — equal traffic between the six Google US data-center sites
//!   (represented by the population centers closest to them);
//! * **City–DC** — every city exchanges traffic with its closest data center,
//!   proportional to its population.
//!
//! The paper finds both DC scenarios cost less per GB than City–City.

use cisp_bench::{print_series, us_scenario, Scale};
use cisp_core::cost::CostModel;
use cisp_core::design::{DesignInput, Designer};
use cisp_core::scenario::population_product_traffic;
use cisp_data::datacenters::google_us_datacenters;
use cisp_geo::geodesic;

/// Index of the scenario site closest to each data center.
fn dc_proxy_sites(sites: &[cisp_geo::GeoPoint]) -> Vec<usize> {
    google_us_datacenters()
        .iter()
        .map(|dc| {
            (0..sites.len())
                .min_by(|&a, &b| {
                    geodesic::distance_km(sites[a], dc.location)
                        .partial_cmp(&geodesic::distance_km(sites[b], dc.location))
                        .unwrap()
                })
                .unwrap()
        })
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 9 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let base_input = scenario.design_input();
    let n = base_input.sites.len();
    let dcs = dc_proxy_sites(&base_input.sites);
    println!(
        "# data-center proxy sites: {:?}",
        dcs.iter()
            .map(|&i| scenario.cities()[i].name.clone())
            .collect::<Vec<_>>()
    );

    // The three traffic models over the same site set.
    let city_city = population_product_traffic(scenario.cities());
    let mut dc_dc = vec![vec![0.0; n]; n];
    for &a in &dcs {
        for &b in &dcs {
            if a != b {
                dc_dc[a][b] = 1.0;
            }
        }
    }
    let mut city_dc = vec![vec![0.0; n]; n];
    for (i, city) in scenario.cities().iter().enumerate() {
        let closest = *dcs
            .iter()
            .min_by(|&&a, &&b| {
                geodesic::distance_km(base_input.sites[i], base_input.sites[a])
                    .partial_cmp(&geodesic::distance_km(
                        base_input.sites[i],
                        base_input.sites[b],
                    ))
                    .unwrap()
            })
            .unwrap();
        if closest != i {
            city_dc[i][closest] += city.population as f64;
            city_dc[closest][i] += city.population as f64;
        }
    }

    let budget = scale.us_budget_towers();
    let throughputs: Vec<f64> = vec![5.0, 10.0, 25.0, 50.0, 100.0, 150.0, 200.0];
    let cost_model = CostModel::default();

    for (label, traffic) in [
        ("City-City", city_city),
        ("DC-DC", dc_dc.into()),
        ("City-DC", city_dc.into()),
    ] {
        let input = DesignInput {
            sites: base_input.sites.clone(),
            traffic,
            fiber_km: base_input.fiber_km.clone(),
            candidates: base_input.candidates.clone(),
        };
        let outcome = Designer::new(&input).cisp(budget);
        let points: Vec<(f64, f64)> = throughputs
            .iter()
            .map(|&gbps| {
                let aug = cisp_core::augment::augment_for_throughput(
                    &outcome.topology,
                    gbps,
                    &Default::default(),
                );
                let inventory = aug.inventory(&outcome.topology);
                (gbps, cost_model.cost_per_gb(&inventory, gbps))
            })
            .collect();
        println!(
            "# {label}: {} links, {} towers, stretch {:.3}",
            outcome.selected.len(),
            outcome.total_towers,
            outcome.mean_stretch
        );
        print_series(&format!("cost per GB ($) vs Gbps, {label}"), &points);
    }
}

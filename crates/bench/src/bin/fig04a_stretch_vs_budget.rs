//! Fig. 4(a) — mean stretch vs tower budget, for 100 km and 70 km hops.
//!
//! A single greedy design run at the largest budget produces the whole curve:
//! every greedy step records the cumulative tower cost and the mean stretch
//! at that point. Two curves are produced, one per maximum hop length.

use cisp_bench::{print_series, Scale};
use cisp_core::hops::HopConfig;
use cisp_core::scenario::{Scenario, ScenarioConfig};
use cisp_data::towers::TowerRegistryConfig;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 4(a) reproduction — scale: {}", scale.label());

    let max_budget = scale.us_budget_towers() * 2.5;
    for &range_km in &[100.0, 70.0] {
        let mut config = ScenarioConfig::us_paper(42);
        config.max_sites = scale.us_sites();
        config.towers = TowerRegistryConfig {
            raw_count: scale.raw_towers(),
            ..TowerRegistryConfig::default()
        };
        config.hops = HopConfig {
            max_range_km: range_km,
            ..HopConfig::paper_baseline()
        };
        let scenario = Scenario::build(&config);
        let outcome = scenario.design_greedy(max_budget);

        let mut points = vec![(0.0, scenario.design_input().empty_topology().mean_stretch())];
        points.extend(
            outcome
                .history
                .iter()
                .map(|s| (s.cumulative_towers as f64, s.mean_stretch)),
        );
        print_series(
            &format!("stretch vs budget, {range_km:.0} km hops"),
            &points,
        );
    }
}

//! Fig. 10 — sensitivity to tower height availability and maximum hop range
//! (§6.5).
//!
//! The baseline design uses tower tops (usable height fraction 1.0) and a
//! 100 km maximum hop. This experiment re-runs hop feasibility, link
//! construction, design and provisioning under restricted combinations of
//! (range, usable height fraction) and reports the percentage increase in
//! cost per GB and in mean stretch relative to the baseline. The paper's
//! worst combination costs 11 % more and stretches 10 % more.

use cisp_bench::{fmt, print_table, Scale};
use cisp_core::cost::CostModel;
use cisp_core::hops::HopConfig;
use cisp_core::scenario::{Scenario, ScenarioConfig};
use cisp_data::towers::TowerRegistryConfig;

fn build_and_evaluate(
    scale: Scale,
    range_km: f64,
    height_fraction: f64,
    budget: f64,
) -> (f64, f64) {
    let mut config = ScenarioConfig::us_paper(42);
    config.max_sites = scale.us_sites();
    config.towers = TowerRegistryConfig {
        raw_count: scale.raw_towers(),
        ..TowerRegistryConfig::default()
    };
    config.hops = HopConfig::restricted(range_km, height_fraction);
    let scenario = Scenario::build(&config);
    let outcome = scenario.design(budget);
    let provisioned = scenario.provision(&outcome, 100.0, &CostModel::default());
    (provisioned.cost_per_gb, outcome.mean_stretch)
}

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 10 reproduction — scale: {}", scale.label());

    // (range km, usable height fraction), ordered as in the paper's x-axis.
    let combos: Vec<(f64, f64)> = match scale {
        Scale::Tiny => vec![(100.0, 0.65), (70.0, 1.0), (60.0, 0.45)],
        _ => vec![
            (100.0, 0.85),
            (80.0, 1.0),
            (100.0, 0.65),
            (70.0, 1.0),
            (100.0, 0.45),
            (70.0, 0.45),
            (60.0, 1.0),
            (60.0, 0.65),
            (60.0, 0.45),
        ],
    };

    let budget = scale.us_budget_towers();
    let (base_cost, base_stretch) = build_and_evaluate(scale, 100.0, 1.0, budget);
    println!("# baseline (100 km, height 1.0): cost/GB ${base_cost:.2}, stretch {base_stretch:.3}");

    let mut rows = Vec::new();
    for &(range, height) in &combos {
        let (cost, stretch) = build_and_evaluate(scale, range, height, budget);
        rows.push(vec![
            format!("{range:.0}, {height}"),
            fmt((cost / base_cost - 1.0) * 100.0, 1),
            fmt((stretch / base_stretch - 1.0) * 100.0, 1),
            fmt(cost, 2),
            fmt(stretch, 3),
        ]);
    }
    print_table(
        "Fig. 10: % increase vs baseline under (range km, usable height)",
        &[
            "range,height",
            "cost_increase_%",
            "stretch_increase_%",
            "cost_per_gb",
            "stretch",
        ],
        &rows,
    );
}

//! Fig. 11 — delay and loss under traffic-mix mismatch (§6.4).
//!
//! The network is designed and provisioned for a 4:3:3 mix of city-city,
//! city-DC and DC-DC traffic; the offered traffic then follows the mixes
//! 4:3:3 (matching), 5:3:3, 4:3:4 and 4:4:3 at aggregate loads from 10 % to
//! 100 % of the design capacity. The paper finds less than 0.05 ms of mean
//! delay difference and near-zero loss up to ~70 % load.

use cisp_bench::{bridge::build_simulation_inputs, print_series, us_scenario, Scale};
use cisp_core::design::{DesignInput, Designer};
use cisp_core::scenario::population_product_traffic;
use cisp_data::datacenters::google_us_datacenters;
use cisp_geo::geodesic;
use cisp_graph::DistMatrix;
use cisp_netsim::sim::{SimConfig, Simulation};
use cisp_traffic::matrix::TrafficMatrix;

/// Build the three component matrices over the scenario's sites, using the
/// population centers closest to the six Google DCs as DC proxies.
fn component_matrices(
    cities: &[cisp_data::cities::City],
    sites: &[cisp_geo::GeoPoint],
) -> (TrafficMatrix, TrafficMatrix, TrafficMatrix) {
    let n = sites.len();
    let dcs: Vec<usize> = google_us_datacenters()
        .iter()
        .map(|dc| {
            (0..n)
                .min_by(|&a, &b| {
                    geodesic::distance_km(sites[a], dc.location)
                        .partial_cmp(&geodesic::distance_km(sites[b], dc.location))
                        .unwrap()
                })
                .unwrap()
        })
        .collect();
    let city_city = TrafficMatrix::from_dist_matrix(population_product_traffic(cities));
    let mut dc_dc = DistMatrix::zeros(n);
    for &a in &dcs {
        for &b in &dcs {
            if a != b {
                dc_dc.set(a, b, 1.0);
            }
        }
    }
    let mut city_dc = DistMatrix::zeros(n);
    for i in 0..n {
        let closest = *dcs
            .iter()
            .min_by(|&&a, &&b| {
                geodesic::distance_km(sites[i], sites[a])
                    .partial_cmp(&geodesic::distance_km(sites[i], sites[b]))
                    .unwrap()
            })
            .unwrap();
        if closest != i {
            let pop = cities[i].population as f64;
            city_dc.set(i, closest, city_dc.get(i, closest) + pop);
            city_dc.set(closest, i, city_dc.get(closest, i) + pop);
        }
    }
    (
        city_city,
        TrafficMatrix::from_dist_matrix(city_dc),
        TrafficMatrix::from_dist_matrix(dc_dc),
    )
}

/// Combine components with the given shares via the shared traffic engine
/// (each component is normalised to unit total before weighting).
fn mix(components: &[(f64, &TrafficMatrix)]) -> DistMatrix {
    TrafficMatrix::mix(components).into_matrix()
}

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 11 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let base = scenario.design_input();
    let (cc, cdc, dcdc) = component_matrices(scenario.cities(), &base.sites);

    // Design for the 4:3:3 mix.
    let designed_mix = mix(&[(4.0, &cc), (3.0, &cdc), (3.0, &dcdc)]);
    let input = DesignInput {
        sites: base.sites.clone(),
        traffic: designed_mix,
        fiber_km: base.fiber_km.clone(),
        candidates: base.candidates.clone(),
    };
    let outcome = Designer::new(&input).cisp(scale.us_budget_towers());
    println!(
        "# designed for 4:3:3 — {} links, stretch {:.3}",
        outcome.selected.len(),
        outcome.mean_stretch
    );

    let design_gbps = match scale {
        Scale::Tiny => 2.0,
        Scale::Reduced => 5.0,
        Scale::Full => 20.0,
    };
    let loads = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];

    let offered_mixes: Vec<(&str, DistMatrix)> = vec![
        ("4:3:3", mix(&[(4.0, &cc), (3.0, &cdc), (3.0, &dcdc)])),
        ("5:3:3", mix(&[(5.0, &cc), (3.0, &cdc), (3.0, &dcdc)])),
        ("4:3:4", mix(&[(4.0, &cc), (3.0, &cdc), (4.0, &dcdc)])),
        ("4:4:3", mix(&[(4.0, &cc), (4.0, &cdc), (3.0, &dcdc)])),
    ];

    for (label, offered) in &offered_mixes {
        let mut delay_points = Vec::new();
        let mut loss_points = Vec::new();
        for &load in &loads {
            let (network, demands) =
                build_simulation_inputs(&outcome.topology, offered, design_gbps, load);
            let mut sim = Simulation::new(
                network,
                demands,
                SimConfig {
                    duration_s: 0.3,
                    seed: 13,
                    ..SimConfig::default()
                },
            );
            let report = sim.run();
            delay_points.push((load * 100.0, report.mean_delay_ms));
            loss_points.push((load * 100.0, report.loss_rate * 100.0));
        }
        print_series(
            &format!("mean delay (ms) vs load %, mix {label}"),
            &delay_points,
        );
        print_series(&format!("loss (%) vs load %, mix {label}"), &loss_points);
    }
}

//! §8 — the cost-benefit table, plus the marginal upgrade loop.
//!
//! Designs and prices the US network at the chosen scale, then prints the
//! paper's value-per-GB estimates (web search, e-commerce, gaming) next to
//! the measured cost per GB. The paper's conclusion — the value exceeds the
//! ~$0.81/GB cost by multiples in every setting — should survive any
//! reasonable re-parameterisation.
//!
//! The second table asks the marginal question behind §8's SLA pitch:
//! given the designed backbone carrying the §6.4 classified mix, which
//! microwave-link capacity upgrade buys the most foreground P99 latency
//! per dollar-km? (`cisp_core::economics::rank_upgrades`, grounded in
//! simulation rather than propagation arithmetic.)

use cisp_apps::value::cost_benefit_table;
use cisp_bench::{fmt, print_table, us_scenario, Scale};
use cisp_core::cost::CostModel;
use cisp_core::economics::{rank_upgrades, UpgradeConfig};
use cisp_core::evaluate::{lower_classified, EvaluateConfig};
use cisp_core::scenario::population_product_traffic;
use cisp_data::datacenters::google_us_datacenters;
use cisp_netsim::flows::ArrivalProcess;
use cisp_netsim::sim::SimConfig;
use cisp_traffic::{SiteSet, TrafficMix};

fn main() {
    let scale = Scale::from_args();
    println!("# §8 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let outcome = scenario.design(scale.us_budget_towers());
    let provisioned = scenario.provision(&outcome, 100.0, &CostModel::default());
    let cost_per_gb = provisioned.cost_per_gb;
    println!("# measured cost per GB at 100 Gbps: ${cost_per_gb:.2} (paper: $0.81)");

    let rows: Vec<Vec<String>> = cost_benefit_table(cost_per_gb)
        .into_iter()
        .map(|(estimate, cost)| {
            vec![
                estimate.setting.clone(),
                fmt(estimate.low_usd_per_gb, 2),
                fmt(estimate.high_usd_per_gb, 2),
                fmt(cost, 2),
                fmt(estimate.low_usd_per_gb / cost, 1),
                estimate.note.clone(),
            ]
        })
        .collect();
    print_table(
        "§8: value per GB vs cost per GB",
        &[
            "setting",
            "value_low_$/GB",
            "value_high_$/GB",
            "cost_$/GB",
            "min_value/cost",
            "assumptions",
        ],
        &rows,
    );

    // The marginal question: with the backbone carrying the classified
    // §6.4 mix, which MW-link upgrade most improves the foreground class's
    // simulated P99 per dollar-km? The background aggregate is sized from
    // the designed mix's DC-replication share of the combined offered load,
    // so the simulated class split matches the mix's split.
    let classified = TrafficMix::designed().classified(&SiteSet::new(
        scenario.cities().to_vec(),
        google_us_datacenters(),
    ));
    let bg_share = classified.background_share();
    let traffic = population_product_traffic(scenario.cities());
    let eval_config = EvaluateConfig {
        design_aggregate_gbps: 4.0,
        // Offered load beyond the design point (the Fig. 5/11 regime) so
        // the hottest links actually queue and an upgrade has milliseconds
        // to buy; at or below the design target the augmented capacities
        // absorb the load and every gain reads ~0.
        load_fraction: 1.4,
        sim: SimConfig {
            duration_s: 0.05,
            // Bursty arrivals: the P99 is a *queueing* tail question, and
            // under constant-bit-rate pacing sub-unity utilisation never
            // queues at all.
            arrivals: ArrivalProcess::Poisson,
            ..SimConfig::default()
        },
        ..EvaluateConfig::default()
    };
    let fg_gbps = eval_config.design_aggregate_gbps * eval_config.load_fraction;
    let bg_gbps = fg_gbps * bg_share / (1.0 - bg_share);
    let lowered = lower_classified(&outcome.topology, &traffic, &traffic, bg_gbps, &eval_config);
    let ranking = rank_upgrades(
        &outcome.topology,
        &lowered,
        &CostModel::default(),
        &UpgradeConfig::default(),
    );
    println!(
        "# upgrade loop — foreground {fg_gbps:.1} Gbps + background {bg_gbps:.1} Gbps ({:.0}% bulk share), baseline foreground P99 queueing delay: {:.4} ms",
        bg_share * 100.0,
        ranking.baseline_fg_p99_ms,
    );
    let upgrade_rows: Vec<Vec<String>> = ranking
        .options
        .iter()
        .map(|o| {
            vec![
                format!("{}-{}", o.site_a, o.site_b),
                fmt(o.length_km, 0),
                fmt(o.baseline_utilization, 3),
                fmt(o.upgrade_cost_usd / 1e6, 2),
                fmt(o.upgraded_fg_p99_ms, 4),
                fmt(o.improvement_ms, 4),
                fmt(o.improvement_per_musd_km, 5),
            ]
        })
        .collect();
    print_table(
        "§8 marginal: MW-link upgrades ranked by fg-P99-queueing improvement per $M-km",
        &[
            "link(sites)",
            "km",
            "util",
            "cost_$M",
            "fg_P99q_ms",
            "gain_ms",
            "gain/($M·km)",
        ],
        &upgrade_rows,
    );
}

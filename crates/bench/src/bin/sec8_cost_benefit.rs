//! §8 — the cost-benefit table.
//!
//! Designs and prices the US network at the chosen scale, then prints the
//! paper's value-per-GB estimates (web search, e-commerce, gaming) next to
//! the measured cost per GB. The paper's conclusion — the value exceeds the
//! ~$0.81/GB cost by multiples in every setting — should survive any
//! reasonable re-parameterisation.

use cisp_apps::value::cost_benefit_table;
use cisp_bench::{fmt, print_table, us_scenario, Scale};
use cisp_core::cost::CostModel;

fn main() {
    let scale = Scale::from_args();
    println!("# §8 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let outcome = scenario.design(scale.us_budget_towers());
    let provisioned = scenario.provision(&outcome, 100.0, &CostModel::default());
    let cost_per_gb = provisioned.cost_per_gb;
    println!("# measured cost per GB at 100 Gbps: ${cost_per_gb:.2} (paper: $0.81)");

    let rows: Vec<Vec<String>> = cost_benefit_table(cost_per_gb)
        .into_iter()
        .map(|(estimate, cost)| {
            vec![
                estimate.setting.clone(),
                fmt(estimate.low_usd_per_gb, 2),
                fmt(estimate.high_usd_per_gb, 2),
                fmt(cost, 2),
                fmt(estimate.low_usd_per_gb / cost, 1),
                estimate.note.clone(),
            ]
        })
        .collect();
    print_table(
        "§8: value per GB vs cost per GB",
        &[
            "setting",
            "value_low_$/GB",
            "value_high_$/GB",
            "cost_$/GB",
            "min_value/cost",
            "assumptions",
        ],
        &rows,
    );
}

//! Fig. 4(b) — stretch of successive tower-disjoint microwave paths.
//!
//! The paper takes its longest built link (Illinois–California, ~2700 km),
//! repeatedly finds the shortest purely-microwave tower path, removes the
//! towers it used, and repeats 20 times; even the 20th path has stretch ~1.15,
//! far below fiber's 1.75. Here we pick the longest candidate link of the
//! scenario and run the same iteration over the feasible-hop graph.

use cisp_bench::{print_series, us_scenario, Scale};
use cisp_core::hops::HopFeasibility;
use cisp_core::links::{LinkBuilder, LinkBuilderConfig};
use cisp_graph::disjoint::iterative_disjoint_paths;
use cisp_terrain::{clutter::ClutterModel, TerrainModel};

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 4(b) reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let input = scenario.design_input();

    // Longest candidate link by geodesic distance between its endpoints.
    let longest = input
        .candidates
        .iter()
        .max_by(|a, b| {
            let da = cisp_geo::geodesic::distance_km(input.sites[a.site_a], input.sites[a.site_b]);
            let db = cisp_geo::geodesic::distance_km(input.sites[b.site_a], input.sites[b.site_b]);
            da.partial_cmp(&db).unwrap()
        })
        .expect("scenario has candidate links");
    let a = longest.site_a;
    let b = longest.site_b;
    let geo = cisp_geo::geodesic::distance_km(input.sites[a], input.sites[b]);
    println!(
        "# longest link: {} – {} ({:.0} km geodesic)",
        scenario.cities()[a].name,
        scenario.cities()[b].name,
        geo
    );

    // Rebuild the tower+site graph (the scenario's own parameters).
    let terrain = TerrainModel::united_states(scenario.config().seed);
    let clutter = ClutterModel::with_seed(scenario.config().seed);
    let feasibility = HopFeasibility::new(
        scenario.towers(),
        &terrain,
        &clutter,
        scenario.config().hops,
    );
    let hops = feasibility.all_feasible_hops();
    let builder = LinkBuilder::new(
        &input.sites,
        scenario.towers(),
        &hops,
        LinkBuilderConfig::default(),
    );

    let max_paths = 20;
    let result = iterative_disjoint_paths(
        builder.graph(),
        builder.site_node(a),
        builder.site_node(b),
        max_paths,
    );

    let points: Vec<(f64, f64)> = result
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| ((i + 1) as f64, p.cost / geo))
        .collect();
    print_series("stretch of k-th tower-disjoint MW path", &points);

    let fiber_stretch = input.fiber_km[a][b] / geo;
    println!("# fiber stretch for this pair: {fiber_stretch:.2}");
    println!("# disjoint MW paths found: {}", result.len());
}

//! Fig. 4(c) — cost per GB vs aggregate throughput (city-city traffic).
//!
//! One design at the scale's tower budget, provisioned for a sweep of
//! aggregate throughputs; the cost per GB falls as throughput rises because
//! the (fixed) latency-driven build is amortised over more traffic, then
//! flattens once bandwidth augmentation dominates. The paper sweeps up to
//! 1 Tbps and reports $0.81/GB at 100 Gbps.

use cisp_bench::{print_series, us_scenario, Scale};
use cisp_core::cost::CostModel;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 4(c) reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let outcome = scenario.design(scale.us_budget_towers());
    let cost_model = CostModel::default();

    let throughputs: Vec<f64> = match scale {
        Scale::Tiny => vec![5.0, 10.0, 25.0, 50.0, 100.0],
        Scale::Reduced => vec![5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 600.0, 1000.0],
        Scale::Full => vec![
            5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 300.0, 400.0, 600.0, 800.0, 1000.0,
        ],
    };

    let points: Vec<(f64, f64)> = throughputs
        .iter()
        .map(|&gbps| {
            let provisioned = scenario.provision(&outcome, gbps, &cost_model);
            (gbps, provisioned.cost_per_gb)
        })
        .collect();
    print_series("cost per GB ($) vs aggregate throughput (Gbps)", &points);
    println!(
        "# design: {} MW links, {} towers, mean stretch {:.3}",
        outcome.selected.len(),
        outcome.total_towers,
        outcome.mean_stretch
    );
}

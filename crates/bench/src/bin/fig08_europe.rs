//! Fig. 8 — a cISP for Europe (§6.2).
//!
//! The same design methodology applied to European cities with population
//! above 300 k, using crowd-sourced-style synthetic towers and the US fiber
//! inflation assumption. The paper reports a network of similar cost (~3 k
//! towers) achieving 1.04× mean stretch at the same 100 Gbps aggregate.

use cisp_bench::{europe_scenario, fmt, print_table, Scale};
use cisp_core::cost::CostModel;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 8 reproduction — scale: {}", scale.label());

    let scenario = europe_scenario(scale, 42);
    let budget = scale.us_budget_towers();
    let outcome = scenario.design(budget);
    let provisioned = scenario.provision(&outcome, 100.0, &CostModel::default());

    print_table(
        "Fig. 8: designed European topology",
        &["metric", "value"],
        &[
            vec!["sites".into(), scenario.cities().len().to_string()],
            vec![
                "candidate MW links".into(),
                scenario.design_input().candidates.len().to_string(),
            ],
            vec!["tower budget".into(), fmt(budget, 0)],
            vec!["towers used".into(), outcome.total_towers.to_string()],
            vec!["MW links built".into(), outcome.selected.len().to_string()],
            vec!["mean stretch".into(), fmt(outcome.mean_stretch, 3)],
            vec![
                "cost per GB at 100 Gbps ($)".into(),
                fmt(provisioned.cost_per_gb, 2),
            ],
        ],
    );

    let mut link_rows = Vec::new();
    for link in outcome.topology.mw_links() {
        link_rows.push(vec![
            scenario.cities()[link.site_a].name.clone(),
            scenario.cities()[link.site_b].name.clone(),
            fmt(link.mw_length_km, 0),
            link.tower_count.to_string(),
        ]);
    }
    print_table(
        "Fig. 8: built MW links",
        &["from", "to", "mw_km", "towers"],
        &link_rows,
    );
}

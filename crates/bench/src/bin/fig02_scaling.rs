//! Fig. 2 — design-method scalability and optimality.
//!
//! (a) Wall-clock time of the cISP heuristic vs the exact solver as the
//!     number of cities grows (the paper's exact ILP, run in Gurobi, fails
//!     beyond 50 cities; our exact solver — the flow ILP cross-validated
//!     against a combinatorial branch-and-bound — hits its wall earlier,
//!     which shifts the curve but not its exponential shape).
//! (b) Mean stretch of the heuristic vs the exact optimum where the exact
//!     solver finishes: the paper reports agreement to two decimal places.
//!
//! Output: one row per city count with both runtimes and both stretches.

use std::time::Instant;

use cisp_bench::{fmt, print_table, us_scenario, Scale};
use cisp_core::design::Designer;
use cisp_core::ilp::exact_subset_search;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 2 reproduction — scale: {}", scale.label());

    let (heuristic_sizes, exact_sizes): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Tiny => (vec![4, 6, 8, 10], vec![4, 6, 8]),
        Scale::Reduced => (vec![5, 10, 15, 20, 30, 40], vec![5, 8, 10, 12]),
        Scale::Full => (vec![10, 20, 40, 60, 80, 100, 120], vec![5, 8, 10, 12, 14]),
    };

    // One scenario at the largest size; subsets reuse its candidate links so
    // all sizes see consistent inputs (as the paper's budget-∝-cities setup).
    let max_n = *heuristic_sizes.iter().max().unwrap();
    let scenario = us_scenario(scale, 42);
    let full_input = scenario.design_input();

    let mut rows = Vec::new();
    for &n in &heuristic_sizes {
        let n = n.min(scenario.cities().len()).min(max_n);
        // Restrict the design input to the first n sites.
        let mut input = full_input.clone();
        input.sites.truncate(n);
        input.traffic = input.traffic.truncated(n);
        input.fiber_km = input.fiber_km.truncated(n);
        input.candidates.retain(|l| l.site_a < n && l.site_b < n);

        let budget = 25.0 * n as f64; // budget proportional to city count

        let start = Instant::now();
        let heuristic = Designer::new(&input).cisp(budget);
        let heuristic_time = start.elapsed().as_secs_f64();

        let (exact_time, exact_stretch) = if exact_sizes.contains(&n) {
            let start = Instant::now();
            match exact_subset_search(&input, budget, 2_000_000) {
                Ok((outcome, nodes)) => {
                    let t = start.elapsed().as_secs_f64();
                    println!("# exact search explored {nodes} nodes at n = {n}");
                    (Some(t), Some(outcome.mean_stretch))
                }
                Err(_) => (None, None),
            }
        } else {
            (None, None)
        };

        rows.push(vec![
            n.to_string(),
            fmt(heuristic_time, 3),
            exact_time.map(|t| fmt(t, 3)).unwrap_or_else(|| "-".into()),
            fmt(heuristic.mean_stretch, 4),
            exact_stretch
                .map(|s| fmt(s, 4))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    print_table(
        "Fig. 2(a)+(b): runtime (s) and mean stretch, cISP heuristic vs exact",
        &[
            "cities",
            "cisp_time_s",
            "exact_time_s",
            "cisp_stretch",
            "exact_stretch",
        ],
        &rows,
    );
}

//! Fig. 3 — the headline US topology.
//!
//! Designs the US network at the scale's tower budget, provisions it for
//! 100 Gbps, and prints the numbers the paper reports for its Fig. 3 network:
//! mean stretch (paper: 1.05×), the breakdown of built links by how many
//! additional parallel tower series they need (paper: 1660 hops need none,
//! 552 need one, 86 need two), and the amortised cost per GB (paper: $0.81).

use cisp_bench::{fmt, print_table, us_scenario, Scale};
use cisp_core::cost::CostModel;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 3 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let budget = scale.us_budget_towers();
    let outcome = scenario.design(budget);
    let provisioned = scenario.provision(&outcome, 100.0, &CostModel::default());

    print_table(
        "Fig. 3: designed US topology",
        &["metric", "value"],
        &[
            vec!["sites".into(), scenario.cities().len().to_string()],
            vec![
                "candidate MW links".into(),
                scenario.design_input().candidates.len().to_string(),
            ],
            vec!["tower budget".into(), fmt(budget, 0)],
            vec!["towers used".into(), outcome.total_towers.to_string()],
            vec!["MW links built".into(), outcome.selected.len().to_string()],
            vec!["mean stretch".into(), fmt(outcome.mean_stretch, 3)],
            vec![
                "MW traffic fraction".into(),
                fmt(provisioned.augmentation.mw_traffic_fraction, 3),
            ],
            vec![
                "cost per GB at 100 Gbps ($)".into(),
                fmt(provisioned.cost_per_gb, 2),
            ],
        ],
    );

    // Link classes by extra parallel series (the blue/green/red classes of
    // the paper's map).
    let hist = provisioned.augmentation.extra_series_histogram();
    let rows: Vec<Vec<String>> = hist
        .iter()
        .enumerate()
        .map(|(extra, count)| vec![extra.to_string(), count.to_string()])
        .collect();
    print_table(
        "Fig. 3: links by number of additional tower series (100 Gbps)",
        &["extra_series", "links"],
        &rows,
    );

    // The built links themselves (the map's edge list).
    let mut link_rows = Vec::new();
    for (idx, link) in outcome.topology.mw_links().iter().enumerate() {
        let a = &scenario.cities()[link.site_a];
        let b = &scenario.cities()[link.site_b];
        let series = provisioned.augmentation.links[idx].series;
        link_rows.push(vec![
            a.name.clone(),
            b.name.clone(),
            fmt(link.mw_length_km, 0),
            link.tower_count.to_string(),
            series.to_string(),
        ]);
    }
    print_table(
        "Fig. 3: built MW links",
        &["from", "to", "mw_km", "towers", "series"],
        &link_rows,
    );
}

//! Fig. 6 — the speed-mismatch TCP experiment.
//!
//! Ten sources send 100 KB TCP flows through a shared cISP ingress to a sink
//! over a 100 Mbps bottleneck, with edge links of 100 Mbps (control) or
//! 10 Gbps (mismatch), with and without pacing. The paper's finding: without
//! pacing the mismatch inflates the ingress queue (especially its 95th
//! percentile); with pacing queueing is back to the control level, and flow
//! completion times are unaffected either way.

use cisp_bench::{fmt, print_table, Scale};
use cisp_netsim::tcp::{run_speed_mismatch, SpeedMismatchConfig};

/// Builds a scenario configuration from a seed.
type CaseBuilder = Box<dyn Fn(u64) -> SpeedMismatchConfig>;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 6 reproduction — scale: {}", scale.label());

    let (runs, duration_s) = match scale {
        Scale::Tiny => (5, 2.0),
        Scale::Reduced => (20, 5.0),
        Scale::Full => (100, 10.0),
    };

    let cases: Vec<(&str, CaseBuilder)> = vec![
        (
            "100M edge",
            Box::new(move |seed| SpeedMismatchConfig {
                duration_s,
                ..SpeedMismatchConfig::control_100mbps(false, seed)
            }),
        ),
        (
            "10G edge, no pacing",
            Box::new(move |seed| SpeedMismatchConfig {
                duration_s,
                ..SpeedMismatchConfig::mismatch_10gbps(false, seed)
            }),
        ),
        (
            "10G edge, pacing",
            Box::new(move |seed| SpeedMismatchConfig {
                duration_s,
                ..SpeedMismatchConfig::mismatch_10gbps(true, seed)
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (label, make_config) in &cases {
        // Aggregate the per-run medians/p95s across `runs` seeds, as the
        // paper aggregates over 100 runs.
        let mut med_q = Vec::new();
        let mut p95_q = Vec::new();
        let mut med_fct = Vec::new();
        let mut p95_fct = Vec::new();
        for seed in 0..runs {
            let report = run_speed_mismatch(&make_config(seed as u64 + 1));
            med_q.push(report.median_queue_pkts);
            p95_q.push(report.p95_queue_pkts);
            med_fct.push(report.median_fct_ms);
            p95_fct.push(report.p95_fct_ms);
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        rows.push(vec![
            label.to_string(),
            fmt(mean(&med_q), 1),
            fmt(mean(&p95_q), 1),
            fmt(mean(&med_fct), 1),
            fmt(mean(&p95_fct), 1),
        ]);
    }

    print_table(
        "Fig. 6: ingress queue occupancy (packets) and flow completion time (ms)",
        &[
            "configuration",
            "median_queue",
            "p95_queue",
            "median_fct_ms",
            "p95_fct_ms",
        ],
        &rows,
    );
}

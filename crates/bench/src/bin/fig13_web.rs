//! Fig. 13 — web page load times and object load times under cISP.
//!
//! Replays the synthetic 80-page corpus under three scenarios — baseline,
//! cISP (all RTTs × 0.33), and cISP-selective (client→server leg only) — and
//! prints the PLT and object-load-time CDFs plus the median improvements the
//! paper quotes (31 % / 27 % median PLT reduction, 49 % object reduction,
//! ~8.5 % of bytes on cISP for the selective variant).

use cisp_apps::web::{replay, PageCorpus, ReplayScenario};
use cisp_bench::{cdf_points, print_series, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 13 reproduction — scale: {}", scale.label());

    let pages = match scale {
        Scale::Tiny => 20,
        _ => 80,
    };
    let corpus = PageCorpus::generate(pages, 42);

    let scenarios = [
        ("baseline", ReplayScenario::Baseline),
        ("cISP", ReplayScenario::Cisp { factor: 0.33 }),
        (
            "cISP-selective",
            ReplayScenario::CispSelective { factor: 0.33 },
        ),
    ];

    let mut medians = Vec::new();
    for (label, scenario) in scenarios {
        let report = replay(&corpus, scenario);
        let mut plt_ms: Vec<f64> = report.page_load_times_s.iter().map(|&s| s * 1e3).collect();
        plt_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut obj_ms: Vec<f64> = report
            .object_load_times_s
            .iter()
            .map(|&s| s * 1e3)
            .collect();
        obj_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        print_series(&format!("PLT CDF (ms), {label}"), &cdf_points(&plt_ms));
        print_series(
            &format!("object load time CDF (ms), {label}"),
            &cdf_points(&obj_ms),
        );
        medians.push((label, report.median_plt_ms(), report.median_object_ms()));
        if label == "baseline" {
            println!(
                "# client→server byte fraction: {:.3}",
                report.client_to_server_byte_fraction
            );
        }
    }

    let baseline = medians[0];
    for &(label, plt, obj) in &medians[1..] {
        println!(
            "# {label}: median PLT {plt:.0} ms ({:.0}% reduction), median object {obj:.0} ms ({:.0}% reduction)",
            (1.0 - plt / baseline.1) * 100.0,
            (1.0 - obj / baseline.2) * 100.0
        );
    }
}

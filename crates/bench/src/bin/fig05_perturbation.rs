//! Fig. 5 — delay and loss under population perturbation.
//!
//! The network is designed and provisioned for the nominal population-product
//! matrix; the offered traffic then follows a *perturbed* matrix (each city's
//! population re-weighted by U[1−γ, 1+γ], γ ∈ {0.1, 0.3, 0.5}) at aggregate
//! loads from 10 % to 100 % of the design capacity. The paper finds mean
//! delay moves by < 0.1 ms and loss stays ≈0 up to ~70 % load even with plain
//! shortest-path routing.

use cisp_bench::{bridge::build_simulation_inputs, print_series, us_scenario, Scale};
use cisp_core::scenario::population_product_traffic;
use cisp_netsim::sim::{SimConfig, Simulation};
use cisp_traffic::perturb::perturbed_populations;

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 5 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let outcome = scenario.design(scale.us_budget_towers());
    // Design-time aggregate: keep the simulation small enough to run at all
    // scales; the *shape* (flat until ~70 %, then queueing/loss) is what the
    // figure shows and it is load-fraction-, not absolute-rate-, driven.
    let design_gbps = match scale {
        Scale::Tiny => 2.0,
        Scale::Reduced => 5.0,
        Scale::Full => 20.0,
    };
    let loads: Vec<f64> = vec![0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 1.0];
    let duration_s = 0.3;

    for &gamma in &[0.0, 0.1, 0.3, 0.5] {
        let offered = if gamma == 0.0 {
            population_product_traffic(scenario.cities())
        } else {
            let perturbed = perturbed_populations(scenario.cities(), gamma, 7);
            population_product_traffic(&perturbed)
        };
        let mut delay_points = Vec::new();
        let mut loss_points = Vec::new();
        for &load in &loads {
            let (network, demands) =
                build_simulation_inputs(&outcome.topology, &offered, design_gbps, load);
            let mut sim = Simulation::new(
                network,
                demands,
                SimConfig {
                    duration_s,
                    seed: 11,
                    ..SimConfig::default()
                },
            );
            let report = sim.run();
            delay_points.push((load * 100.0, report.mean_delay_ms));
            loss_points.push((load * 100.0, report.loss_rate * 100.0));
        }
        let label = if gamma == 0.0 {
            "matching TM".to_string()
        } else {
            format!("gamma = {gamma}")
        };
        print_series(
            &format!("mean delay (ms) vs load %, {label}"),
            &delay_points,
        );
        print_series(&format!("loss (%) vs load %, {label}"), &loss_points);
    }
}

//! Fig. 12 — thin-client gaming frame time vs conventional latency.
//!
//! Frame time (input → observed output) for a speculative-execution
//! thin-client game, with conventional connectivity only and with a parallel
//! low-latency augmentation carrying the "which speculation branch happened"
//! messages at one third of the conventional RTT.

use cisp_apps::gaming::{frame_time_sweep, GameModel};
use cisp_bench::{print_series, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 12 reproduction — scale: {}", scale.label());

    let model = GameModel::default();
    println!(
        "# processing {} ms, speculation hit rate {}, low-latency RTT fraction {:.2}, bandwidth overhead {}x",
        model.processing_ms, model.speculation_hit_rate, model.lowlat_rtt_fraction, model.bandwidth_overhead
    );
    let rows = frame_time_sweep(&model, 300.0, 25.0);

    let conventional: Vec<(f64, f64)> = rows.iter().map(|&(r, c, _)| (r, c)).collect();
    let augmented: Vec<(f64, f64)> = rows.iter().map(|&(r, _, a)| (r, a)).collect();
    print_series(
        "frame time (ms), conventional connectivity only",
        &conventional,
    );
    print_series("frame time (ms), with low-latency augmentation", &augmented);
}

//! Fig. 7 — stretch across city pairs over a year of weather.
//!
//! The designed US network is subjected to the synthetic precipitation year;
//! for each daily 30-minute interval the rain-failed links are removed and
//! every pair falls back to its shortest surviving route. Output: the four
//! CDFs the paper plots — best (fair weather), 99th percentile, worst, and
//! fiber-only stretch — over all city pairs.

use cisp_bench::{cdf_points, print_series, us_scenario, Scale};
use cisp_weather::failures::FailureConfig;
use cisp_weather::reroute::{weather_year_analysis, WeatherSeries};
use cisp_weather::storms::{StormYear, StormYearConfig};

fn main() {
    let scale = Scale::from_args();
    println!("# Fig. 7 reproduction — scale: {}", scale.label());

    let scenario = us_scenario(scale, 42);
    let outcome = scenario.design(scale.us_budget_towers());

    let days = match scale {
        Scale::Tiny => 60,
        Scale::Reduced => 180,
        Scale::Full => 365,
    };
    let year = StormYear::generate(
        scenario.config().seed,
        &StormYearConfig {
            days,
            ..StormYearConfig::us_default()
        },
    );

    let report = weather_year_analysis(&outcome.topology, &year, &FailureConfig::default());
    println!(
        "# intervals: {}, mean failed links per interval: {:.2}",
        report.intervals, report.mean_failed_links
    );

    for (series, label) in [
        (WeatherSeries::Best, "best"),
        (WeatherSeries::P99, "99th percentile"),
        (WeatherSeries::Worst, "worst"),
        (WeatherSeries::FiberOnly, "fiber"),
    ] {
        let sorted = report.sorted_series(series);
        print_series(
            &format!("CDF of stretch over geodesic, {label}"),
            &cdf_points(&sorted),
        );
        println!("# median {label}: {:.3}", report.median(series));
    }
}

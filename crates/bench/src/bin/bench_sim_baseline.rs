//! Record the packet-engine baseline: events per second — serial vs
//! component-sharded vs time-windowed.
//!
//! Four workloads:
//!
//! * `disjoint_pairs` — many independent bottleneck pairs (one component per
//!   pair), the component-sharding-friendly regime;
//! * `us_backbone` — the designed miniature US backbone lowered through
//!   `cisp_core::evaluate` with the O(n²) per-pair fiber mesh (components
//!   follow the real traffic structure);
//! * `us_backbone_conduit` — the same backbone conduit-backed: one
//!   simulator link per physical conduit segment instead of per pair
//!   (asserted strictly smaller than the mesh — the lowering's scaling
//!   win), with fiber fallbacks sharing conduit capacity;
//! * `single_component_ring` — one heavy shared-link mesh (a congested
//!   one-way ring with crossing flows), the regime where component sharding
//!   degenerates to serial and only the time-windowed engine parallelises.
//! * `us_backbone_million_user` — the hybrid fluid/packet engine's
//!   headline: the conduit-backed backbone carrying a million users' worth
//!   of bulk background traffic (10⁶ × 140 kbps = 140 Gbps) as fluid next
//!   to the packet-simulated foreground. Records the wall-clock speedup
//!   over simulating the same demand set purely packet-by-packet and the
//!   packet-equivalent events the fluid model avoided, after asserting
//!   hybrid cross-mode bit-identity and foreground-delay agreement within
//!   the documented buffer-drain envelope.
//!
//! Writes `BENCH_sim.json` (or the path given as the first argument) with
//! wall-clock medians, event throughputs, per-event costs for both event
//! queue backends (binary heap and calendar queue, with queue occupancy and
//! resize statistics), and the per-mode speedups, asserting along the way
//! that serial (under either queue backend), component-sharded and
//! time-windowed runs produce bit-identical reports. On a single-core runner the parallel
//! numbers degrade to roughly serial (thread scheduling and barrier
//! overhead aside) — the recorded speedups are hardware-dependent by
//! nature.
//!
//! Run with: `cargo run --release --bin bench_sim_baseline`

use std::time::Instant;

use cisp_bench::us_scenario;
use cisp_core::evaluate::{lower, lower_classified, EvaluateConfig};
use cisp_core::scenario::population_product_traffic;
use cisp_netsim::network::{LinkSpec, Network};
use cisp_netsim::routing::{compute_routes, Demand};
use cisp_netsim::sim::{ExecMode, SimConfig, Simulation};
use cisp_netsim::{
    BackgroundModel, ClassReport, QueueDiscipline, QueueKind, QueueStats, SimReport,
};

/// Median wall-clock milliseconds of `f` over enough repetitions to be
/// stable.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let first_ms = probe.elapsed().as_secs_f64() * 1e3;
    let reps = if first_ms < 1.0 {
        25
    } else if first_ms < 100.0 {
        7
    } else {
        3
    };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Total events a finished run processed: one per transmit attempt
/// (forwarded or dropped) plus one per delivery.
fn events_processed(sim: &Simulation, delivered: u64, dropped: u64) -> u64 {
    let forwarded: u64 = sim.network().states().packets_forwarded.iter().sum();
    forwarded + dropped + delivered
}

/// `pairs` independent 10 Mbps bottlenecks at 80 % load.
fn disjoint_pairs(pairs: usize) -> (Network, Vec<Demand>) {
    let mut net = Network::new(2 * pairs);
    let mut demands = Vec::new();
    for p in 0..pairs {
        net.add_link(LinkSpec {
            from: 2 * p,
            to: 2 * p + 1,
            rate_bps: 10e6,
            propagation_s: 0.002 + p as f64 * 1e-4,
            buffer_bytes: 50_000.0,
        });
        demands.push(Demand::new(2 * p, 2 * p + 1, 8e6));
    }
    (net, demands)
}

/// One heavy single-component mesh: a congested one-way ring of `nodes`
/// links with crossing multi-hop flows, so every route shares links with
/// others. Component sharding degenerates to serial here — this is the
/// workload the time-windowed engine exists for.
fn single_component_ring(nodes: usize) -> (Network, Vec<Demand>) {
    let mut net = Network::new(nodes);
    for i in 0..nodes {
        net.add_link(LinkSpec {
            from: i,
            to: (i + 1) % nodes,
            rate_bps: 40e6,
            propagation_s: 0.001 + (i as f64) * 2e-4,
            buffer_bytes: 60_000.0,
        });
    }
    let mut demands = Vec::new();
    for i in 0..nodes {
        demands.push(Demand::new(i, (i + nodes / 2) % nodes, 2.5e6));
    }
    (net, demands)
}

struct WorkloadReport {
    name: &'static str,
    events: u64,
    links: usize,
    serial_ms: f64,
    serial_calendar_ms: f64,
    sharded_ms: f64,
    windowed_ms: f64,
    components: usize,
    heap_queue: QueueStats,
    calendar_queue: QueueStats,
}

fn measure(
    name: &'static str,
    network: Network,
    demands: Vec<Demand>,
    base: SimConfig,
) -> WorkloadReport {
    let serial_config = SimConfig { workers: 1, ..base };
    let calendar_config = SimConfig {
        workers: 1,
        queue: QueueKind::Calendar,
        ..base
    };
    let sharded_config = SimConfig { workers: 0, ..base };
    let windowed_config = SimConfig {
        workers: 0,
        mode: ExecMode::windowed_auto(),
        ..base
    };

    // Parity check + event count (identical between modes and queue
    // backends by construction, asserted here).
    let mut serial_sim = Simulation::new(network.clone(), demands.clone(), serial_config);
    let serial_report = serial_sim.run();
    let mut calendar_sim = Simulation::new(network.clone(), demands.clone(), calendar_config);
    let calendar_report = calendar_sim.run();
    assert_eq!(
        serial_report, calendar_report,
        "{name}: heap and calendar-queue reports must be bit-identical"
    );
    let mut sharded_sim = Simulation::new(network.clone(), demands.clone(), sharded_config);
    let sharded_report = sharded_sim.run();
    assert_eq!(
        serial_report, sharded_report,
        "{name}: serial and sharded reports must be bit-identical"
    );
    let mut windowed_sim = Simulation::new(network.clone(), demands.clone(), windowed_config);
    let windowed_report = windowed_sim.run();
    assert_eq!(
        serial_report, windowed_report,
        "{name}: serial and time-windowed reports must be bit-identical"
    );
    let events = events_processed(&serial_sim, serial_report.delivered, serial_report.dropped);

    let serial_ms = median_ms(|| {
        serial_sim.run();
    });
    let serial_calendar_ms = median_ms(|| {
        calendar_sim.run();
    });
    let sharded_ms = median_ms(|| {
        sharded_sim.run();
    });
    let windowed_ms = median_ms(|| {
        windowed_sim.run();
    });

    let components = serial_sim.num_components();

    WorkloadReport {
        name,
        events,
        links: serial_sim.network().num_links(),
        serial_ms,
        serial_calendar_ms,
        sharded_ms,
        windowed_ms,
        components,
        heap_queue: serial_sim.queue_stats(),
        calendar_queue: calendar_sim.queue_stats(),
    }
}

struct HybridReport {
    events_packet: u64,
    events_hybrid: u64,
    packet_equivalent_events_avoided: f64,
    pure_packet_ms: f64,
    hybrid_ms: f64,
    background_flows: usize,
    foreground_flows: usize,
    /// Foreground class statistics of the same hybrid workload under each
    /// queue discipline, in `[Fifo, StrictPriority, WeightedFair]` order.
    discipline_fg: [ClassReport; 3],
    /// Background delivered bits under the same disciplines, same order.
    discipline_bg_bits: [f64; 3],
}

/// Run the hybrid workload: same network and demand set, once with the
/// background class as fluid and once purely packet-by-packet. Asserts the
/// hybrid report is bit-identical across execution modes and that hybrid
/// foreground delays agree with the pure-packet run within the documented
/// envelope (the summed buffer-drain time along each flow's route) before
/// timing either engine.
fn measure_hybrid(network: Network, demands: Vec<Demand>, base: SimConfig) -> HybridReport {
    let hybrid_config = SimConfig {
        workers: 1,
        background: BackgroundModel::Fluid,
        ..base
    };
    let packet_config = SimConfig {
        workers: 1,
        background: BackgroundModel::Packet,
        ..base
    };

    let mut hybrid_sim = Simulation::new(network.clone(), demands.clone(), hybrid_config);
    let hybrid = hybrid_sim.run();
    // Hybrid reports obey the same cross-mode bit-identity contract as pure
    // packet runs: the fluid solution is computed once, up front.
    for config in [
        SimConfig {
            workers: 0,
            ..hybrid_config
        },
        SimConfig {
            workers: 0,
            mode: ExecMode::windowed_auto(),
            ..hybrid_config
        },
    ] {
        let parallel = Simulation::new(network.clone(), demands.clone(), config).run();
        assert_eq!(
            hybrid, parallel,
            "hybrid reports must be bit-identical across execution modes"
        );
    }

    let mut packet_sim = Simulation::new(network.clone(), demands.clone(), packet_config);
    let packet = packet_sim.run();

    // Foreground agreement: per-flow mean delays match the pure-packet run
    // within the fluid model's envelope — the drain time of every buffer
    // along the flow's route (class interleaving below the packet scale is
    // exactly what the fluid abstraction trades away).
    let routes = compute_routes(&network, &demands, base.routing);
    for (k, d) in demands.iter().enumerate() {
        if d.is_background() || hybrid.flow_delivered[k] == 0 || packet.flow_delivered[k] == 0 {
            continue;
        }
        let envelope_ms: f64 = routes
            .route(k)
            .iter()
            .map(|&l| {
                let spec = network.link(l as usize);
                spec.buffer_bytes * 8.0 / spec.rate_bps * 1e3
            })
            .sum();
        let diff = (hybrid.flow_mean_delay_ms[k] - packet.flow_mean_delay_ms[k]).abs();
        assert!(
            diff <= envelope_ms + 1e-9,
            "foreground flow {k}: hybrid {} ms vs packet {} ms exceeds the {envelope_ms} ms envelope",
            hybrid.flow_mean_delay_ms[k],
            packet.flow_mean_delay_ms[k],
        );
    }

    let bg = hybrid
        .background
        .expect("hybrid run must report background stats");
    assert!(
        !bg.truncated,
        "the fluid solver's safety valve must not fire on the benchmark workload"
    );

    // Per-discipline foreground tail on the same hybrid workload. An
    // explicit `Fifo` config must reproduce the default-config report
    // bit-identically (asserted before any timing below), and strict
    // priority must strictly improve the foreground P99 queueing delay
    // while the fluid background keeps delivering within 5% of FIFO's bits.
    let discipline_report = |discipline: QueueDiscipline| {
        Simulation::new(
            network.clone(),
            demands.clone(),
            SimConfig {
                discipline,
                ..hybrid_config
            },
        )
        .run()
    };
    let fifo = discipline_report(QueueDiscipline::Fifo);
    assert_eq!(
        hybrid, fifo,
        "an explicit Fifo discipline must be bit-identical to the default config"
    );
    let sp = discipline_report(QueueDiscipline::StrictPriority);
    let wfq = discipline_report(QueueDiscipline::WeightedFair);
    let fg_class = |r: &SimReport| {
        r.per_class
            .expect("classified hybrid run must report per-class stats")
            .foreground
    };
    let bg_bits = |r: &SimReport| {
        r.background
            .expect("hybrid run must report background stats")
            .delivered_bits
    };
    let (fifo_fg, sp_fg, wfq_fg) = (fg_class(&fifo), fg_class(&sp), fg_class(&wfq));
    assert!(
        sp_fg.p99_queue_delay_ms < fifo_fg.p99_queue_delay_ms,
        "strict priority must strictly improve the foreground P99 queueing delay: {} ms vs FIFO's {} ms",
        sp_fg.p99_queue_delay_ms,
        fifo_fg.p99_queue_delay_ms,
    );
    let bg_ratio = bg_bits(&sp) / bg_bits(&fifo);
    assert!(
        (bg_ratio - 1.0).abs() <= 0.05,
        "strict priority must keep background delivered bits within 5% of FIFO's, got ratio {bg_ratio}"
    );

    let events_hybrid = events_processed(&hybrid_sim, hybrid.delivered, hybrid.dropped);
    let events_packet = events_processed(&packet_sim, packet.delivered, packet.dropped);

    let hybrid_ms = median_ms(|| {
        hybrid_sim.run();
    });
    let pure_packet_ms = median_ms(|| {
        packet_sim.run();
    });

    HybridReport {
        events_packet,
        events_hybrid,
        packet_equivalent_events_avoided: bg.packet_equivalent_events,
        pure_packet_ms,
        hybrid_ms,
        background_flows: bg.flows,
        foreground_flows: demands.iter().filter(|d| !d.is_background()).count(),
        discipline_fg: [fifo_fg, sp_fg, wfq_fg],
        discipline_bg_bits: [bg_bits(&fifo), bg_bits(&sp), bg_bits(&wfq)],
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    let mut reports = Vec::new();

    {
        let (net, demands) = disjoint_pairs(16);
        let config = SimConfig {
            duration_s: 1.0,
            ..SimConfig::default()
        };
        reports.push(measure("disjoint_pairs_16", net, demands, config));
    }

    {
        let scenario = us_scenario(cisp_bench::Scale::Tiny, 42);
        let outcome = scenario.design(300.0);
        let traffic = population_product_traffic(scenario.cities());
        let eval_config = EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.7,
            ..EvaluateConfig::default()
        };
        let lowered = lower(&outcome.topology, &traffic, &eval_config);
        let conduit_topo = scenario.conduit_backed_topology(&outcome);
        let conduit_lowered = lower(&conduit_topo, &traffic, &eval_config);
        // The conduit lowering's structural invariants: one simulator link
        // per conduit segment (plus the MW spine) — strictly fewer links
        // than the O(n²) pair mesh and below n² outright — over a
        // bit-identical effective distance matrix.
        let n = scenario.cities().len();
        assert_eq!(
            conduit_topo.effective_matrix(),
            outcome.topology.effective_matrix(),
            "conduit-backed topology must match the designed matrix bit for bit"
        );
        assert_eq!(
            conduit_lowered.network.num_links(),
            2 * (outcome.topology.mw_links().len() + scenario.fiber().links().len())
        );
        assert!(
            conduit_lowered.network.num_links() < lowered.network.num_links(),
            "conduit lowering must emit fewer links than the pair mesh"
        );
        assert!(conduit_lowered.network.num_links() < n * n);
        let config = SimConfig {
            duration_s: 0.3,
            ..SimConfig::default()
        };
        reports.push(measure(
            "us_backbone_tiny",
            lowered.network,
            lowered.demands,
            config,
        ));
        reports.push(measure(
            "us_backbone_conduit_tiny",
            conduit_lowered.network,
            conduit_lowered.demands,
            config,
        ));
    }

    {
        let (net, demands) = single_component_ring(24);
        let config = SimConfig {
            duration_s: 0.5,
            ..SimConfig::default()
        };
        reports.push(measure("single_component_ring_24", net, demands, config));
    }

    // Hybrid headline workload: the conduit-backed backbone with a million
    // users' worth of bulk background traffic (10⁶ × 140 kbps = 140 Gbps)
    // next to a 2 Gbps packet-simulated foreground.
    let hybrid = {
        let scenario = us_scenario(cisp_bench::Scale::Tiny, 42);
        let outcome = scenario.design(300.0);
        let traffic = population_product_traffic(scenario.cities());
        let eval_config = EvaluateConfig {
            design_aggregate_gbps: 4.0,
            load_fraction: 0.5,
            // Deep MW buffers so the fluid backlog's ramp on oversubscribed
            // links shows up as *delay* in delivered foreground packets (the
            // per-discipline contrast below), not just as drops: with the
            // default shallow buffer the backlog pins at the buffer ceiling
            // and FIFO's foreground queueing is all-or-nothing.
            mw_buffer_bytes: 2_000_000.0,
            ..EvaluateConfig::default()
        };
        let conduit_topo = scenario.conduit_backed_topology(&outcome);
        let lowered = lower_classified(&conduit_topo, &traffic, &traffic, 140.0, &eval_config);
        let config = SimConfig {
            duration_s: 0.05,
            ..SimConfig::default()
        };
        measure_hybrid(lowered.network, lowered.demands, config)
    };
    let hybrid_speedup = hybrid.pure_packet_ms / hybrid.hybrid_ms;
    println!(
        "us_backbone_million_user: pure packet {:.2} ms ({} events) vs hybrid {:.2} ms ({} events): {:.1}x, {:.0} packet-equivalent events avoided",
        hybrid.pure_packet_ms,
        hybrid.events_packet,
        hybrid.hybrid_ms,
        hybrid.events_hybrid,
        hybrid_speedup,
        hybrid.packet_equivalent_events_avoided,
    );
    assert!(
        hybrid_speedup >= 10.0,
        "hybrid engine must be at least 10x faster than pure packet on the million-user workload, got {hybrid_speedup:.1}x"
    );
    for (label, fg) in ["fifo", "strict_priority", "weighted_fair"]
        .iter()
        .zip(&hybrid.discipline_fg)
    {
        println!(
            "us_backbone_million_user[{label}]: fg P99 delay {:.3} ms, fg P99 queueing delay {:.3} ms",
            fg.p99_delay_ms, fg.p99_queue_delay_ms,
        );
    }

    let mut entries = Vec::new();
    for r in &reports {
        let serial_eps = r.events as f64 / (r.serial_ms / 1e3);
        let sharded_eps = r.events as f64 / (r.sharded_ms / 1e3);
        let windowed_eps = r.events as f64 / (r.windowed_ms / 1e3);
        let serial_ns_per_event = r.serial_ms * 1e6 / r.events as f64;
        let calendar_ns_per_event = r.serial_calendar_ms * 1e6 / r.events as f64;
        println!(
            "{:<26} {:>9} events, {:>4} links: serial {:8.2} ms ({:>6.1} ns/ev), calendar {:8.2} ms ({:>6.1} ns/ev), sharded {:8.2} ms ({:.2}x), windowed {:8.2} ms ({:.2}x)",
            r.name,
            r.events,
            r.links,
            r.serial_ms,
            serial_ns_per_event,
            r.serial_calendar_ms,
            calendar_ns_per_event,
            r.sharded_ms,
            r.serial_ms / r.sharded_ms,
            r.windowed_ms,
            r.serial_ms / r.windowed_ms,
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"events\": {},\n",
                "      \"links\": {},\n",
                "      \"components\": {},\n",
                "      \"serial_ms\": {:.4},\n",
                "      \"serial_calendar_ms\": {:.4},\n",
                "      \"sharded_ms\": {:.4},\n",
                "      \"windowed_ms\": {:.4},\n",
                "      \"serial_events_per_sec\": {:.0},\n",
                "      \"sharded_events_per_sec\": {:.0},\n",
                "      \"windowed_events_per_sec\": {:.0},\n",
                "      \"serial_ns_per_event\": {:.2},\n",
                "      \"calendar_ns_per_event\": {:.2},\n",
                "      \"calendar_speedup\": {:.3},\n",
                "      \"sharded_speedup\": {:.3},\n",
                "      \"windowed_speedup\": {:.3},\n",
                "      \"heap_queue\": {{ \"pushes\": {}, \"mean_occupancy\": {:.1}, \"peak_occupancy\": {} }},\n",
                "      \"calendar_queue\": {{ \"pushes\": {}, \"mean_occupancy\": {:.1}, \"peak_occupancy\": {}, \"resizes\": {} }}\n",
                "    }}"
            ),
            r.name,
            r.events,
            r.links,
            r.components,
            r.serial_ms,
            r.serial_calendar_ms,
            r.sharded_ms,
            r.windowed_ms,
            serial_eps,
            sharded_eps,
            windowed_eps,
            serial_ns_per_event,
            calendar_ns_per_event,
            r.serial_ms / r.serial_calendar_ms,
            r.serial_ms / r.sharded_ms,
            r.serial_ms / r.windowed_ms,
            r.heap_queue.pushes,
            r.heap_queue.mean_occupancy(),
            r.heap_queue.peak_occupancy,
            r.calendar_queue.pushes,
            r.calendar_queue.mean_occupancy(),
            r.calendar_queue.peak_occupancy,
            r.calendar_queue.resizes,
        ));
    }

    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let hybrid_json = format!(
        concat!(
            "  \"hybrid\": {{\n",
            "    \"workload\": \"us_backbone_million_user\",\n",
            "    \"users_equivalent\": 1000000,\n",
            "    \"background_gbps\": 140.0,\n",
            "    \"foreground_flows\": {},\n",
            "    \"background_flows\": {},\n",
            "    \"pure_packet_ms\": {:.4},\n",
            "    \"hybrid_ms\": {:.4},\n",
            "    \"speedup\": {:.1},\n",
            "    \"events_pure_packet\": {},\n",
            "    \"events_hybrid\": {},\n",
            "    \"packet_equivalent_events_avoided\": {:.0},\n",
            "    \"disciplines\": {{\n",
            "{}\n",
            "    }}\n",
            "  }}"
        ),
        hybrid.foreground_flows,
        hybrid.background_flows,
        hybrid.pure_packet_ms,
        hybrid.hybrid_ms,
        hybrid_speedup,
        hybrid.events_packet,
        hybrid.events_hybrid,
        hybrid.packet_equivalent_events_avoided,
        ["fifo", "strict_priority", "weighted_fair"]
            .iter()
            .zip(&hybrid.discipline_fg)
            .zip(&hybrid.discipline_bg_bits)
            .map(|((label, fg), bg_bits)| format!(
                concat!(
                    "      \"{}\": {{ \"fg_p99_delay_ms\": {:.4}, ",
                    "\"fg_p99_queue_delay_ms\": {:.4}, ",
                    "\"fg_mean_delay_ms\": {:.4}, ",
                    "\"bg_delivered_bits\": {:.0} }}"
                ),
                label, fg.p99_delay_ms, fg.p99_queue_delay_ms, fg.mean_delay_ms, bg_bits,
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"packet engine event throughput: serial vs component-sharded vs time-windowed, plus the hybrid fluid/packet engine\",\n",
            "  \"command\": \"cargo run --release --bin bench_sim_baseline\",\n",
            "  \"available_parallelism\": {},\n",
            "  \"note\": \"serial (heap and calendar queue), component-sharded and time-windowed reports asserted bit-identical before timing; hybrid foreground delays asserted within the buffer-drain envelope of the pure-packet run\",\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "{}\n",
            "}}\n"
        ),
        workers,
        entries.join(",\n"),
        hybrid_json
    );
    std::fs::write(&out_path, json).expect("write baseline file");
    println!("wrote {out_path}");
}

//! Record the design-engine baseline: incremental delta-scoring vs full
//! rescoring, per greedy round and end to end, at n ∈ {30, 60, 120}.
//!
//! Writes `BENCH_design.json` (or the path given as the first non-flag
//! argument) with wall-clock medians and the speedup ratios, and asserts
//! along the way that both engines select identical designs. All
//! measurements are serial (`parallel: false`) so the recorded baseline does
//! not depend on the machine's core count.
//!
//! Output schema v3 (v2 added the kernel costs and the `full_scale` object):
//! the `full_scale` entry gains a per-stage `stage_profile` of the pool
//! build (hop sweep / attach / search / extract), the sharded parallel
//! build time (`build_pruned_parallel_ms`, asserted to emit the identical
//! pool), the count of zero-attached sites, and the speedup over the
//! schema-2 recorded baseline (`prior_build_pruned_ms`); `--tiny` emits the
//! miniature scenario's `stage_profile` at the top level so CI can assert
//! the schema. As before, the pruned pool is asserted bit-identical to the
//! oracle-filtered unpruned pool and both scenarios' selected link
//! sequences asserted identical, *before* anything is timed.
//!
//! Run with: `cargo run --release --bin bench_design_baseline [-- PATH]
//! [--tiny | --full]`. `--tiny` is the CI smoke mode (n = 30 plus the
//! miniature-scenario pruning parity check); `--full` appends the
//! paper-scale entry to the default sizes.

use std::sync::RwLock;
use std::time::Instant;

use cisp_bench::{synthetic_design_input, Scale};
use cisp_core::design::{
    score_candidates, DesignConfig, DesignOutcome, Designer, ScoringEngine,
    AUTO_FULL_RESCORE_MAX_POOL,
};
use cisp_core::engine::{RoundUpdate, ScoreContext, ShardState};
use cisp_core::scenario::{PoolBuildProfile, Scenario, ScenarioConfig};
use cisp_core::topology::{mean_stretch_with_link, mean_stretch_with_link_compact, ScoringWeights};
use cisp_data::towers::TowerRegistryConfig;
use cisp_graph::{improve_with_link_tracked, ImprovedPairs};

/// Median wall-clock milliseconds of `f` over enough repetitions to be
/// stable (at least 3, more for sub-100ms bodies).
fn median_ms(mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let first_ms = probe.elapsed().as_secs_f64() * 1e3;
    let reps = if first_ms < 1.0 {
        25
    } else if first_ms < 100.0 {
        7
    } else {
        3
    };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct SizeReport {
    n: usize,
    pool: usize,
    round_full_rescore_ms: f64,
    round_incremental_ms: f64,
    greedy_full_rescore_ms: f64,
    greedy_incremental_ms: f64,
    selected_links: usize,
    kernel_scalar_ns_per_pair: f64,
    kernel_compact_ns_per_pair: f64,
    repair_row_skip_ratio: f64,
}

fn measure(n: usize) -> SizeReport {
    let input = synthetic_design_input(n);
    let pool = input.useful_candidates();
    let budget = (4 * n) as f64;
    let incremental_config = DesignConfig {
        parallel: false,
        engine: ScoringEngine::Incremental,
        ..DesignConfig::default()
    };
    let full_config = DesignConfig {
        engine: ScoringEngine::FullRescore,
        ..incremental_config
    };

    // --- Per-round inner loop: pause the real greedy mid-run — warm the
    // topology with its first selections, then measure the round that
    // accepts the next one.
    let trajectory = Designer::with_config(&input, incremental_config)
        .greedy(budget)
        .selected;
    assert!(trajectory.len() >= 2, "trajectory too short at n = {n}");
    let split = trajectory.len() * 2 / 3;
    let accepted = trajectory[split];
    let accepted_pos = pool.iter().position(|&idx| idx == accepted).unwrap();
    let mut topology = input.empty_topology();
    for &idx in &trajectory[..split] {
        topology.add_mw_link(input.candidates[idx].clone());
    }
    let mut after = topology.clone();
    after.add_mw_link(input.candidates[accepted].clone());
    let round_full_rescore_ms =
        median_ms(|| drop(score_candidates(&after, &input.candidates, &pool, false)));

    // --- Kernel cost per scored pair: one sweep of the whole pool against
    // the warm matrix with each kernel, normalised by pool × pair count.
    let pair_evals = (pool.len() * n * (n - 1) / 2) as f64;
    let mut sw = ScoringWeights::compute(
        topology.effective_matrix(),
        topology.geodesic_matrix(),
        topology.traffic(),
    )
    .expect("synthetic input is finite");
    assert!(
        sw.enable_gain_bounds(topology.effective_matrix()),
        "synthetic input is metric"
    );
    let kernel_scalar_ns_per_pair = median_ms(|| {
        let mut acc = 0.0;
        for &idx in &pool {
            let l = &input.candidates[idx];
            acc += mean_stretch_with_link(
                topology.effective_matrix(),
                topology.geodesic_matrix(),
                topology.traffic(),
                l.site_a,
                l.site_b,
                l.mw_length_km,
            );
        }
        std::hint::black_box(acc);
    }) * 1e6
        / pair_evals;
    let kernel_compact_ns_per_pair = median_ms(|| {
        let mut acc = 0.0;
        for &idx in &pool {
            let l = &input.candidates[idx];
            acc += mean_stretch_with_link_compact(
                topology.effective_matrix(),
                &sw,
                l.site_a,
                l.site_b,
                l.mw_length_km,
            );
        }
        std::hint::black_box(acc);
    }) * 1e6
        / pair_evals;

    // --- One incremental repair round, on the same warm state.
    let matrix = RwLock::new(topology.effective_matrix().clone());
    let ctx = ScoreContext {
        candidates: &input.candidates,
        pool: &pool,
        geodesic: topology.geodesic_matrix(),
        traffic: topology.traffic(),
        matrix: &matrix,
        sw: Some(&sw),
    };
    let mut state = ShardState::new(0..pool.len());
    state.init_score(&ctx);
    let link = &input.candidates[accepted];
    let mut improved = ImprovedPairs::new(n);
    {
        let mut m = matrix.write().unwrap();
        improve_with_link_tracked(
            &mut m,
            link.site_a,
            link.site_b,
            link.mw_length_km,
            &mut improved,
        );
    }
    let update = RoundUpdate::new(
        improved,
        Some(accepted_pos),
        Vec::new(),
        &matrix.read().unwrap(),
        &sw,
    );
    let round_incremental_ms = median_ms(|| {
        let mut shard = state.clone();
        shard.apply(&ctx, &update);
    });
    let repair_row_skip_ratio = {
        let mut probe = state.clone();
        probe.apply(&ctx, &update);
        let stats = probe.stats();
        if stats.rows_affected == 0 {
            0.0
        } else {
            stats.rows_skipped as f64 / stats.rows_affected as f64
        }
    };

    // --- End-to-end greedy, both engines, serial.
    let incremental = Designer::with_config(&input, incremental_config).greedy(budget);
    let full = Designer::with_config(&input, full_config).greedy(budget);
    assert_eq!(
        incremental.selected, full.selected,
        "engines diverged at n = {n}"
    );
    let greedy_incremental_ms =
        median_ms(|| drop(Designer::with_config(&input, incremental_config).greedy(budget)));
    let greedy_full_rescore_ms =
        median_ms(|| drop(Designer::with_config(&input, full_config).greedy(budget)));

    SizeReport {
        n,
        pool: pool.len(),
        round_full_rescore_ms,
        round_incremental_ms,
        greedy_full_rescore_ms,
        greedy_incremental_ms,
        selected_links: incremental.selected.len(),
        kernel_scalar_ns_per_pair,
        kernel_compact_ns_per_pair,
        repair_row_skip_ratio,
    }
}

/// Selected links as physical `(site_a, site_b, length)` tuples — the two
/// scenarios' candidate indices differ (the pruned pool omits useless
/// links), so index sequences are not comparable but link sequences are.
fn selected_link_keys(scenario: &Scenario, outcome: &DesignOutcome) -> Vec<(usize, usize, f64)> {
    outcome
        .selected
        .iter()
        .map(|&i| {
            let l = &scenario.design_input().candidates[i];
            (l.site_a, l.site_b, l.mw_length_km)
        })
        .collect()
}

/// Assert that `pruned`'s candidate pool is exactly the oracle-surviving
/// subset of `unpruned`'s, bit-identical link by link, and that both
/// scenarios select identical link sequences at `budget`.
fn assert_pruning_parity(pruned: &Scenario, unpruned: &Scenario, budget: f64) {
    let useful = unpruned.design_input().useful_candidates();
    assert_eq!(
        pruned.design_input().candidates.len(),
        useful.len(),
        "pruned pool size mismatch"
    );
    for (p, &u) in pruned.design_input().candidates.iter().zip(&useful) {
        assert_eq!(
            p,
            &unpruned.design_input().candidates[u],
            "pruned pool diverged from the oracle-filtered unpruned pool"
        );
    }
    let a = pruned.design(budget);
    let b = unpruned.design(budget);
    assert_eq!(
        selected_link_keys(pruned, &a),
        selected_link_keys(unpruned, &b),
        "pruned and unpruned scenarios selected different links"
    );
    assert!(
        (a.mean_stretch - b.mean_stretch).abs() == 0.0,
        "pruned and unpruned scenarios reached different stretch"
    );
}

/// The schema-2 recorded serial pool-build time (PR 8's `BENCH_design.json`,
/// same scenario and seed) — the baseline the CSR-core rebuild is measured
/// against.
const PRIOR_BUILD_PRUNED_MS: f64 = 98_706.5;

struct FullScaleReport {
    sites: usize,
    towers: usize,
    pool: usize,
    budget: f64,
    build_pruned_ms: f64,
    build_unpruned_ms: f64,
    build_pruned_parallel_ms: f64,
    profile: PoolBuildProfile,
    zero_attached_sites: usize,
    generation_prune_ratio: f64,
    pairs_total: u64,
    pairs_bounded_out: u64,
    design_ms: f64,
    greedy_ms: f64,
    greedy_rounds: usize,
    greedy_round_ms: f64,
    selected_links: usize,
    mean_stretch: f64,
    total_towers: usize,
}

/// The paper-scale US entry: every quantity measured once (this is the
/// budgeted mode — a full build already takes long enough that medians
/// would triple the cost for little gain on a quiet runner). Builds are
/// timed serial (`pool_workers = 1`) so the recorded numbers don't depend
/// on the runner's core count; the sharded build is timed separately and
/// asserted to emit the identical pool.
fn measure_full_scale() -> FullScaleReport {
    let seed = 42;
    let mut config = ScenarioConfig::us_paper(seed);
    config.towers = TowerRegistryConfig {
        raw_count: Scale::Full.raw_towers(),
        ..TowerRegistryConfig::default()
    };
    config.pool_workers = 1;
    let t = Instant::now();
    let pruned = Scenario::build(&config);
    let build_pruned_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut unpruned_config = config.clone();
    unpruned_config.prune_candidates = false;
    let t = Instant::now();
    let unpruned = Scenario::build(&unpruned_config);
    let build_unpruned_ms = t.elapsed().as_secs_f64() * 1e3;

    let budget = Scale::Full.us_budget_towers();
    // Exactness first, timing second.
    assert_pruning_parity(&pruned, &unpruned, budget);
    let stats = pruned.pool_stats().expect("pruned build records stats");

    // The sharded build must emit the bit-identical pool.
    let mut parallel_config = config.clone();
    parallel_config.pool_workers = 0;
    let t = Instant::now();
    let parallel = Scenario::build(&parallel_config);
    let build_pruned_parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        parallel.design_input().candidates,
        pruned.design_input().candidates,
        "sharded pool build diverged from the serial pool"
    );
    assert_eq!(parallel.pool_stats(), pruned.pool_stats());

    let t = Instant::now();
    let greedy = pruned.design_greedy(budget);
    let greedy_ms = t.elapsed().as_secs_f64() * 1e3;
    // Rounds = one scoring scan per accepted link plus the final scan that
    // finds nothing above `min_gain`.
    let greedy_rounds = greedy.selected.len() + 1;
    let t = Instant::now();
    let designed = pruned.design(budget);
    let design_ms = t.elapsed().as_secs_f64() * 1e3;

    FullScaleReport {
        sites: pruned.cities().len(),
        towers: pruned.towers().len(),
        pool: pruned.design_input().candidates.len(),
        budget,
        build_pruned_ms,
        build_unpruned_ms,
        build_pruned_parallel_ms,
        profile: pruned.pool_profile(),
        zero_attached_sites: pruned.attachment_report().zero_attached().len(),
        generation_prune_ratio: stats.generation_prune_ratio(),
        pairs_total: stats.pairs_total,
        pairs_bounded_out: stats.bucket_pruned + stats.pair_pruned,
        design_ms,
        greedy_ms,
        greedy_rounds,
        greedy_round_ms: greedy_ms / greedy_rounds as f64,
        selected_links: designed.selected.len(),
        mean_stretch: designed.mean_stretch,
        total_towers: designed.total_towers,
    }
}

fn size_entry(r: &SizeReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"n\": {},\n",
            "      \"pool_candidates\": {},\n",
            "      \"selected_links\": {},\n",
            "      \"round_full_rescore_ms\": {:.4},\n",
            "      \"round_incremental_ms\": {:.4},\n",
            "      \"round_speedup\": {:.2},\n",
            "      \"greedy_full_rescore_ms\": {:.2},\n",
            "      \"greedy_incremental_ms\": {:.2},\n",
            "      \"greedy_speedup\": {:.2},\n",
            "      \"kernel_scalar_ns_per_pair\": {:.3},\n",
            "      \"kernel_compact_ns_per_pair\": {:.3},\n",
            "      \"repair_row_skip_ratio\": {:.4}\n",
            "    }}"
        ),
        r.n,
        r.pool,
        r.selected_links,
        r.round_full_rescore_ms,
        r.round_incremental_ms,
        r.round_full_rescore_ms / r.round_incremental_ms,
        r.greedy_full_rescore_ms,
        r.greedy_incremental_ms,
        r.greedy_full_rescore_ms / r.greedy_incremental_ms,
        r.kernel_scalar_ns_per_pair,
        r.kernel_compact_ns_per_pair,
        r.repair_row_skip_ratio,
    )
}

/// Render a [`PoolBuildProfile`] as a JSON object at `indent` spaces.
fn stage_profile_entry(p: &PoolBuildProfile, indent: usize) -> String {
    let pad = " ".repeat(indent);
    format!(
        concat!(
            "{{\n",
            "{pad}  \"hop_sweep_ms\": {:.1},\n",
            "{pad}  \"attach_ms\": {:.1},\n",
            "{pad}  \"search_ms\": {:.1},\n",
            "{pad}  \"extract_ms\": {:.1},\n",
            "{pad}  \"total_ms\": {:.1}\n",
            "{pad}}}"
        ),
        p.hop_sweep_ms,
        p.attach_ms,
        p.search_ms,
        p.extract_ms,
        p.total_ms,
        pad = pad,
    )
}

fn full_scale_entry(r: &FullScaleReport) -> String {
    format!(
        concat!(
            "  \"full_scale\": {{\n",
            "    \"scenario\": \"us_paper(42), {} sites, {} towers\",\n",
            "    \"budget_towers\": {},\n",
            "    \"pool_candidates\": {},\n",
            "    \"build_pruned_ms\": {:.1},\n",
            "    \"build_unpruned_ms\": {:.1},\n",
            "    \"build_pruned_parallel_ms\": {:.1},\n",
            "    \"prior_build_pruned_ms\": {:.1},\n",
            "    \"build_speedup_vs_prior\": {:.2},\n",
            "    \"stage_profile\": {},\n",
            "    \"zero_attached_sites\": {},\n",
            "    \"generation_prune_ratio\": {:.4},\n",
            "    \"pairs_total\": {},\n",
            "    \"pairs_bounded_out\": {},\n",
            "    \"greedy_ms\": {:.1},\n",
            "    \"greedy_rounds\": {},\n",
            "    \"greedy_round_ms\": {:.2},\n",
            "    \"cisp_design_ms\": {:.1},\n",
            "    \"selected_links\": {},\n",
            "    \"total_towers\": {},\n",
            "    \"mean_stretch\": {:.6},\n",
            "    \"pruning_parity\": \"pruned pool == oracle-filtered unpruned pool == sharded pool; identical selections\"\n",
            "  }},\n"
        ),
        r.sites,
        r.towers,
        r.budget,
        r.pool,
        r.build_pruned_ms,
        r.build_unpruned_ms,
        r.build_pruned_parallel_ms,
        PRIOR_BUILD_PRUNED_MS,
        PRIOR_BUILD_PRUNED_MS / r.build_pruned_ms,
        stage_profile_entry(&r.profile, 4),
        r.zero_attached_sites,
        r.generation_prune_ratio,
        r.pairs_total,
        r.pairs_bounded_out,
        r.greedy_ms,
        r.greedy_rounds,
        r.greedy_round_ms,
        r.design_ms,
        r.selected_links,
        r.total_towers,
        r.mean_stretch,
    )
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_design.json".to_string());
    let scale = Scale::from_args();

    let mut tiny_profile = String::new();
    if scale == Scale::Tiny {
        // CI smoke: the miniature scenario's pruning parity, asserted end
        // to end, plus the smallest synthetic measurement. Also checks the
        // sharded build emits the identical pool and exports the stage
        // profile so CI can assert the schema.
        let pruned = Scenario::build(&ScenarioConfig::tiny_test());
        let mut unpruned_config = ScenarioConfig::tiny_test();
        unpruned_config.prune_candidates = false;
        let unpruned = Scenario::build(&unpruned_config);
        assert_pruning_parity(&pruned, &unpruned, 250.0);
        let mut serial_config = ScenarioConfig::tiny_test();
        serial_config.pool_workers = 1;
        let serial = Scenario::build(&serial_config);
        assert_eq!(
            serial.design_input().candidates,
            pruned.design_input().candidates,
            "sharded pool build diverged from the serial pool"
        );
        tiny_profile = format!(
            "  \"stage_profile\": {},\n",
            stage_profile_entry(&serial.pool_profile(), 2)
        );
        println!("tiny-scenario pruning + shard parity: ok");
    }

    let sizes: &[usize] = if scale == Scale::Tiny {
        &[30]
    } else {
        &[30, 60, 120]
    };
    let mut entries = Vec::new();
    for &n in sizes {
        let r = measure(n);
        println!(
            "n = {:3}: round {:9.3} ms -> {:7.3} ms ({:5.1}x), greedy {:9.1} ms -> {:8.1} ms ({:4.1}x), {} links, kernel {:.2} -> {:.2} ns/pair, row-skip {:.1}%",
            r.n,
            r.round_full_rescore_ms,
            r.round_incremental_ms,
            r.round_full_rescore_ms / r.round_incremental_ms,
            r.greedy_full_rescore_ms,
            r.greedy_incremental_ms,
            r.greedy_full_rescore_ms / r.greedy_incremental_ms,
            r.selected_links,
            r.kernel_scalar_ns_per_pair,
            r.kernel_compact_ns_per_pair,
            r.repair_row_skip_ratio * 100.0,
        );
        entries.push(size_entry(&r));
    }

    let full_scale = if scale == Scale::Full {
        let r = measure_full_scale();
        println!(
            "full scale: {} sites, {} towers, pool {} ({:.1}% of pairs bounded out), build {:.0} ms serial / {:.0} ms sharded ({:.1}x vs prior {:.0} ms; unpruned {:.0} ms), greedy {:.0} ms ({} rounds, {:.1} ms/round), cisp {:.0} ms, {} links, stretch {:.4}",
            r.sites,
            r.towers,
            r.pool,
            r.generation_prune_ratio * 100.0,
            r.build_pruned_ms,
            r.build_pruned_parallel_ms,
            PRIOR_BUILD_PRUNED_MS / r.build_pruned_ms,
            PRIOR_BUILD_PRUNED_MS,
            r.build_unpruned_ms,
            r.greedy_ms,
            r.greedy_rounds,
            r.greedy_round_ms,
            r.design_ms,
            r.selected_links,
            r.mean_stretch,
        );
        full_scale_entry(&r)
    } else {
        String::new()
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"design greedy: incremental delta-scoring vs full rescore\",\n",
            "  \"schema\": 3,\n",
            "  \"input\": \"synthetic_design_input (all-pairs candidates), serial scoring\",\n",
            "  \"command\": \"cargo run --release --bin bench_design_baseline -- [--tiny|--full]\",\n",
            "  \"auto_engine_pool_threshold\": {},\n",
            "{}",
            "{}",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        AUTO_FULL_RESCORE_MAX_POOL,
        tiny_profile,
        full_scale,
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline file");
    println!("wrote {out_path}");
}

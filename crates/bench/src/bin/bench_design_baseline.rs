//! Record the design-engine baseline: incremental delta-scoring vs full
//! rescoring, per greedy round and end to end, at n ∈ {30, 60, 120}.
//!
//! Writes `BENCH_design.json` (or the path given as the first argument) with
//! wall-clock medians and the speedup ratios, and asserts along the way that
//! both engines select identical designs. All measurements are serial
//! (`parallel: false`) so the recorded baseline does not depend on the
//! machine's core count.
//!
//! Run with: `cargo run --release --bin bench_design_baseline`

use std::sync::RwLock;
use std::time::Instant;

use cisp_bench::synthetic_design_input;
use cisp_core::design::{score_candidates, DesignConfig, Designer, ScoringEngine};
use cisp_core::engine::{
    scoring_denominator, scoring_weights, RoundUpdate, ScoreContext, ShardState,
};
use cisp_graph::{improve_with_link_tracked, ImprovedPairs};

/// Median wall-clock milliseconds of `f` over enough repetitions to be
/// stable (at least 3, more for sub-100ms bodies).
fn median_ms(mut f: impl FnMut()) -> f64 {
    let probe = Instant::now();
    f();
    let first_ms = probe.elapsed().as_secs_f64() * 1e3;
    let reps = if first_ms < 1.0 {
        25
    } else if first_ms < 100.0 {
        7
    } else {
        3
    };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct SizeReport {
    n: usize,
    pool: usize,
    round_full_rescore_ms: f64,
    round_incremental_ms: f64,
    greedy_full_rescore_ms: f64,
    greedy_incremental_ms: f64,
    selected_links: usize,
}

fn measure(n: usize) -> SizeReport {
    let input = synthetic_design_input(n);
    let pool = input.useful_candidates();
    let budget = (4 * n) as f64;
    let incremental_config = DesignConfig {
        parallel: false,
        engine: ScoringEngine::Incremental,
        ..DesignConfig::default()
    };
    let full_config = DesignConfig {
        engine: ScoringEngine::FullRescore,
        ..incremental_config
    };

    // --- Per-round inner loop: pause the real greedy mid-run — warm the
    // topology with its first selections, then measure the round that
    // accepts the next one.
    let trajectory = Designer::with_config(&input, incremental_config)
        .greedy(budget)
        .selected;
    assert!(trajectory.len() >= 2, "trajectory too short at n = {n}");
    let split = trajectory.len() * 2 / 3;
    let accepted = trajectory[split];
    let accepted_pos = pool.iter().position(|&idx| idx == accepted).unwrap();
    let mut topology = input.empty_topology();
    for &idx in &trajectory[..split] {
        topology.add_mw_link(input.candidates[idx].clone());
    }
    let mut after = topology.clone();
    after.add_mw_link(input.candidates[accepted].clone());
    let round_full_rescore_ms =
        median_ms(|| drop(score_candidates(&after, &input.candidates, &pool, false)));

    let matrix = RwLock::new(topology.effective_matrix().clone());
    let den = scoring_denominator(
        topology.effective_matrix(),
        topology.geodesic_matrix(),
        topology.traffic(),
    )
    .expect("synthetic input is finite");
    let weights = scoring_weights(topology.geodesic_matrix(), topology.traffic());
    let ctx = ScoreContext {
        candidates: &input.candidates,
        pool: &pool,
        geodesic: topology.geodesic_matrix(),
        traffic: topology.traffic(),
        matrix: &matrix,
        weights: &weights,
        den,
    };
    let mut state = ShardState::new(0..pool.len());
    state.init_score(&ctx);
    let link = &input.candidates[accepted];
    let mut improved = ImprovedPairs::new(n);
    {
        let mut m = matrix.write().unwrap();
        improve_with_link_tracked(
            &mut m,
            link.site_a,
            link.site_b,
            link.mw_length_km,
            &mut improved,
        );
    }
    let update = RoundUpdate::new(
        improved,
        Some(accepted_pos),
        Vec::new(),
        &matrix.read().unwrap(),
        &weights,
        den,
    );
    let round_incremental_ms = median_ms(|| {
        let mut shard = state.clone();
        shard.apply(&ctx, &update);
    });

    // --- End-to-end greedy, both engines, serial.
    let incremental = Designer::with_config(&input, incremental_config).greedy(budget);
    let full = Designer::with_config(&input, full_config).greedy(budget);
    assert_eq!(
        incremental.selected, full.selected,
        "engines diverged at n = {n}"
    );
    let greedy_incremental_ms =
        median_ms(|| drop(Designer::with_config(&input, incremental_config).greedy(budget)));
    let greedy_full_rescore_ms =
        median_ms(|| drop(Designer::with_config(&input, full_config).greedy(budget)));

    SizeReport {
        n,
        pool: pool.len(),
        round_full_rescore_ms,
        round_incremental_ms,
        greedy_full_rescore_ms,
        greedy_incremental_ms,
        selected_links: incremental.selected.len(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_design.json".to_string());
    let mut entries = Vec::new();
    for n in [30usize, 60, 120] {
        let r = measure(n);
        println!(
            "n = {:3}: round {:9.3} ms -> {:7.3} ms ({:5.1}x), greedy {:9.1} ms -> {:8.1} ms ({:4.1}x), {} links",
            r.n,
            r.round_full_rescore_ms,
            r.round_incremental_ms,
            r.round_full_rescore_ms / r.round_incremental_ms,
            r.greedy_full_rescore_ms,
            r.greedy_incremental_ms,
            r.greedy_full_rescore_ms / r.greedy_incremental_ms,
            r.selected_links,
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"pool_candidates\": {},\n",
                "      \"selected_links\": {},\n",
                "      \"round_full_rescore_ms\": {:.4},\n",
                "      \"round_incremental_ms\": {:.4},\n",
                "      \"round_speedup\": {:.2},\n",
                "      \"greedy_full_rescore_ms\": {:.2},\n",
                "      \"greedy_incremental_ms\": {:.2},\n",
                "      \"greedy_speedup\": {:.2}\n",
                "    }}"
            ),
            r.n,
            r.pool,
            r.selected_links,
            r.round_full_rescore_ms,
            r.round_incremental_ms,
            r.round_full_rescore_ms / r.round_incremental_ms,
            r.greedy_full_rescore_ms,
            r.greedy_incremental_ms,
            r.greedy_full_rescore_ms / r.greedy_incremental_ms,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"design greedy: incremental delta-scoring vs full rescore\",\n",
            "  \"input\": \"synthetic_design_input (all-pairs candidates), serial scoring\",\n",
            "  \"command\": \"cargo run --release --bin bench_design_baseline\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write baseline file");
    println!("wrote {out_path}");
}

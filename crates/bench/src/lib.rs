//! Shared infrastructure for the experiment harness.
//!
//! Every figure and table of the paper's evaluation has a corresponding
//! binary under `src/bin/` (see `DESIGN.md` §3 for the full index). The
//! binaries share three things, provided here:
//!
//! * [`Scale`] — every experiment runs at one of three scales. `Tiny` is for
//!   smoke tests, `Reduced` (the default) reproduces the *shape* of each
//!   figure in seconds-to-minutes on a laptop, and `Full` uses the paper's
//!   parameters (120 population centers, ~12 k towers) and can take tens of
//!   minutes per figure. Pass `--full` or `--tiny` on the command line.
//! * scenario builders sized for each scale, so all figures agree on what
//!   "the US network" means at a given scale.
//! * plain-text table/series printers, so each binary's output is the rows
//!   or series the corresponding figure plots.

pub mod bridge;

use cisp_core::scenario::{Scenario, ScenarioConfig};
use cisp_data::towers::TowerRegistryConfig;

/// Experiment scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (seconds).
    Tiny,
    /// Default scale: reproduces the figure's shape quickly.
    Reduced,
    /// The paper's scale.
    Full,
}

impl Scale {
    /// Parse the scale from process arguments (`--tiny`, `--full`; default
    /// reduced).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else if args.iter().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Reduced
        }
    }

    /// Number of US sites to include at this scale.
    pub fn us_sites(&self) -> Option<usize> {
        match self {
            Scale::Tiny => Some(12),
            Scale::Reduced => Some(40),
            Scale::Full => None, // all population centers
        }
    }

    /// Raw synthetic tower count at this scale.
    pub fn raw_towers(&self) -> usize {
        match self {
            Scale::Tiny => 1_500,
            Scale::Reduced => 5_000,
            Scale::Full => 18_000,
        }
    }

    /// Tower budget for the headline US design at this scale (the paper's
    /// Fig. 3 uses 3 000 towers for 120 sites).
    pub fn us_budget_towers(&self) -> f64 {
        match self {
            Scale::Tiny => 300.0,
            Scale::Reduced => 1_200.0,
            Scale::Full => 3_000.0,
        }
    }

    /// Label used in output headers.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Reduced => "reduced",
            Scale::Full => "full (paper scale)",
        }
    }
}

/// A direct microwave candidate for every site pair: latency-equivalent
/// length `mw_factor ×` geodesic, costing one tower per `tower_span_km` of
/// geodesic distance (minimum one). The synthetic design inputs used by the
/// criterion benches all share this builder so the candidate format lives in
/// one place.
pub fn all_pairs_candidates(
    sites: &[cisp_geo::GeoPoint],
    mw_factor: f64,
    tower_span_km: f64,
) -> Vec<cisp_core::links::CandidateLink> {
    let mut candidates = Vec::new();
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let geo = cisp_geo::geodesic::distance_km(sites[i], sites[j]);
            let towers = ((geo / tower_span_km).ceil() as usize).max(1);
            candidates.push(cisp_core::links::CandidateLink {
                site_a: i,
                site_b: j,
                mw_length_km: geo * mw_factor,
                tower_count: towers,
                tower_path: (0..towers).collect(),
            });
        }
    }
    candidates
}

/// A dense synthetic design input: `n` scattered US-extent sites, fiber at
/// 2× geodesic, uniform traffic, and an all-pairs candidate set at 1.05×
/// geodesic with one tower per 60 km. Shared by the scoring-kernel
/// benchmarks and the `bench_design_baseline` binary so their inputs agree.
pub fn synthetic_design_input(n: usize) -> cisp_core::design::DesignInput {
    let sites: Vec<cisp_geo::GeoPoint> = (0..n)
        .map(|i| {
            cisp_geo::GeoPoint::new(
                30.0 + ((i * 13) % 17) as f64,
                -120.0 + ((i * 7) % 43) as f64 * 1.2,
            )
        })
        .collect();
    let traffic = cisp_graph::DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
    let fiber_km = cisp_graph::DistMatrix::from_fn(n, |i, j| {
        cisp_geo::geodesic::distance_km(sites[i], sites[j]) * 2.0
    });
    let candidates = all_pairs_candidates(&sites, 1.05, 60.0);
    cisp_core::design::DesignInput {
        sites,
        traffic,
        fiber_km,
        candidates,
    }
}

/// The shared US scenario at a given scale and seed.
pub fn us_scenario(scale: Scale, seed: u64) -> Scenario {
    let mut config = ScenarioConfig::us_paper(seed);
    config.max_sites = scale.us_sites();
    config.towers = TowerRegistryConfig {
        raw_count: scale.raw_towers(),
        ..TowerRegistryConfig::default()
    };
    Scenario::build(&config)
}

/// The shared European scenario at a given scale and seed (§6.2 / Fig. 8).
pub fn europe_scenario(scale: Scale, seed: u64) -> Scenario {
    let mut config = ScenarioConfig::europe_paper(seed);
    config.max_sites = scale.us_sites();
    config.towers = TowerRegistryConfig {
        raw_count: scale.raw_towers(),
        ..TowerRegistryConfig::default()
    };
    Scenario::build(&config)
}

/// Print a table with a title, column headers and rows of already formatted
/// cells.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", headers.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Print a named series of `(x, y)` points (one per line), the form used for
/// the paper's line plots and CDFs.
pub fn print_series(name: &str, points: &[(f64, f64)]) {
    println!("\n-- series: {name} --");
    for (x, y) in points {
        println!("{x:.6}\t{y:.6}");
    }
}

/// Turn a sorted sample vector into CDF points `(value, fraction ≤ value)`.
pub fn cdf_points(sorted_values: &[f64]) -> Vec<(f64, f64)> {
    let n = sorted_values.len();
    sorted_values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Format a float with a fixed number of decimals (table helper).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(Scale::Tiny.raw_towers() < Scale::Reduced.raw_towers());
        assert!(Scale::Reduced.raw_towers() < Scale::Full.raw_towers());
        assert!(Scale::Tiny.us_budget_towers() < Scale::Full.us_budget_towers());
        assert_eq!(Scale::Full.us_sites(), None);
        assert_eq!(Scale::Tiny.label(), "tiny");
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let sorted = vec![1.0, 2.0, 2.0, 5.0];
        let cdf = cdf_points(&sorted);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}

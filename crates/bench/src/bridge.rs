//! Bridge from a designed topology to a packet-level simulation.
//!
//! §5 of the paper simulates the designed cISP at the site level: parallel
//! tower series are aggregated into a single link per site pair with the
//! provisioned capacity, fiber links are assumed plentiful, and the traffic
//! matrix is scaled to a fraction of the design capacity. This module
//! performs exactly that conversion so the Fig. 5 / Fig. 11 binaries and the
//! netsim Criterion bench share one definition.

use cisp_core::augment::{augment_for_throughput, AugmentConfig};
use cisp_core::topology::HybridTopology;
use cisp_geo::units::SPEED_OF_LIGHT_KM_PER_S;
use cisp_graph::DistMatrix;
use cisp_netsim::network::{LinkSpec, Network};
use cisp_netsim::routing::Demand;

/// Capacity assumed for fiber links in the simulation (bps) — effectively
/// unconstrained relative to the MW links, as in the paper.
const FIBER_RATE_BPS: f64 = 400e9;

/// Per-link drop-tail buffer, in bytes (≈100 packets of 500 B at each MW
/// link, the regime in which Fig. 5's losses appear under overload).
const BUFFER_BYTES: f64 = 50_000.0;

/// Build a packet-level network and demand set from a designed topology.
///
/// * The network is provisioned (capacity-augmented) for
///   `design_aggregate_gbps` using the topology's own traffic matrix.
/// * The offered demands follow `offered_traffic` (which may differ from the
///   designed-for matrix — that is the whole point of Figs. 5 and 11), scaled
///   so their sum is `load_fraction × design_aggregate_gbps`.
pub fn build_simulation_inputs(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    design_aggregate_gbps: f64,
    load_fraction: f64,
) -> (Network, Vec<Demand>) {
    assert!(load_fraction >= 0.0);
    let n = topology.num_sites();
    assert_eq!(offered_traffic.n(), n);

    // Provision MW links for the design target.
    let augmentation =
        augment_for_throughput(topology, design_aggregate_gbps, &AugmentConfig::default());

    let mut network = Network::new(n);
    // Microwave links: provisioned capacity, near-c propagation.
    for provision in &augmentation.links {
        let link = &topology.mw_links()[provision.link_index];
        let capacity_bps = (provision.series * provision.series) as f64 * 1e9;
        network.add_bidirectional_link(LinkSpec {
            from: link.site_a,
            to: link.site_b,
            rate_bps: capacity_bps,
            propagation_s: link.mw_length_km / SPEED_OF_LIGHT_KM_PER_S,
            buffer_bytes: BUFFER_BYTES,
        });
    }
    // Fiber links between every pair (plentiful bandwidth, 1.5×-slowed
    // propagation already baked into the latency-equivalent distance).
    for i in 0..n {
        for j in (i + 1)..n {
            let d = topology.fiber_km(i, j);
            if d.is_finite() {
                network.add_bidirectional_link(LinkSpec {
                    from: i,
                    to: j,
                    rate_bps: FIBER_RATE_BPS,
                    propagation_s: d / SPEED_OF_LIGHT_KM_PER_S,
                    buffer_bytes: 10.0 * BUFFER_BYTES,
                });
            }
        }
    }

    // Offered demands.
    let total = offered_traffic.upper_triangle_sum();
    assert!(total > 0.0, "offered traffic matrix is empty");
    let scale = design_aggregate_gbps * load_fraction / total;
    let mut demands = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let gbps = offered_traffic.get(i, j) * scale;
            if gbps > 0.0 {
                // Split the pair demand across both directions.
                demands.push(Demand {
                    src: i,
                    dst: j,
                    amount_bps: gbps * 1e9 / 2.0,
                });
                demands.push(Demand {
                    src: j,
                    dst: i,
                    amount_bps: gbps * 1e9 / 2.0,
                });
            }
        }
    }
    (network, demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_core::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    fn small_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -96.0),
            GeoPoint::new(37.0, -96.0),
        ];
        let traffic = vec![
            vec![0.0, 1.0, 0.5],
            vec![1.0, 0.0, 0.8],
            vec![0.5, 0.8, 0.0],
        ];
        let fiber: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        let geo = geodesic::distance_km(sites[0], sites[1]);
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: geo * 1.03,
            tower_count: 5,
            tower_path: vec![0, 1, 2, 3, 4],
        });
        topo
    }

    #[test]
    fn bridge_builds_links_and_demands() {
        let topo = small_topology();
        let (net, demands) = build_simulation_inputs(&topo, topo.traffic(), 10.0, 0.5);
        // 1 MW link + 3 fiber pairs, all bidirectional = 8 directed links.
        assert_eq!(net.num_links(), 8);
        // 3 pairs × 2 directions.
        assert_eq!(demands.len(), 6);
        let total_bps: f64 = demands.iter().map(|d| d.amount_bps).sum();
        assert!((total_bps - 5e9).abs() < 1.0, "total {total_bps}");
    }

    #[test]
    fn mw_links_are_faster_than_fiber() {
        let topo = small_topology();
        let (net, _) = build_simulation_inputs(&topo, topo.traffic(), 10.0, 0.5);
        // First two directed links are the MW pair; find a fiber link between
        // the same sites and compare propagation delay.
        let mw = net.link(0);
        let fiber = (0..net.num_links())
            .map(|l| net.link(l))
            .find(|l| l.from == 0 && l.to == 1 && l.rate_bps > 1e11)
            .expect("fiber link exists");
        assert!(mw.propagation_s < fiber.propagation_s);
    }

    #[test]
    fn higher_design_target_gives_more_capacity() {
        let topo = small_topology();
        let (small, _) = build_simulation_inputs(&topo, topo.traffic(), 4.0, 0.5);
        let (large, _) = build_simulation_inputs(&topo, topo.traffic(), 100.0, 0.5);
        assert!(large.link(0).rate_bps >= small.link(0).rate_bps);
    }
}

//! Bridge from a designed topology to a packet-level simulation.
//!
//! §5 of the paper simulates the designed cISP at the site level: parallel
//! tower series are aggregated into a single link per site pair with the
//! provisioned capacity, fiber links are assumed plentiful, and the traffic
//! matrix is scaled to a fraction of the design capacity. This module
//! performs exactly that conversion so the Fig. 5 / Fig. 11 binaries and the
//! netsim Criterion bench share one definition.

use cisp_core::evaluate::{lower, EvaluateConfig};
use cisp_core::topology::HybridTopology;
use cisp_graph::DistMatrix;
use cisp_netsim::network::Network;
use cisp_netsim::routing::Demand;

/// Build a packet-level network and demand set from a designed topology.
///
/// * The network is provisioned (capacity-augmented) for
///   `design_aggregate_gbps` using the topology's own traffic matrix.
/// * The offered demands follow `offered_traffic` (which may differ from the
///   designed-for matrix — that is the whole point of Figs. 5 and 11), scaled
///   so their sum is `load_fraction × design_aggregate_gbps`.
///
/// This is a thin wrapper over the canonical lowering in
/// `cisp_core::evaluate` (which additionally tracks the microwave-link and
/// demand-pair mappings the weather and application layers use).
pub fn build_simulation_inputs(
    topology: &HybridTopology,
    offered_traffic: &DistMatrix,
    design_aggregate_gbps: f64,
    load_fraction: f64,
) -> (Network, Vec<Demand>) {
    let lowered = lower(
        topology,
        offered_traffic,
        &EvaluateConfig {
            design_aggregate_gbps,
            load_fraction,
            ..EvaluateConfig::default()
        },
    );
    (lowered.network, lowered.demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_core::links::CandidateLink;
    use cisp_geo::{geodesic, GeoPoint};

    fn small_topology() -> HybridTopology {
        let sites = vec![
            GeoPoint::new(40.0, -100.0),
            GeoPoint::new(40.0, -96.0),
            GeoPoint::new(37.0, -96.0),
        ];
        let traffic = vec![
            vec![0.0, 1.0, 0.5],
            vec![1.0, 0.0, 0.8],
            vec![0.5, 0.8, 0.0],
        ];
        let fiber: Vec<Vec<f64>> = (0..3)
            .map(|i| {
                (0..3)
                    .map(|j| geodesic::distance_km(sites[i], sites[j]) * 1.9)
                    .collect()
            })
            .collect();
        let mut topo = HybridTopology::new(sites.clone(), traffic, fiber);
        let geo = geodesic::distance_km(sites[0], sites[1]);
        topo.add_mw_link(CandidateLink {
            site_a: 0,
            site_b: 1,
            mw_length_km: geo * 1.03,
            tower_count: 5,
            tower_path: vec![0, 1, 2, 3, 4],
        });
        topo
    }

    #[test]
    fn bridge_builds_links_and_demands() {
        let topo = small_topology();
        let (net, demands) = build_simulation_inputs(&topo, topo.traffic(), 10.0, 0.5);
        // 1 MW link + 3 fiber pairs, all bidirectional = 8 directed links.
        assert_eq!(net.num_links(), 8);
        // 3 pairs × 2 directions.
        assert_eq!(demands.len(), 6);
        let total_bps: f64 = demands.iter().map(|d| d.amount_bps).sum();
        assert!((total_bps - 5e9).abs() < 1.0, "total {total_bps}");
    }

    #[test]
    fn mw_links_are_faster_than_fiber() {
        let topo = small_topology();
        let (net, _) = build_simulation_inputs(&topo, topo.traffic(), 10.0, 0.5);
        // First two directed links are the MW pair; find a fiber link between
        // the same sites and compare propagation delay.
        let mw = net.link(0);
        let fiber = (0..net.num_links())
            .map(|l| net.link(l))
            .find(|l| l.from == 0 && l.to == 1 && l.rate_bps > 1e11)
            .expect("fiber link exists");
        assert!(mw.propagation_s < fiber.propagation_s);
    }

    #[test]
    fn higher_design_target_gives_more_capacity() {
        let topo = small_topology();
        let (small, _) = build_simulation_inputs(&topo, topo.traffic(), 4.0, 0.5);
        let (large, _) = build_simulation_inputs(&topo, topo.traffic(), 100.0, 0.5);
        assert!(large.link(0).rate_bps >= small.link(0).rate_bps);
    }
}

//! Micro-benchmarks of the computational kernels the design pipeline leans
//! on: geodesic math, Fresnel/LOS profile evaluation, terrain sampling,
//! Dijkstra over the tower graph, and the simplex solver.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::RwLock;

use cisp_bench::synthetic_design_input;
use cisp_core::design::{score_candidates, DesignConfig, DesignInput, Designer};
use cisp_core::engine::{RoundUpdate, ScoreContext, ShardState};
use cisp_core::topology::{mean_stretch_with_link, mean_stretch_with_link_compact, ScoringWeights};
use cisp_data::cities::us_top_cities;
use cisp_data::towers::{TowerRegistry, TowerRegistryConfig};
use cisp_geo::{fresnel, geodesic, GeoPoint};
use cisp_graph::{dijkstra, improve_with_link_tracked, Graph, ImprovedPairs};
use cisp_lp::model::{Problem, VarKind};
use cisp_lp::simplex::solve_lp;
use cisp_terrain::{clutter::ClutterModel, profile, TerrainModel};

fn bench_geodesic(c: &mut Criterion) {
    let a = GeoPoint::new(40.7128, -74.0060);
    let b = GeoPoint::new(34.0522, -118.2437);
    c.bench_function("geodesic_distance", |bench| {
        bench.iter(|| geodesic::distance_km(black_box(a), black_box(b)))
    });
    c.bench_function("geodesic_sample_path_64", |bench| {
        bench.iter(|| geodesic::sample_path(black_box(a), black_box(b), 64))
    });
}

fn bench_los_profile(c: &mut Criterion) {
    let terrain = TerrainModel::united_states(42);
    let clutter = ClutterModel::with_seed(42);
    let a = GeoPoint::new(39.5, -105.0);
    let b = GeoPoint::new(39.3, -104.0);
    c.bench_function("terrain_elevation", |bench| {
        bench.iter(|| terrain.elevation_m(black_box(a)))
    });
    c.bench_function("obstruction_profile_90km", |bench| {
        bench.iter(|| profile::obstruction_profile(&terrain, &clutter, a, b, 91))
    });
    let obstacles = profile::obstruction_profile(&terrain, &clutter, a, b, 91);
    c.bench_function("fresnel_clearance_evaluation", |bench| {
        bench.iter(|| {
            let samples =
                fresnel::evaluate_profile(90.0, 2000.0, 2000.0, black_box(&obstacles), 11.0, 1.3);
            fresnel::profile_is_clear(&samples)
        })
    });
}

fn bench_tower_queries(c: &mut Criterion) {
    let cities = us_top_cities(30);
    let registry = TowerRegistry::synthesize(
        7,
        (24.5, 49.5, -125.0, -66.5),
        &cities,
        &TowerRegistryConfig {
            raw_count: 4_000,
            ..TowerRegistryConfig::default()
        },
    );
    let p = GeoPoint::new(39.0, -95.0);
    c.bench_function("towers_within_100km", |bench| {
        bench.iter(|| registry.towers_within(black_box(p), 100.0))
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    // A 60×60 grid graph, similar in size to a regional tower graph.
    let n = 60usize;
    let id = |r: usize, col: usize| r * n + col;
    let mut g = Graph::new(n * n);
    for r in 0..n {
        for col in 0..n {
            if col + 1 < n {
                g.add_undirected_edge(id(r, col), id(r, col + 1), 1.0 + ((r + col) % 7) as f64);
            }
            if r + 1 < n {
                g.add_undirected_edge(id(r, col), id(r + 1, col), 1.0 + ((r * col) % 5) as f64);
            }
        }
    }
    c.bench_function("dijkstra_3600_node_grid", |bench| {
        bench.iter(|| dijkstra::shortest_path(&g, 0, n * n - 1))
    });
}

fn bench_simplex(c: &mut Criterion) {
    // A 20-variable, 30-constraint random-ish LP.
    let mut p = Problem::minimize();
    let vars: Vec<_> = (0..20)
        .map(|i| {
            p.add_var(
                &format!("x{i}"),
                VarKind::Continuous,
                ((i % 7) as f64) - 3.0,
            )
        })
        .collect();
    for k in 0..30 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + k) % 3 == 0)
            .map(|(i, &v)| (v, 1.0 + ((i * k) % 5) as f64))
            .collect();
        p.add_le(terms, 50.0 + k as f64);
    }
    for &v in &vars {
        p.add_le(vec![(v, 1.0)], 10.0);
    }
    c.bench_function("simplex_20x30", |bench| {
        bench.iter(|| solve_lp(black_box(&p)).unwrap())
    });
}

/// A dense synthetic design input (`n` sites, all-pairs candidates) for the
/// candidate-scoring kernel benchmarks.
fn scoring_input(n: usize) -> DesignInput {
    synthetic_design_input(n)
}

/// The greedy designer's inner loop: one O(n²) mean-stretch-with-link sweep
/// per candidate, serial vs fanned out across cores. The parallel/serial
/// ratio here is the speedup the design pipeline's scoring phases see.
fn bench_candidate_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scoring");
    group.sample_size(10);
    for &n in &[30usize, 60, 90] {
        let input = scoring_input(n);
        let topology = input.empty_topology();
        let pool = input.useful_candidates();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| score_candidates(&topology, &input.candidates, black_box(&pool), false))
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            b.iter(|| score_candidates(&topology, &input.candidates, black_box(&pool), true))
        });
    }
    group.finish();
}

/// The one-candidate scoring kernel itself: the scalar reference
/// (`mean_stretch_with_link`, branchy per-pair skip tests) against the
/// compact blocked form (`mean_stretch_with_link_compact`, precomputed
/// weight matrix, branchless min/select chains, fixed-lane accumulators).
/// The ratio here is the per-sweep speedup every scoring path — greedy
/// rounds, swap trials, full rescans — inherits.
fn bench_scoring_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_kernel");
    for &n in &[60usize, 120] {
        let input = scoring_input(n);
        let topology = input.empty_topology();
        let sw = ScoringWeights::compute(
            topology.effective_matrix(),
            topology.geodesic_matrix(),
            topology.traffic(),
        )
        .expect("synthetic input is finite");
        // A mid-pool candidate, so the row spans are representative.
        let pool = input.useful_candidates();
        let l = &input.candidates[pool[pool.len() / 2]];
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                mean_stretch_with_link(
                    topology.effective_matrix(),
                    topology.geodesic_matrix(),
                    topology.traffic(),
                    black_box(l.site_a),
                    black_box(l.site_b),
                    black_box(l.mw_length_km),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("compact", n), &n, |b, _| {
            b.iter(|| {
                mean_stretch_with_link_compact(
                    topology.effective_matrix(),
                    &sw,
                    black_box(l.site_a),
                    black_box(l.site_b),
                    black_box(l.mw_length_km),
                )
            })
        });
    }
    group.finish();
}

/// The greedy inner loop, per accepted link: the rebuild-and-rescore engine
/// re-sweeps every surviving candidate with the O(n²) kernel
/// (`full_rescore`), while the incremental delta-scoring engine repairs the
/// cached predictions from the accepted link's improved-pair set
/// (`incremental`). The ratio is the per-round speedup the design pipeline's
/// greedy phases see on the default engine.
fn bench_incremental_vs_full_rescore(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_vs_full_rescore");
    group.sample_size(10);
    // In `--test` smoke mode only the smallest size runs (the staging below
    // replays a real greedy prefix, which is slow in debug builds).
    let quick =
        std::env::args().any(|a| a == "--test") || std::env::var_os("CISP_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick { &[30] } else { &[30, 60, 120] };
    for &n in sizes {
        let input = scoring_input(n);
        let pool = input.useful_candidates();

        // Pause the real greedy mid-run: warm the topology with its first
        // selections, then measure the round that accepts the next one —
        // the steady-state round the engines differ on.
        let config = DesignConfig {
            parallel: false,
            ..DesignConfig::default()
        };
        let trajectory = Designer::with_config(&input, config)
            .greedy((4 * n) as f64)
            .selected;
        assert!(trajectory.len() >= 2, "trajectory too short at n = {n}");
        let split = trajectory.len() * 2 / 3;
        let accepted = trajectory[split];
        let accepted_pos = pool.iter().position(|&idx| idx == accepted).unwrap();
        let mut topology = input.empty_topology();
        for &idx in &trajectory[..split] {
            topology.add_mw_link(input.candidates[idx].clone());
        }

        // Full rescore: every pool candidate re-scored against the
        // post-accept matrix.
        let mut after = topology.clone();
        after.add_mw_link(input.candidates[accepted].clone());
        group.bench_with_input(BenchmarkId::new("full_rescore", n), &n, |b, _| {
            b.iter(|| score_candidates(&after, &input.candidates, black_box(&pool), false))
        });

        // Incremental: one shard repairs its cached predictions from the
        // accepted link's delta.
        let matrix = RwLock::new(topology.effective_matrix().clone());
        let mut sw = ScoringWeights::compute(
            topology.effective_matrix(),
            topology.geodesic_matrix(),
            topology.traffic(),
        )
        .expect("synthetic input is finite");
        assert!(
            sw.enable_gain_bounds(topology.effective_matrix()),
            "synthetic input is metric"
        );
        let ctx = ScoreContext {
            candidates: &input.candidates,
            pool: &pool,
            geodesic: topology.geodesic_matrix(),
            traffic: topology.traffic(),
            matrix: &matrix,
            sw: Some(&sw),
        };
        let mut state = ShardState::new(0..pool.len());
        state.init_score(&ctx);
        let link = &input.candidates[accepted];
        let mut improved = ImprovedPairs::new(n);
        {
            let mut m = matrix.write().unwrap();
            improve_with_link_tracked(
                &mut m,
                link.site_a,
                link.site_b,
                link.mw_length_km,
                &mut improved,
            );
        }
        let update = RoundUpdate::new(
            improved,
            Some(accepted_pos),
            Vec::new(),
            &matrix.read().unwrap(),
            &sw,
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut shard = state.clone();
                shard.apply(&ctx, &update);
                black_box(shard.values()[0])
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geodesic,
    bench_los_profile,
    bench_tower_queries,
    bench_dijkstra,
    bench_simplex,
    bench_candidate_scoring,
    bench_scoring_kernel,
    bench_incremental_vs_full_rescore
);
criterion_main!(benches);

//! Event-queue microbenchmarks: raw push/pop cost of the two
//! [`cisp_netsim::queue::EventQueue`] backends, isolated from the
//! simulation engine.
//!
//! Two access patterns per backend:
//!
//! * `hold` — the classic hold model and the engine's steady state: pop the
//!   minimum, push a replacement a random increment later, at constant
//!   occupancy. This is where the calendar queue's O(1)-amortised scheduling
//!   shows up against the heap's O(log n).
//! * `push_drain` — build up `n` events then drain to empty, exercising the
//!   calendar's occupancy-driven resizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cisp_netsim::queue::{Event, EventQueue, QueueKind};

const OCCUPANCY: usize = 4096;
const HOLD_OPS: usize = 1024;

/// Deterministic xorshift64* — the benches must not depend on a PRNG crate.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn ev(time: f64, flow: u32) -> Event {
    Event {
        time,
        flow,
        hop: 0,
        sent_at: time,
        queue_delay: 0.0,
    }
}

fn prefill(kind: QueueKind, n: usize, rng: &mut Rng) -> EventQueue {
    let mut q = EventQueue::new(kind);
    for i in 0..n {
        q.push(ev(rng.next_f64(), i as u32));
    }
    q
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);

    for (label, kind) in [("heap", QueueKind::Heap), ("calendar", QueueKind::Calendar)] {
        group.bench_function(format!("hold_{label}_{OCCUPANCY}"), |b| {
            let mut rng = Rng(0x9E3779B97F4A7C15);
            let mut q = prefill(kind, OCCUPANCY, &mut rng);
            b.iter(|| {
                for _ in 0..HOLD_OPS {
                    let popped = q.pop().expect("constant occupancy");
                    // Mean increment ~1/OCCUPANCY keeps event density (and
                    // the calendar's adapted bucket width) stationary.
                    let dt = rng.next_f64() * (2.0 / OCCUPANCY as f64);
                    q.push(ev(popped.time + dt, popped.flow));
                    black_box(popped.time);
                }
            })
        });

        group.bench_function(format!("push_drain_{label}_{OCCUPANCY}"), |b| {
            b.iter(|| {
                let mut rng = Rng(0xD1B54A32D192ED03);
                let mut q = prefill(kind, OCCUPANCY, &mut rng);
                while let Some(e) = q.pop() {
                    black_box(e.time);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);

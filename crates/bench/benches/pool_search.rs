//! Heap-strategy comparison for the pool build's single-source searches:
//! the lazy-deletion `BinaryHeap` Dijkstras (adjacency-list and CSR) vs the
//! reusable indexed 4-ary heap of [`cisp_graph::SearchCore`].
//!
//! All three produce bit-identical distances and paths (pinned in
//! `cisp_graph::search` tests and `tests/design_pool_pruning.rs`); this
//! bench measures only the constant-factor gap on a tower-graph-shaped
//! input: sparse, geometric, with a site-like source fanning into it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cisp_graph::{dijkstra, CsrGraph, Graph, SearchCore};

/// xorshift64* — deterministic inputs without a PRNG dependency.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A tower-graph-shaped instance: `n` nodes on a unit square, each linked
/// to a handful of near neighbours (grid adjacency), weights = Euclidean
/// distance. Mirrors the hop graph's sparsity without the geodesic cost.
fn geometric_graph(n: usize, seed: u64) -> Graph {
    let mut rng = Rng(seed | 1);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.unit(), rng.unit())).collect();
    let side = (n as f64).sqrt().ceil() as usize;
    let cell = 1.0 / side as f64;
    let mut grid: Vec<Vec<usize>> = vec![Vec::new(); side * side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let cx = ((x / cell) as usize).min(side - 1);
        let cy = ((y / cell) as usize).min(side - 1);
        grid[cy * side + cx].push(i);
    }
    let mut g = Graph::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let cx = ((x / cell) as usize).min(side - 1) as isize;
        let cy = ((y / cell) as usize).min(side - 1) as isize;
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= side as isize || ny >= side as isize {
                    continue;
                }
                for &j in &grid[ny as usize * side + nx as usize] {
                    if j <= i {
                        continue;
                    }
                    let (jx, jy) = pts[j];
                    let d = ((x - jx).powi(2) + (y - jy).powi(2)).sqrt();
                    if d < 1.5 * cell {
                        g.add_undirected_edge(i, j, d);
                    }
                }
            }
        }
    }
    g
}

fn bench_pool_search(c: &mut Criterion) {
    let n = 8_000;
    let graph = geometric_graph(n, 42);
    let csr = CsrGraph::from_graph(&graph);
    let sources: Vec<usize> = (0..16).map(|k| k * (n / 16)).collect();

    let mut group = c.benchmark_group("pool_search");
    group.sample_size(10);

    group.bench_function(format!("adjacency_lazy_binary_heap/n={n}"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &src in &sources {
                let tree = dijkstra::shortest_path_tree(&graph, src, None);
                acc += tree.dist[n - 1 - src];
            }
            black_box(acc);
        })
    });

    group.bench_function(format!("csr_lazy_binary_heap/n={n}"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &src in &sources {
                let tree = csr.shortest_path_tree(src, None);
                acc += tree.dist[n - 1 - src];
            }
            black_box(acc);
        })
    });

    group.bench_function(format!("csr_indexed_dary_heap/n={n}"), |b| {
        let mut core = SearchCore::new();
        b.iter(|| {
            let mut acc = 0.0;
            for &src in &sources {
                core.search(&csr, src, &[], f64::INFINITY);
                acc += core.dist(n - 1 - src);
            }
            black_box(acc);
        })
    });

    // The pool build's actual shape: capped multi-target runs.
    let targets: Vec<usize> = (0..32).map(|k| (k * 251) % n).collect();
    group.bench_function(format!("csr_indexed_dary_heap_capped/n={n}"), |b| {
        let mut core = SearchCore::new();
        b.iter(|| {
            let mut acc = 0.0;
            for &src in &sources {
                core.search(&csr, src, &targets, 0.5);
                acc += core.dist(targets[0]);
            }
            black_box(acc);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pool_search);
criterion_main!(benches);

//! Criterion companion to the Fig. 2 scaling experiment: the cISP heuristic
//! vs the exact subset search on small synthetic instances, and the heuristic
//! alone at larger sizes. Uses synthetic collinear-city inputs so the bench
//! measures the designers, not the terrain pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cisp_bench::all_pairs_candidates;
use cisp_core::design::{DesignInput, Designer};
use cisp_core::ilp::exact_subset_search;
use cisp_geo::{geodesic, GeoPoint};
use cisp_graph::DistMatrix;

/// A synthetic design input with `n` sites scattered over the central US.
fn synthetic_input(n: usize) -> DesignInput {
    let sites: Vec<GeoPoint> = (0..n)
        .map(|i| {
            GeoPoint::new(
                32.0 + ((i * 7) % 13) as f64,
                -115.0 + ((i * 11) % 37) as f64 * 1.2,
            )
        })
        .collect();
    let traffic = DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 });
    let fiber_km = DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]) * 1.9);
    let candidates = all_pairs_candidates(&sites, 1.05, 70.0);
    DesignInput {
        sites,
        traffic,
        fiber_km,
        candidates,
    }
}

fn bench_designers(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_scaling");
    group.sample_size(10);

    for &n in &[5usize, 8, 12, 20, 30] {
        let input = synthetic_input(n);
        let budget = 8.0 * n as f64;
        group.bench_with_input(BenchmarkId::new("cisp_heuristic", n), &n, |b, _| {
            b.iter(|| Designer::new(&input).cisp(budget))
        });
    }
    for &n in &[5usize, 7, 9] {
        let input = synthetic_input(n);
        let budget = 8.0 * n as f64;
        group.bench_with_input(BenchmarkId::new("exact_subset_search", n), &n, |b, _| {
            b.iter(|| exact_subset_search(&input, budget, 10_000_000).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_designers);
criterion_main!(benches);

//! Packet-simulator throughput benchmarks: events processed per second for a
//! single bottleneck and for a small multi-node topology, plus the TCP
//! speed-mismatch experiment at a short duration.

use criterion::{criterion_group, criterion_main, Criterion};

use cisp_netsim::flows::ArrivalProcess;
use cisp_netsim::network::{LinkSpec, Network};
use cisp_netsim::routing::Demand;
use cisp_netsim::sim::{SimConfig, Simulation};
use cisp_netsim::tcp::{run_speed_mismatch, SpeedMismatchConfig};

fn bottleneck_network() -> (Network, Vec<Demand>) {
    let mut net = Network::new(2);
    net.add_link(LinkSpec {
        from: 0,
        to: 1,
        rate_bps: 100e6,
        propagation_s: 0.010,
        buffer_bytes: 1e6,
    });
    let demands = vec![Demand::new(0, 1, 70e6)];
    (net, demands)
}

fn star_network(nodes: usize) -> (Network, Vec<Demand>) {
    let mut net = Network::new(nodes + 1);
    for i in 0..nodes {
        net.add_bidirectional_link(LinkSpec {
            from: i,
            to: nodes,
            rate_bps: 1e9,
            propagation_s: 0.003,
            buffer_bytes: 1e6,
        });
    }
    let mut demands = Vec::new();
    for i in 0..nodes {
        demands.push(Demand::new(i, (i + 1) % nodes, 50e6));
    }
    (net, demands)
}

fn bench_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);

    group.bench_function("bottleneck_0p2s_cbr", |b| {
        b.iter(|| {
            let (net, demands) = bottleneck_network();
            let mut sim = Simulation::new(
                net,
                demands,
                SimConfig {
                    duration_s: 0.2,
                    ..SimConfig::default()
                },
            );
            sim.run()
        })
    });

    group.bench_function("star10_0p1s_poisson", |b| {
        b.iter(|| {
            let (net, demands) = star_network(10);
            let mut sim = Simulation::new(
                net,
                demands,
                SimConfig {
                    duration_s: 0.1,
                    arrivals: ArrivalProcess::Poisson,
                    ..SimConfig::default()
                },
            );
            sim.run()
        })
    });

    group.bench_function("speed_mismatch_1s", |b| {
        b.iter(|| {
            run_speed_mismatch(&SpeedMismatchConfig {
                duration_s: 1.0,
                ..SpeedMismatchConfig::mismatch_10gbps(false, 3)
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_netsim);
criterion_main!(benches);

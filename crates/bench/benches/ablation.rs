//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the fiber-oracle candidate elimination (with vs without),
//! * the greedy scoring rule (absolute gain vs gain per tower),
//! * the 2×-budget pruning + swap polish of the full cISP heuristic vs the
//!   plain greedy.
//!
//! Each variant is timed on the same synthetic input; the companion
//! correctness comparisons live in the `cisp-core` test-suite.

use criterion::{criterion_group, criterion_main, Criterion};

use cisp_bench::all_pairs_candidates;
use cisp_core::design::{DesignConfig, DesignInput, Designer, GreedyScore};
use cisp_geo::{geodesic, GeoPoint};
use cisp_graph::DistMatrix;

fn synthetic_input(n: usize) -> DesignInput {
    let sites: Vec<GeoPoint> = (0..n)
        .map(|i| {
            GeoPoint::new(
                30.0 + ((i * 5) % 17) as f64,
                -120.0 + ((i * 13) % 41) as f64 * 1.3,
            )
        })
        .collect();
    let traffic = DistMatrix::from_fn(n, |i, j| {
        if i == j {
            0.0
        } else {
            1.0 + ((i + j) % 5) as f64
        }
    });
    let fiber_km = DistMatrix::from_fn(n, |i, j| geodesic::distance_km(sites[i], sites[j]) * 1.9);
    let candidates = all_pairs_candidates(&sites, 1.05, 70.0);
    DesignInput {
        sites,
        traffic,
        fiber_km,
        candidates,
    }
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let input = synthetic_input(25);
    let budget = 180.0;

    group.bench_function("greedy_absolute_gain", |b| {
        b.iter(|| {
            Designer::with_config(
                &input,
                DesignConfig {
                    score: GreedyScore::AbsoluteGain,
                    ..DesignConfig::default()
                },
            )
            .greedy(budget)
        })
    });
    group.bench_function("greedy_gain_per_tower", |b| {
        b.iter(|| {
            Designer::with_config(
                &input,
                DesignConfig {
                    score: GreedyScore::GainPerTower,
                    ..DesignConfig::default()
                },
            )
            .greedy(budget)
        })
    });
    group.bench_function("cisp_full_heuristic", |b| {
        b.iter(|| Designer::new(&input).cisp(budget))
    });
    group.bench_function("cisp_no_swap_polish", |b| {
        b.iter(|| {
            Designer::with_config(
                &input,
                DesignConfig {
                    max_swap_passes: 0,
                    ..DesignConfig::default()
                },
            )
            .cisp(budget)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

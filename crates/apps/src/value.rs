//! The §8 cost-benefit estimates.
//!
//! The paper derives lower-bound estimates of the value per gigabyte that a
//! latency reduction creates in three settings, and compares them against the
//! network's ≈$0.81/GB cost:
//!
//! * **Web search** — Google's published sensitivity of search volume to
//!   latency (0.7 % fewer searches per +400 ms), US search revenue, search
//!   volume and bytes per search ⇒ \$1.84–\$3.74 per GB.
//! * **E-commerce** — Amazon-scale traffic, profit, and published
//!   conversion-rate sensitivities (1–7 % per 100 ms) ⇒ \$3.26–\$22.82 per GB.
//! * **Gaming** — what gamers already pay for "accelerated VPN" services
//!   (\$4–10/month at ~1 GB/month of gaming traffic) ⇒ > \$3.7 per GB.
//!
//! The functions here reproduce those arithmetic chains from their published
//! inputs so the assumptions are explicit and adjustable.

use serde::{Deserialize, Serialize};

/// A value-per-GB estimate with its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueEstimate {
    /// Application setting.
    pub setting: String,
    /// Lower bound on value per GB, USD.
    pub low_usd_per_gb: f64,
    /// Upper bound on value per GB, USD.
    pub high_usd_per_gb: f64,
    /// One-line description of the derivation.
    pub note: String,
}

/// Web-search value per GB for a given latency saving.
///
/// Inputs (paper's sources): US search ad revenue ≈ \$28.6 B/yr for the
/// provider, ~0.7 % search-volume loss per +400 ms, ~20 B US searches/month,
/// ~250 KB transferred per search, profit margin on the marginal searches
/// ≈ revenue (ad-serving marginal cost is small relative to revenue).
pub fn web_search_value(latency_saving_ms: f64) -> ValueEstimate {
    assert!(latency_saving_ms > 0.0);
    let us_search_revenue_per_year = 28.6e9_f64;
    let volume_sensitivity_per_400ms = 0.007;
    let searches_per_year = 20e9_f64 * 12.0;
    let bytes_per_search = 250e3_f64;

    // Extra revenue from the recovered searches.
    let revenue_gain =
        us_search_revenue_per_year * volume_sensitivity_per_400ms * (latency_saving_ms / 400.0);
    // Traffic that must ride the low-latency network to realise it.
    let gb_per_year = searches_per_year * bytes_per_search / 1e9;
    let per_gb = revenue_gain / gb_per_year;
    ValueEstimate {
        setting: "Web search".to_string(),
        low_usd_per_gb: per_gb * 0.5, // the paper's conservative end (200 ms)
        high_usd_per_gb: per_gb,
        note: format!(
            "{latency_saving_ms:.0} ms faster searches on ~{:.0} PB/yr of search traffic",
            gb_per_year / 1e6
        ),
    }
}

/// E-commerce value per GB for a 200 ms page-speed improvement achieved by
/// carrying only the latency-critical ~10 % of bytes over cISP.
pub fn ecommerce_value() -> ValueEstimate {
    let traffic_pb_per_year = 483e6_f64 / 1e6; // 483 PB/yr, from the paper
    let profit_per_year = 7.9e9_f64;
    // Conversion-rate sensitivity per 100 ms: 1 %–7 % of profit.
    let low_gain = profit_per_year * 0.01 * 2.0; // 200 ms at 1 %/100 ms
    let high_gain = profit_per_year * 0.07 * 2.0 * 0.5; // 7 %/100ms, desktop+mobile blend
                                                        // Only ~10 % of the bytes need the fast path.
    let gb_over_cisp = traffic_pb_per_year * 1e6 * 0.10;
    ValueEstimate {
        setting: "E-commerce".to_string(),
        low_usd_per_gb: low_gain / gb_over_cisp,
        high_usd_per_gb: high_gain / gb_over_cisp,
        note: "200 ms speed-up carrying ~10 % of bytes over cISP".to_string(),
    }
}

/// Gaming value per GB derived from accelerated-VPN pricing.
pub fn gaming_value() -> ValueEstimate {
    let vpn_price_per_month = 4.0_f64; // cheapest accelerated VPN
    let gaming_hours_per_day = 8.0_f64;
    let rate_kbps = 10.0_f64;
    let gb_per_month = rate_kbps * 1e3 / 8.0 * gaming_hours_per_day * 3600.0 * 30.0 / 1e9;
    ValueEstimate {
        setting: "Gaming".to_string(),
        low_usd_per_gb: vpn_price_per_month / gb_per_month,
        high_usd_per_gb: 10.0 / gb_per_month,
        note: format!("accelerated-VPN pricing over {gb_per_month:.2} GB/month of game traffic"),
    }
}

/// The §8 comparison table: the three value estimates plus the network's
/// cost per GB.
pub fn cost_benefit_table(network_cost_per_gb: f64) -> Vec<(ValueEstimate, f64)> {
    assert!(network_cost_per_gb > 0.0);
    vec![
        (web_search_value(400.0), network_cost_per_gb),
        (ecommerce_value(), network_cost_per_gb),
        (gaming_value(), network_cost_per_gb),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_search_value_matches_paper_band() {
        // Paper: $1.84/GB for 200 ms, $3.74/GB for 400 ms.
        let v = web_search_value(400.0);
        assert!(
            v.high_usd_per_gb > 1.5 && v.high_usd_per_gb < 8.0,
            "high = {}",
            v.high_usd_per_gb
        );
        assert!(v.low_usd_per_gb < v.high_usd_per_gb);
        assert!(v.low_usd_per_gb > 0.8);
    }

    #[test]
    fn ecommerce_value_matches_paper_band() {
        // Paper: $3.26–$22.82 per GB.
        let v = ecommerce_value();
        assert!(
            v.low_usd_per_gb > 1.0 && v.low_usd_per_gb < 8.0,
            "low {}",
            v.low_usd_per_gb
        );
        assert!(
            v.high_usd_per_gb > 8.0 && v.high_usd_per_gb < 40.0,
            "high {}",
            v.high_usd_per_gb
        );
    }

    #[test]
    fn gaming_value_matches_paper_band() {
        // Paper: at least $3.7 per GB.
        let v = gaming_value();
        assert!(
            v.low_usd_per_gb > 2.5 && v.low_usd_per_gb < 6.0,
            "low {}",
            v.low_usd_per_gb
        );
        assert!(v.high_usd_per_gb > v.low_usd_per_gb);
    }

    #[test]
    fn every_setting_beats_the_network_cost() {
        // The paper's headline: value per GB exceeds the $0.81/GB cost in
        // every estimated setting.
        for (estimate, cost) in cost_benefit_table(0.81) {
            assert!(
                estimate.low_usd_per_gb > cost,
                "{} low estimate {} does not exceed cost {}",
                estimate.setting,
                estimate.low_usd_per_gb,
                cost
            );
        }
    }

    #[test]
    fn table_has_three_settings() {
        let table = cost_benefit_table(0.81);
        assert_eq!(table.len(), 3);
        let names: Vec<&str> = table.iter().map(|(e, _)| e.setting.as_str()).collect();
        assert!(names.contains(&"Web search"));
        assert!(names.contains(&"E-commerce"));
        assert!(names.contains(&"Gaming"));
    }

    #[test]
    #[should_panic]
    fn zero_cost_rejected() {
        cost_benefit_table(0.0);
    }
}

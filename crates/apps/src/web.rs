//! Web page-load-time replay (§7.2, Fig. 13).
//!
//! The paper replays 80 real pages through Mahimahi with (a) unmodified
//! latencies, (b) all latencies scaled to 0.33× ("cISP"), and (c) only the
//! client→server direction scaled ("cISP-selective"), and reports the CDFs
//! of page load times and of individual object load times. Real page
//! captures cannot ship with this repository, so the replay here runs over a
//! synthetic corpus whose object counts, sizes and dependency depths follow
//! published web-page statistics; the replay mechanics (dependency chains of
//! request/response exchanges, per-direction RTT scaling, no bandwidth cap)
//! mirror the paper's setup.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One object on a page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageObject {
    /// Transfer size in bytes.
    pub bytes: f64,
    /// Dependency depth: 0 = fetched immediately (the root HTML), depth d > 0
    /// = discovered only after some depth-(d−1) object finished.
    pub depth: usize,
    /// Server processing time before the first response byte, seconds.
    pub server_time_s: f64,
}

/// A synthetic web page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Page {
    /// The page's objects (the first is the root document).
    pub objects: Vec<PageObject>,
    /// Client-side compute time attributable to parsing/rendering, seconds.
    pub compute_s: f64,
    /// Baseline round-trip time to the page's servers, seconds.
    pub base_rtt_s: f64,
}

/// A corpus of synthetic pages (the stand-in for the Alexa sample).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PageCorpus {
    /// The pages.
    pub pages: Vec<Page>,
}

impl PageCorpus {
    /// Generate a corpus of `n` pages with realistic shape: tens of objects,
    /// mostly small, dependency depths of 2–6, RTTs of 30–120 ms, and a few
    /// hundred milliseconds of client compute.
    pub fn generate(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3EB_FAC_ADE);
        let pages = (0..n)
            .map(|_| {
                let object_count = 10 + (rng.gen::<f64>() * 90.0) as usize;
                let max_depth = 2 + (rng.gen::<f64>() * 4.0) as usize;
                let base_rtt_s = 0.030 + rng.gen::<f64>() * 0.090;
                let compute_s = 0.15 + rng.gen::<f64>() * 0.5;
                let mut objects = vec![PageObject {
                    bytes: 20_000.0 + rng.gen::<f64>() * 60_000.0,
                    depth: 0,
                    server_time_s: 0.02 + rng.gen::<f64>() * 0.05,
                }];
                for _ in 1..object_count {
                    // Log-uniform sizes from 1 KB to 1 MB, skewed small.
                    let bytes = 1_000.0 * (1000.0f64).powf(rng.gen::<f64>().powi(2));
                    objects.push(PageObject {
                        bytes,
                        depth: 1 + (rng.gen::<f64>() * max_depth as f64) as usize,
                        server_time_s: 0.005 + rng.gen::<f64>() * 0.03,
                    });
                }
                Page {
                    objects,
                    compute_s,
                    base_rtt_s,
                }
            })
            .collect();
        Self { pages }
    }

    /// Generate a corpus whose page RTTs come from a *measured* distribution
    /// — e.g. the simulated per-pair RTTs of `cisp_core::evaluate` — instead
    /// of the synthetic 30–120 ms draw. RTTs are in seconds and assigned
    /// round-robin across pages, so every measured pair shapes some pages.
    /// Page structure (objects, depths, compute) still follows the seeded
    /// synthetic shape.
    pub fn generate_with_rtts(n: usize, seed: u64, rtts_s: &[f64]) -> Self {
        assert!(!rtts_s.is_empty(), "need at least one RTT");
        for &rtt in rtts_s {
            assert!(rtt.is_finite() && rtt >= 0.0, "RTTs must be finite and ≥ 0");
        }
        let mut corpus = Self::generate(n, seed);
        for (k, page) in corpus.pages.iter_mut().enumerate() {
            page.base_rtt_s = rtts_s[k % rtts_s.len()];
        }
        corpus
    }
}

/// Which latency treatment a replay applies (Fig. 13's three lines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplayScenario {
    /// Unmodified latencies.
    Baseline,
    /// Both directions ride cISP: RTT × `factor` (paper: 0.33).
    Cisp {
        /// RTT scaling factor.
        factor: f64,
    },
    /// Only client→server traffic rides cISP. The request leg (and the ACK
    /// clocking it drives) is scaled; the response leg is not.
    CispSelective {
        /// Scaling factor applied to the client→server leg.
        factor: f64,
    },
}

impl ReplayScenario {
    /// Effective RTT multiplier for a request/response exchange.
    ///
    /// A full exchange spends roughly half its round trip on the
    /// client→server leg (request, plus the ACKs that clock the response) —
    /// the paper's observation that only ~8.5 % of *bytes* but a large share
    /// of *latency-critical packets* travel client→server. Scaling just that
    /// leg therefore retains most of the benefit.
    pub fn rtt_multiplier(&self) -> f64 {
        match *self {
            ReplayScenario::Baseline => 1.0,
            ReplayScenario::Cisp { factor } => factor,
            ReplayScenario::CispSelective { factor } => 0.5 * factor + 0.5,
        }
    }
}

/// Result of replaying the corpus under one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebReplayReport {
    /// Page load times, seconds (one per page, corpus order).
    pub page_load_times_s: Vec<f64>,
    /// Object load times, seconds (all objects of all pages).
    pub object_load_times_s: Vec<f64>,
    /// Fraction of total transferred bytes that travelled client→server.
    pub client_to_server_byte_fraction: f64,
}

impl WebReplayReport {
    /// Median page load time in milliseconds.
    pub fn median_plt_ms(&self) -> f64 {
        median(&self.page_load_times_s) * 1e3
    }

    /// Median object load time in milliseconds.
    pub fn median_object_ms(&self) -> f64 {
        median(&self.object_load_times_s) * 1e3
    }
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[(v.len() - 1) / 2]
}

/// Replay the corpus under a scenario.
///
/// Each object costs one request/response exchange: one (scaled) RTT plus
/// server time plus a small per-byte transfer term (the paper imposes no
/// bandwidth cap, so transfer time is limited to packet pacing at the
/// server's line rate). Objects at depth `d` cannot start before the slowest
/// depth-`d−1` object finished, which is how RTT reductions compound down
/// the dependency chain. Page load time adds the client compute.
pub fn replay(corpus: &PageCorpus, scenario: ReplayScenario) -> WebReplayReport {
    let multiplier = scenario.rtt_multiplier();
    let mut page_load_times = Vec::with_capacity(corpus.pages.len());
    let mut object_load_times = Vec::new();
    let mut request_bytes = 0.0f64;
    let mut response_bytes = 0.0f64;

    for page in &corpus.pages {
        let rtt = page.base_rtt_s * multiplier;
        let max_depth = page.objects.iter().map(|o| o.depth).max().unwrap_or(0);
        // Completion time of each dependency level.
        let mut level_done = vec![0.0f64; max_depth + 2];
        for depth in 0..=max_depth {
            let start = if depth == 0 {
                0.0
            } else {
                level_done[depth - 1]
            };
            let mut level_finish = start;
            for obj in page.objects.iter().filter(|o| o.depth == depth) {
                // Request (~600 B) travels client→server, response is the
                // object itself; transfer adds ~1 extra RTT per 100 KB to
                // account for congestion-window growth.
                let transfer = (obj.bytes / 100_000.0) * rtt;
                let load = rtt + obj.server_time_s + transfer;
                object_load_times.push(load);
                level_finish = level_finish.max(start + load);
                request_bytes += 600.0;
                response_bytes += obj.bytes;
            }
            level_done[depth] = level_finish;
        }
        let network_done = level_done[max_depth];
        page_load_times.push(network_done + page.compute_s);
    }

    WebReplayReport {
        page_load_times_s: page_load_times,
        object_load_times_s: object_load_times,
        client_to_server_byte_fraction: request_bytes / (request_bytes + response_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> PageCorpus {
        PageCorpus::generate(80, 42)
    }

    #[test]
    fn corpus_shape_is_realistic() {
        let c = corpus();
        assert_eq!(c.pages.len(), 80);
        for p in &c.pages {
            assert!(p.objects.len() >= 10 && p.objects.len() <= 100);
            assert_eq!(p.objects[0].depth, 0, "first object is the root");
            assert!(p.base_rtt_s >= 0.030 && p.base_rtt_s <= 0.120);
            for o in &p.objects {
                assert!(o.bytes >= 1_000.0 && o.bytes <= 1_100_000.0);
            }
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = PageCorpus::generate(10, 7);
        let b = PageCorpus::generate(10, 7);
        assert_eq!(a.pages[3].objects.len(), b.pages[3].objects.len());
        assert_eq!(a.pages[3].base_rtt_s, b.pages[3].base_rtt_s);
    }

    #[test]
    fn cisp_reduces_plt_but_less_than_the_rtt_reduction() {
        let c = corpus();
        let baseline = replay(&c, ReplayScenario::Baseline);
        let cisp = replay(&c, ReplayScenario::Cisp { factor: 0.33 });
        let reduction = 1.0 - cisp.median_plt_ms() / baseline.median_plt_ms();
        // Paper: 31 % median PLT reduction for a 66 % RTT reduction. The
        // synthetic corpus should land in the same band: a clear improvement,
        // but much less than 66 % because of compute time.
        assert!(
            reduction > 0.15 && reduction < 0.55,
            "PLT reduction {reduction}"
        );
    }

    #[test]
    fn object_load_times_improve_more_than_plt() {
        let c = corpus();
        let baseline = replay(&c, ReplayScenario::Baseline);
        let cisp = replay(&c, ReplayScenario::Cisp { factor: 0.33 });
        let obj_reduction = 1.0 - cisp.median_object_ms() / baseline.median_object_ms();
        let plt_reduction = 1.0 - cisp.median_plt_ms() / baseline.median_plt_ms();
        // Paper: 49 % object-load reduction vs 31 % PLT reduction.
        assert!(obj_reduction > plt_reduction);
        assert!(obj_reduction > 0.4, "object reduction {obj_reduction}");
    }

    #[test]
    fn selective_keeps_most_of_the_benefit_with_few_bytes() {
        let c = corpus();
        let baseline = replay(&c, ReplayScenario::Baseline);
        let cisp = replay(&c, ReplayScenario::Cisp { factor: 0.33 });
        let selective = replay(&c, ReplayScenario::CispSelective { factor: 0.33 });
        assert!(selective.median_plt_ms() < baseline.median_plt_ms());
        assert!(selective.median_plt_ms() >= cisp.median_plt_ms());
        // Only a small fraction of bytes goes client→server (paper: 8.5 %).
        assert!(
            baseline.client_to_server_byte_fraction < 0.15,
            "c2s byte fraction {}",
            baseline.client_to_server_byte_fraction
        );
    }

    #[test]
    fn rtt_multipliers_are_ordered() {
        let b = ReplayScenario::Baseline.rtt_multiplier();
        let s = ReplayScenario::CispSelective { factor: 0.33 }.rtt_multiplier();
        let c = ReplayScenario::Cisp { factor: 0.33 }.rtt_multiplier();
        assert!(c < s && s < b);
        assert_eq!(b, 1.0);
    }

    #[test]
    fn measured_rtts_drive_page_load_times() {
        // Pages built on measured 20 ms RTTs load faster than the same pages
        // on measured 200 ms RTTs.
        let fast = PageCorpus::generate_with_rtts(20, 3, &[0.020]);
        let slow = PageCorpus::generate_with_rtts(20, 3, &[0.200]);
        for (f, s) in fast.pages.iter().zip(&slow.pages) {
            assert_eq!(f.objects.len(), s.objects.len(), "same synthetic shape");
        }
        let fast_plt = replay(&fast, ReplayScenario::Baseline).median_plt_ms();
        let slow_plt = replay(&slow, ReplayScenario::Baseline).median_plt_ms();
        assert!(fast_plt < slow_plt);
        // Round-robin assignment covers the whole RTT list.
        let mixed = PageCorpus::generate_with_rtts(4, 1, &[0.030, 0.060]);
        assert_eq!(mixed.pages[0].base_rtt_s, 0.030);
        assert_eq!(mixed.pages[1].base_rtt_s, 0.060);
        assert_eq!(mixed.pages[2].base_rtt_s, 0.030);
    }

    #[test]
    #[should_panic]
    fn empty_rtt_list_rejected() {
        PageCorpus::generate_with_rtts(5, 1, &[]);
    }

    #[test]
    fn reports_have_consistent_counts() {
        let c = PageCorpus::generate(5, 1);
        let r = replay(&c, ReplayScenario::Baseline);
        assert_eq!(r.page_load_times_s.len(), 5);
        let total_objects: usize = c.pages.iter().map(|p| p.objects.len()).sum();
        assert_eq!(r.object_load_times_s.len(), total_objects);
        assert!(r.page_load_times_s.iter().all(|&t| t > 0.0));
    }
}

//! Online gaming latency models (§7.1, Fig. 12).
//!
//! Two client models:
//!
//! * **Fat client** — the game runs locally and only exchanges small state
//!   updates with the server; its interaction latency is simply the network
//!   round trip, so cISP's 3–4× RTT reduction applies directly.
//! * **Thin client** — every frame is rendered server-side and streamed; the
//!   frame time (input → observed output) is one RTT plus processing. With a
//!   low-latency *augmentation*, the server speculates on the possible next
//!   game states, pre-sends the corresponding frames over the conventional
//!   (high-bandwidth) path, and then sends only a tiny "which branch
//!   happened" message over the low-latency path — so on a speculation hit
//!   the frame time collapses to the low-latency RTT, and on a miss it falls
//!   back to the conventional RTT (Outatime-style speculation, [46]).

use serde::{Deserialize, Serialize};

/// Parameters of the thin-client streaming model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GameModel {
    /// Client+server processing and rendering overhead per frame, ms.
    pub processing_ms: f64,
    /// Probability that the server's speculation covers the user's input
    /// (the toy Pacman client of the paper speculates on all four moves, so
    /// its hit rate is ~1; richer games are lower).
    pub speculation_hit_rate: f64,
    /// Ratio of the low-latency network's RTT to the conventional RTT
    /// (paper: 1/3).
    pub lowlat_rtt_fraction: f64,
    /// Bandwidth overhead factor of speculative streaming (2–4.5× in prior
    /// work); reported, not used in the latency model.
    pub bandwidth_overhead: f64,
}

impl Default for GameModel {
    fn default() -> Self {
        Self {
            processing_ms: 40.0,
            speculation_hit_rate: 1.0,
            lowlat_rtt_fraction: 1.0 / 3.0,
            bandwidth_overhead: 3.0,
        }
    }
}

/// Thin-client frame time over conventional connectivity only.
pub fn frame_time_conventional_ms(model: &GameModel, conventional_rtt_ms: f64) -> f64 {
    assert!(conventional_rtt_ms >= 0.0);
    model.processing_ms + conventional_rtt_ms
}

/// Thin-client frame time with the low-latency augmentation: speculation
/// hits pay only the low-latency RTT, misses fall back to the conventional
/// RTT (expected value).
pub fn frame_time_ms(model: &GameModel, conventional_rtt_ms: f64) -> f64 {
    assert!(conventional_rtt_ms >= 0.0);
    assert!((0.0..=1.0).contains(&model.speculation_hit_rate));
    let lowlat_rtt = conventional_rtt_ms * model.lowlat_rtt_fraction;
    let hit = model.processing_ms + lowlat_rtt;
    let miss = model.processing_ms + conventional_rtt_ms + lowlat_rtt;
    model.speculation_hit_rate * hit + (1.0 - model.speculation_hit_rate) * miss
}

/// Fat-client interaction latency: the RTT itself, reduced by the
/// low-latency network's factor when it is used.
pub fn fat_client_latency_ms(conventional_rtt_ms: f64, use_lowlat: bool, fraction: f64) -> f64 {
    assert!(conventional_rtt_ms >= 0.0);
    if use_lowlat {
        conventional_rtt_ms * fraction
    } else {
        conventional_rtt_ms
    }
}

/// Frame-time statistics over a *distribution* of RTTs — the form the
/// end-to-end pipeline feeds this model: per-pair RTTs measured by the
/// packet simulator (propagation + serialization + queueing) instead of a
/// single synthetic RTT.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrameTimeStats {
    /// Mean thin-client frame time over conventional connectivity, ms.
    pub mean_conventional_ms: f64,
    /// Mean thin-client frame time with the low-latency augmentation, ms.
    pub mean_augmented_ms: f64,
    /// Worst-pair conventional frame time, ms.
    pub worst_conventional_ms: f64,
    /// Worst-pair augmented frame time, ms.
    pub worst_augmented_ms: f64,
    /// Fraction of the RTT samples whose *augmented* frame time meets the
    /// paper's ~60 ms interactivity threshold while the conventional one
    /// does not — the pairs for which the low-latency network changes the
    /// experienced category.
    pub newly_playable_fraction: f64,
}

/// The interactivity threshold (ms) used for
/// [`FrameTimeStats::newly_playable_fraction`] — the paper's rule of thumb
/// that frame times beyond ~60 ms degrade fast-action games.
pub const PLAYABLE_FRAME_MS: f64 = 60.0;

/// Evaluate the thin-client model over a set of measured RTT samples
/// (milliseconds), e.g. the simulated per-pair RTTs of
/// `cisp_core::evaluate`. Panics on an empty sample set.
pub fn frame_time_distribution(model: &GameModel, rtt_ms_samples: &[f64]) -> FrameTimeStats {
    assert!(!rtt_ms_samples.is_empty(), "need at least one RTT sample");
    let mut sum_conv = 0.0;
    let mut sum_aug = 0.0;
    let mut worst_conv = 0.0f64;
    let mut worst_aug = 0.0f64;
    let mut newly_playable = 0usize;
    for &rtt in rtt_ms_samples {
        let conv = frame_time_conventional_ms(model, rtt);
        let aug = frame_time_ms(model, rtt);
        sum_conv += conv;
        sum_aug += aug;
        worst_conv = worst_conv.max(conv);
        worst_aug = worst_aug.max(aug);
        if aug <= PLAYABLE_FRAME_MS && conv > PLAYABLE_FRAME_MS {
            newly_playable += 1;
        }
    }
    let n = rtt_ms_samples.len() as f64;
    FrameTimeStats {
        mean_conventional_ms: sum_conv / n,
        mean_augmented_ms: sum_aug / n,
        worst_conventional_ms: worst_conv,
        worst_augmented_ms: worst_aug,
        newly_playable_fraction: newly_playable as f64 / n,
    }
}

/// The Fig. 12 sweep: frame times with and without the augmentation as the
/// conventional RTT grows. Returns `(rtt_ms, conventional, augmented)` rows.
pub fn frame_time_sweep(model: &GameModel, max_rtt_ms: f64, step_ms: f64) -> Vec<(f64, f64, f64)> {
    assert!(max_rtt_ms > 0.0 && step_ms > 0.0);
    let mut rows = Vec::new();
    let mut rtt = 0.0;
    while rtt <= max_rtt_ms + 1e-9 {
        rows.push((
            rtt,
            frame_time_conventional_ms(model, rtt),
            frame_time_ms(model, rtt),
        ));
        rtt += step_ms;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augmentation_always_helps_with_perfect_speculation() {
        let model = GameModel::default();
        for rtt in [10.0, 50.0, 100.0, 200.0, 300.0] {
            let conventional = frame_time_conventional_ms(&model, rtt);
            let augmented = frame_time_ms(&model, rtt);
            assert!(augmented < conventional, "rtt {rtt}");
            // The saving is the 2/3 of the RTT that speculation removes.
            assert!((conventional - augmented - rtt * 2.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rtt_frame_time_is_processing_only() {
        let model = GameModel::default();
        assert_eq!(frame_time_ms(&model, 0.0), model.processing_ms);
        assert_eq!(frame_time_conventional_ms(&model, 0.0), model.processing_ms);
    }

    #[test]
    fn imperfect_speculation_blends_towards_conventional() {
        let perfect = GameModel::default();
        let imperfect = GameModel {
            speculation_hit_rate: 0.5,
            ..GameModel::default()
        };
        let rtt = 120.0;
        let t_perfect = frame_time_ms(&perfect, rtt);
        let t_imperfect = frame_time_ms(&imperfect, rtt);
        let t_conventional = frame_time_conventional_ms(&perfect, rtt);
        assert!(t_perfect < t_imperfect);
        // A miss costs even more than conventional-only (wasted speculation
        // round), so the blend may exceed it slightly at 50 % hit rate; it
        // must still be finite and ordered sensibly.
        assert!(t_imperfect < t_conventional + rtt);
    }

    #[test]
    fn fat_client_reduction_is_direct() {
        assert_eq!(fat_client_latency_ms(90.0, false, 1.0 / 3.0), 90.0);
        assert!((fat_client_latency_ms(90.0, true, 1.0 / 3.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_the_fig12_range_and_grows_linearly() {
        let rows = frame_time_sweep(&GameModel::default(), 300.0, 25.0);
        assert_eq!(rows.len(), 13);
        assert_eq!(rows[0].0, 0.0);
        assert!((rows.last().unwrap().0 - 300.0).abs() < 1e-9);
        // Conventional frame time grows ~3× faster with RTT than augmented.
        let conv_slope = (rows[12].1 - rows[0].1) / 300.0;
        let aug_slope = (rows[12].2 - rows[0].2) / 300.0;
        assert!((conv_slope / aug_slope - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn negative_rtt_rejected() {
        frame_time_ms(&GameModel::default(), -1.0);
    }

    #[test]
    fn distribution_stats_aggregate_per_sample_models() {
        let model = GameModel::default();
        // One comfortably playable pair (10 ms), one that only the
        // augmentation rescues (45 ms: conventional 85 ms, augmented 55 ms),
        // one hopeless pair (300 ms).
        let rtts = [10.0, 45.0, 300.0];
        let stats = frame_time_distribution(&model, &rtts);
        assert!(stats.mean_augmented_ms < stats.mean_conventional_ms);
        assert!(stats.worst_augmented_ms < stats.worst_conventional_ms);
        assert!((stats.worst_conventional_ms - 340.0).abs() < 1e-9);
        // Exactly the 45 ms pair flips category: conventional 85 ms,
        // augmented 55 ms.
        assert!((stats.newly_playable_fraction - 1.0 / 3.0).abs() < 1e-12);
        // Mean matches the hand-rolled average.
        let conv_mean = (50.0 + 85.0 + 340.0) / 3.0;
        assert!((stats.mean_conventional_ms - conv_mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_distribution_rejected() {
        frame_time_distribution(&GameModel::default(), &[]);
    }
}

//! Application-level models: what a speed-of-light ISP buys end users.
//!
//! §7 and §8 of the paper quantify cISP's benefit for two application
//! classes and then argue that the value per gigabyte far exceeds the
//! network's cost per gigabyte:
//!
//! * [`web`] — a Mahimahi-style page-load replay model over a synthetic page
//!   corpus: page load times and object load times under the baseline
//!   Internet, under cISP (all RTTs scaled to 1/3), and under the
//!   "cISP-selective" variant where only client→server traffic rides the
//!   low-latency network (Fig. 13).
//! * [`gaming`] — frame-time models for fat-client and thin-client
//!   (speculative-execution) online gaming, with and without a low-latency
//!   augmentation of the conventional connectivity (Fig. 12).
//! * [`value`] — the §8 back-of-the-envelope value-per-GB estimates for Web
//!   search, e-commerce and gaming, compared against the network's cost per
//!   GB.
//!
//! Both the web and gaming models consume *measured* RTT distributions —
//! e.g. the queueing-aware per-pair RTTs the packet simulator produces via
//! `cisp_core::evaluate` — through [`web::PageCorpus::generate_with_rtts`]
//! and [`gaming::frame_time_distribution`], in addition to their synthetic
//! single-RTT sweeps.

pub mod gaming;
pub mod value;
pub mod web;

pub use gaming::{frame_time_distribution, frame_time_ms, FrameTimeStats, GameModel};
pub use value::{cost_benefit_table, ValueEstimate};
pub use web::{PageCorpus, ReplayScenario, WebReplayReport};

//! The paper's traffic models over a shared site list.
//!
//! §6.3 compares three deployment scenarios:
//!
//! * **City–City**: traffic between population centers proportional to the
//!   product of their populations (the paper's default, §4).
//! * **DC–DC**: equal traffic between every pair of data centers (the paper
//!   provisions equal capacity between each DC pair).
//! * **City–DC**: each city sends traffic, proportional to its population, to
//!   its *closest* data center.
//!
//! To let a single network carry a mixture of all three (§6.4's 4:3:3 mixes),
//! the models are all expressed over a combined [`SiteSet`] whose sites are
//! the population centers followed by the data centers.

use cisp_data::{cities::City, datacenters::DataCenter};
use cisp_geo::geodesic;
use serde::{Deserialize, Serialize};

use crate::matrix::TrafficMatrix;

/// A combined site list: population centers followed by data centers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSet {
    /// Population centers (cities).
    pub cities: Vec<City>,
    /// Data centers.
    pub datacenters: Vec<DataCenter>,
}

impl SiteSet {
    /// Build a site set.
    pub fn new(cities: Vec<City>, datacenters: Vec<DataCenter>) -> Self {
        assert!(!cities.is_empty(), "need at least one city");
        Self {
            cities,
            datacenters,
        }
    }

    /// Total number of sites (cities + data centers).
    pub fn len(&self) -> usize {
        self.cities.len() + self.datacenters.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Site locations in index order (cities first, then data centers).
    pub fn locations(&self) -> Vec<cisp_geo::GeoPoint> {
        self.cities
            .iter()
            .map(|c| c.location)
            .chain(self.datacenters.iter().map(|d| d.location))
            .collect()
    }

    /// Global index of city `i`.
    pub fn city_index(&self, i: usize) -> usize {
        assert!(i < self.cities.len());
        i
    }

    /// Global index of data center `i`.
    pub fn dc_index(&self, i: usize) -> usize {
        assert!(i < self.datacenters.len());
        self.cities.len() + i
    }

    /// Index of the data center closest to the given city.
    pub fn closest_dc(&self, city: usize) -> Option<usize> {
        let loc = self.cities[city].location;
        self.datacenters
            .iter()
            .enumerate()
            .map(|(i, dc)| (geodesic::distance_km(loc, dc.location), i))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
            .map(|(_, i)| self.dc_index(i))
    }
}

/// City–City population-product traffic over a site set (data-center rows are
/// zero).
pub fn city_city_matrix(sites: &SiteSet) -> TrafficMatrix {
    let n = sites.len();
    let mut weights = vec![vec![0.0; n]; n];
    for (i, a) in sites.cities.iter().enumerate() {
        for (j, b) in sites.cities.iter().enumerate() {
            if i != j {
                weights[i][j] = a.population as f64 * b.population as f64;
            }
        }
    }
    TrafficMatrix::from_matrix(weights).normalized()
}

/// DC–DC traffic: equal weight between every pair of data centers.
pub fn dc_dc_matrix(sites: &SiteSet) -> TrafficMatrix {
    let n = sites.len();
    let mut weights = vec![vec![0.0; n]; n];
    for i in 0..sites.datacenters.len() {
        for j in 0..sites.datacenters.len() {
            if i != j {
                weights[sites.dc_index(i)][sites.dc_index(j)] = 1.0;
            }
        }
    }
    TrafficMatrix::from_matrix(weights)
}

/// City–DC traffic: each city exchanges traffic, proportional to its
/// population, with its closest data center.
pub fn city_dc_matrix(sites: &SiteSet) -> TrafficMatrix {
    let n = sites.len();
    let mut weights = vec![vec![0.0; n]; n];
    if sites.datacenters.is_empty() {
        return TrafficMatrix::from_matrix(weights);
    }
    for (i, city) in sites.cities.iter().enumerate() {
        let dc = sites.closest_dc(i).expect("datacenters non-empty");
        let w = city.population as f64;
        weights[i][dc] += w;
        weights[dc][i] += w;
    }
    TrafficMatrix::from_matrix(weights).normalized()
}

/// A named traffic mix (shares of city-city : city-DC : DC-DC), e.g. the
/// designed-for 4:3:3 of §6.4 and its perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Share of city-to-city traffic.
    pub city_city: f64,
    /// Share of city-to-data-center traffic.
    pub city_dc: f64,
    /// Share of data-center-to-data-center traffic.
    pub dc_dc: f64,
}

impl TrafficMix {
    /// The designed-for mix of §6.4.
    pub fn designed() -> Self {
        Self {
            city_city: 4.0,
            city_dc: 3.0,
            dc_dc: 3.0,
        }
    }

    /// The mixes §6.4 tests against the designed-for network.
    pub fn paper_variants() -> Vec<(String, Self)> {
        vec![
            (
                "4:3:3".to_string(),
                Self {
                    city_city: 4.0,
                    city_dc: 3.0,
                    dc_dc: 3.0,
                },
            ),
            (
                "5:3:3".to_string(),
                Self {
                    city_city: 5.0,
                    city_dc: 3.0,
                    dc_dc: 3.0,
                },
            ),
            (
                "4:3:4".to_string(),
                Self {
                    city_city: 4.0,
                    city_dc: 3.0,
                    dc_dc: 4.0,
                },
            ),
            (
                "4:4:3".to_string(),
                Self {
                    city_city: 4.0,
                    city_dc: 4.0,
                    dc_dc: 3.0,
                },
            ),
        ]
    }

    /// Materialise the mix into a traffic matrix over a site set.
    pub fn matrix(&self, sites: &SiteSet) -> TrafficMatrix {
        TrafficMatrix::mix(&[
            (self.city_city, &city_city_matrix(sites)),
            (self.city_dc, &city_dc_matrix(sites)),
            (self.dc_dc, &dc_dc_matrix(sites)),
        ])
    }

    /// Materialise the mix split by latency class: the user-facing
    /// components (city–city gaming/small-web and city–DC) are foreground,
    /// the DC–DC bulk-replication component is background — the split the
    /// hybrid fluid/packet engine consumes. The two matrices decompose the
    /// full [`TrafficMix::matrix`]: summed weight-for-weight they reproduce
    /// it, and each keeps its share of the mix's unit total, so existing
    /// callers that ignore classes see bit-identical traffic.
    pub fn classified(&self, sites: &SiteSet) -> ClassifiedTraffic {
        let total_share = self.city_city + self.city_dc + self.dc_dc;
        assert!(total_share > 0.0);
        // `TrafficMatrix::mix` normalises to a unit total per call; rescale
        // each subset by its share of the full mix so foreground +
        // background equals `matrix()` exactly in aggregate.
        let scale = |m: TrafficMatrix, share: f64| {
            if m.total_weight() > 0.0 {
                TrafficMatrix::from_dist_matrix(m.scaled_to_gbps(share / total_share))
            } else {
                m
            }
        };
        let foreground = scale(
            TrafficMatrix::mix(&[
                (self.city_city, &city_city_matrix(sites)),
                (self.city_dc, &city_dc_matrix(sites)),
            ]),
            self.city_city + self.city_dc,
        );
        let background = scale(dc_dc_matrix(sites), self.dc_dc);
        ClassifiedTraffic {
            foreground,
            background,
        }
    }
}

/// A traffic mix split by latency class, for hybrid fluid/packet
/// simulation: latency-sensitive user-facing traffic (foreground) and bulk
/// replication traffic (background). Produced by [`TrafficMix::classified`];
/// consumed by `cisp_core::evaluate::lower_traffic_classified`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedTraffic {
    /// Latency-sensitive traffic, simulated packet-level.
    pub foreground: TrafficMatrix,
    /// Bulk traffic, eligible for fluid modelling.
    pub background: TrafficMatrix,
}

impl ClassifiedTraffic {
    /// The combined matrix both classes sum to — equal (weight for weight,
    /// up to float rounding) to the [`TrafficMix::matrix`] this split came
    /// from.
    pub fn combined(&self) -> TrafficMatrix {
        let n = self.foreground.num_sites();
        assert_eq!(self.background.num_sites(), n);
        let m = cisp_graph::DistMatrix::from_fn(n, |i, j| {
            self.foreground.weight(i, j) + self.background.weight(i, j)
        });
        TrafficMatrix::from_dist_matrix(m)
    }

    /// Background fraction of the combined offered weight — what sizes the
    /// background aggregate when lowering a classified mix (e.g.
    /// `bg_aggregate_gbps = share × total_gbps`) so the class split of the
    /// simulated load matches the mix's split. `0.0` when the mix carries no
    /// weight at all.
    pub fn background_share(&self) -> f64 {
        let fg = self.foreground.total_weight();
        let bg = self.background.total_weight();
        if fg + bg > 0.0 {
            bg / (fg + bg)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_data::{cities::us_top_cities, datacenters::google_us_datacenters};

    fn site_set() -> SiteSet {
        SiteSet::new(us_top_cities(12), google_us_datacenters())
    }

    #[test]
    fn site_set_indexing() {
        let s = site_set();
        assert_eq!(s.len(), 18);
        assert_eq!(s.city_index(3), 3);
        assert_eq!(s.dc_index(0), 12);
        assert_eq!(s.locations().len(), 18);
    }

    #[test]
    fn city_city_weights_follow_population_products() {
        let s = site_set();
        let m = city_city_matrix(&s);
        // NYC (0) – LA (1) is the largest product → weight 1 after
        // normalisation; any DC row is zero.
        assert!((m.weight(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(m.weight(s.dc_index(0), s.dc_index(1)), 0.0);
        assert_eq!(m.weight(0, s.dc_index(0)), 0.0);
    }

    #[test]
    fn dc_dc_weights_are_uniform_between_dcs_only() {
        let s = site_set();
        let m = dc_dc_matrix(&s);
        assert_eq!(m.weight(s.dc_index(0), s.dc_index(5)), 1.0);
        assert_eq!(m.weight(0, 1), 0.0);
        assert_eq!(m.weight(0, s.dc_index(0)), 0.0);
        // 6 DCs → 15 pairs.
        assert_eq!(m.total_weight(), 15.0);
    }

    #[test]
    fn city_dc_routes_to_closest_dc() {
        let s = site_set();
        let m = city_dc_matrix(&s);
        // Every city has exactly one positive DC entry (its closest DC),
        // and no city-city entries.
        for i in 0..s.cities.len() {
            let positive_dcs: Vec<usize> = (0..s.datacenters.len())
                .filter(|&d| m.weight(i, s.dc_index(d)) > 0.0)
                .collect();
            assert_eq!(positive_dcs.len(), 1, "city {i} should map to one DC");
            for j in 0..s.cities.len() {
                assert_eq!(m.weight(i, j), 0.0);
            }
        }
        // Seattle-ish (if present) maps to The Dalles, OR (index 5 in the DC
        // list). Check with Chicago → Council Bluffs, IA (index 1).
        let chicago = s.cities.iter().position(|c| c.name == "Chicago").unwrap();
        assert_eq!(s.closest_dc(chicago), Some(s.dc_index(1)));
    }

    #[test]
    fn mix_combines_all_three_components() {
        let s = site_set();
        let mix = TrafficMix::designed().matrix(&s);
        // City-city, city-DC and DC-DC pairs all get weight.
        assert!(mix.weight(0, 1) > 0.0);
        assert!(mix.weight(s.dc_index(0), s.dc_index(1)) > 0.0);
        let chicago = s.cities.iter().position(|c| c.name == "Chicago").unwrap();
        assert!(mix.weight(chicago, s.dc_index(1)) > 0.0);
        // Shares: city-city accounts for 40 % of the total.
        let total = mix.total_weight();
        let cc: f64 = (0..s.cities.len())
            .flat_map(|i| ((i + 1)..s.cities.len()).map(move |j| (i, j)))
            .map(|(i, j)| mix.weight(i, j))
            .sum();
        assert!(
            (cc / total - 0.4).abs() < 1e-9,
            "city-city share {}",
            cc / total
        );
    }

    #[test]
    fn paper_variants_cover_the_four_mixes() {
        let variants = TrafficMix::paper_variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].1, TrafficMix::designed());
    }

    #[test]
    fn city_dc_with_no_datacenters_is_empty() {
        let s = SiteSet::new(us_top_cities(5), Vec::new());
        let m = city_dc_matrix(&s);
        assert_eq!(m.total_weight(), 0.0);
        assert_eq!(s.closest_dc(0), None);
    }

    #[test]
    fn classified_decomposes_the_full_mix() {
        let s = site_set();
        let mix = TrafficMix::designed();
        let full = mix.matrix(&s);
        let split = mix.classified(&s);
        // Foreground + background reproduce the combined matrix weight for
        // weight, so classifying never changes the aggregate traffic.
        let combined = split.combined();
        for i in 0..s.len() {
            for j in 0..s.len() {
                assert!(
                    (combined.weight(i, j) - full.weight(i, j)).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    combined.weight(i, j),
                    full.weight(i, j)
                );
            }
        }
        // Each class keeps its share of the mix: 4:3 user-facing vs 3 bulk.
        assert!((split.foreground.total_weight() - 0.7).abs() < 1e-9);
        assert!((split.background.total_weight() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn classified_background_is_exactly_the_dc_dc_component() {
        let s = site_set();
        let split = TrafficMix::designed().classified(&s);
        // Background has DC–DC weight only; foreground has none.
        assert!(split.background.weight(s.dc_index(0), s.dc_index(1)) > 0.0);
        assert_eq!(split.background.weight(0, 1), 0.0);
        assert_eq!(split.foreground.weight(s.dc_index(0), s.dc_index(1)), 0.0);
        assert!(split.foreground.weight(0, 1) > 0.0);
    }

    #[test]
    fn classified_with_no_datacenters_has_empty_background() {
        let s = SiteSet::new(us_top_cities(5), Vec::new());
        let mix = TrafficMix::designed();
        let split = mix.classified(&s);
        assert_eq!(split.background.total_weight(), 0.0);
        assert!(split.foreground.total_weight() > 0.0);
        assert_eq!(split.background_share(), 0.0);
    }

    #[test]
    fn background_share_matches_the_mix_split() {
        let s = site_set();
        let split = TrafficMix::designed().classified(&s);
        // The designed mix is 70% user-facing, 30% DC–DC bulk.
        assert!((split.background_share() - 0.3).abs() < 1e-9);
    }
}

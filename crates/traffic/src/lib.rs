//! Traffic-matrix models for cISP design and simulation.
//!
//! The paper designs for a city-to-city traffic matrix proportional to the
//! product of city populations (§4), and additionally studies inter-data-center
//! and data-center-to-edge models (§6.3), mixes of the three (§6.4), and
//! deviations from the designed-for matrix obtained by perturbing city
//! populations (§5). This crate provides all of those:
//!
//! * [`matrix::TrafficMatrix`] — a symmetric non-negative weight matrix with
//!   helpers for normalisation, scaling to an aggregate throughput, and
//!   mixing.
//! * [`models`] — the population-product, inter-DC (uniform between DC
//!   pairs), and city-to-nearest-DC models over a shared site list, plus
//!   the latency-class split ([`models::ClassifiedTraffic`]): user-facing
//!   components as foreground, DC–DC bulk replication as background, for
//!   the hybrid fluid/packet engine.
//! * [`perturb`] — the population-perturbation model: each city's population
//!   is re-weighted by a factor drawn uniformly from `[1−γ, 1+γ]`.

pub mod matrix;
pub mod models;
pub mod perturb;

pub use matrix::TrafficMatrix;
pub use models::{
    city_city_matrix, city_dc_matrix, dc_dc_matrix, ClassifiedTraffic, SiteSet, TrafficMix,
};
pub use perturb::perturbed_populations;

//! The traffic-matrix type.
//!
//! A [`TrafficMatrix`] is a symmetric matrix of non-negative pair weights
//! with a zero diagonal, backed by the flat row-major
//! [`DistMatrix`](cisp_graph::DistMatrix) engine shared with the designer.
//! Weights are relative (the design optimises per unit traffic);
//! [`TrafficMatrix::scaled_to_gbps`] converts them into absolute per-pair
//! demands for capacity planning and packet simulation.

use cisp_graph::{pair_indices, DistMatrix};
use serde::{Deserialize, Serialize};

/// A symmetric traffic matrix over `n` sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    weights: DistMatrix,
}

impl TrafficMatrix {
    /// Build from a full nested matrix; it is symmetrised (averaging the two
    /// triangles) and the diagonal is zeroed.
    pub fn from_matrix(weights: Vec<Vec<f64>>) -> Self {
        Self::from_dist_matrix(DistMatrix::from_nested(weights))
    }

    /// Build from a flat matrix; it is symmetrised (averaging the two
    /// triangles) and the diagonal is zeroed.
    pub fn from_dist_matrix(weights: DistMatrix) -> Self {
        for &v in weights.as_slice() {
            assert!(v.is_finite() && v >= 0.0, "weights must be finite and ≥ 0");
        }
        let symmetric = DistMatrix::from_fn(weights.n(), |i, j| {
            if i == j {
                0.0
            } else {
                0.5 * (weights.get(i, j) + weights.get(j, i))
            }
        });
        Self { weights: symmetric }
    }

    /// An all-zero matrix over `n` sites.
    pub fn zeros(n: usize) -> Self {
        Self {
            weights: DistMatrix::zeros(n),
        }
    }

    /// A uniform matrix (weight 1 between every distinct pair).
    pub fn uniform(n: usize) -> Self {
        Self {
            weights: DistMatrix::from_fn(n, |i, j| if i == j { 0.0 } else { 1.0 }),
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.weights.n()
    }

    /// Weight of a pair.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights.get(i, j)
    }

    /// The underlying matrix.
    pub fn as_matrix(&self) -> &DistMatrix {
        &self.weights
    }

    /// Consume into the underlying matrix.
    pub fn into_matrix(self) -> DistMatrix {
        self.weights
    }

    /// Sum of weights over unordered pairs.
    pub fn total_weight(&self) -> f64 {
        self.weights.upper_triangle_sum()
    }

    /// Normalise so that the maximum pair weight is 1 (no-op for an all-zero
    /// matrix).
    pub fn normalized(&self) -> Self {
        let max = self.weights.max_value();
        if max <= 0.0 {
            return self.clone();
        }
        let mut weights = self.weights.clone();
        weights.map_in_place(|v| v / max);
        Self { weights }
    }

    /// Scale so the sum over unordered pairs equals `aggregate_gbps`,
    /// yielding absolute per-pair demands in Gbps.
    pub fn scaled_to_gbps(&self, aggregate_gbps: f64) -> DistMatrix {
        assert!(aggregate_gbps >= 0.0);
        let total = self.total_weight();
        assert!(total > 0.0, "cannot scale an all-zero traffic matrix");
        let factor = aggregate_gbps / total;
        let mut scaled = self.weights.clone();
        scaled.map_in_place(|v| v * factor);
        scaled
    }

    /// Weighted sum of several matrices over the same site set: the result is
    /// `Σ weight_k · normalise_to_unit_total(matrix_k)`, so the given weights
    /// are the *traffic shares* of each component (the 4:3:3 mixes of §6.4).
    pub fn mix(components: &[(f64, &TrafficMatrix)]) -> Self {
        assert!(!components.is_empty());
        let n = components[0].1.num_sites();
        for (share, m) in components {
            assert!(*share >= 0.0);
            assert_eq!(m.num_sites(), n, "mismatched site counts in mix");
        }
        let total_share: f64 = components.iter().map(|(s, _)| *s).sum();
        assert!(total_share > 0.0);
        let mut weights = DistMatrix::zeros(n);
        for (share, m) in components {
            let component_total = m.total_weight();
            if component_total <= 0.0 {
                continue;
            }
            let factor = share / total_share / component_total;
            for (i, j) in pair_indices(n) {
                let v = weights.get(i, j) + m.weights.get(i, j) * factor;
                weights.set_sym(i, j, v);
            }
        }
        Self { weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_matrix_symmetrises_and_zeroes_diagonal() {
        let m = TrafficMatrix::from_matrix(vec![
            vec![5.0, 2.0, 0.0],
            vec![4.0, 7.0, 1.0],
            vec![0.0, 3.0, 9.0],
        ]);
        assert_eq!(m.weight(0, 0), 0.0);
        assert_eq!(m.weight(1, 1), 0.0);
        assert_eq!(m.weight(0, 1), 3.0);
        assert_eq!(m.weight(1, 0), 3.0);
        assert_eq!(m.weight(1, 2), 2.0);
    }

    #[test]
    fn uniform_and_zeros() {
        let u = TrafficMatrix::uniform(4);
        assert_eq!(u.total_weight(), 6.0);
        let z = TrafficMatrix::zeros(4);
        assert_eq!(z.total_weight(), 0.0);
        assert_eq!(z.normalized().total_weight(), 0.0);
    }

    #[test]
    fn normalization_caps_max_at_one() {
        let m = TrafficMatrix::from_matrix(vec![
            vec![0.0, 10.0, 2.0],
            vec![10.0, 0.0, 5.0],
            vec![2.0, 5.0, 0.0],
        ])
        .normalized();
        assert!((m.weight(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.weight(0, 2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn scaling_hits_aggregate_and_preserves_ratios() {
        let m = TrafficMatrix::from_matrix(vec![
            vec![0.0, 1.0, 3.0],
            vec![1.0, 0.0, 0.0],
            vec![3.0, 0.0, 0.0],
        ]);
        let scaled = m.scaled_to_gbps(80.0);
        let total: f64 = scaled[0][1] + scaled[0][2] + scaled[1][2];
        assert!((total - 80.0).abs() < 1e-9);
        assert!((scaled[0][2] / scaled[0][1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mix_respects_shares() {
        // Component A: all traffic on pair (0,1); component B: all on (1,2).
        let a = TrafficMatrix::from_matrix(vec![
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let b = TrafficMatrix::from_matrix(vec![
            vec![0.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0],
        ]);
        let mixed = TrafficMatrix::mix(&[(4.0, &a), (3.0, &b)]);
        let w01 = mixed.weight(0, 1);
        let w12 = mixed.weight(1, 2);
        assert!((w01 / w12 - 4.0 / 3.0).abs() < 1e-9);
        // Total weight is 1 (shares normalised).
        assert!((mixed.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry_survives_mixing() {
        let a = TrafficMatrix::uniform(4);
        let b = TrafficMatrix::from_matrix(vec![
            vec![0.0, 2.0, 0.0, 1.0],
            vec![2.0, 0.0, 5.0, 0.0],
            vec![0.0, 5.0, 0.0, 3.0],
            vec![1.0, 0.0, 3.0, 0.0],
        ]);
        let mixed = TrafficMatrix::mix(&[(1.0, &a), (2.0, &b)]);
        assert!(mixed.as_matrix().is_symmetric(1e-12));
    }

    #[test]
    #[should_panic]
    fn mix_rejects_mismatched_sizes() {
        let a = TrafficMatrix::uniform(3);
        let b = TrafficMatrix::uniform(4);
        TrafficMatrix::mix(&[(1.0, &a), (1.0, &b)]);
    }

    #[test]
    #[should_panic]
    fn from_matrix_rejects_negative_weights() {
        TrafficMatrix::from_matrix(vec![vec![0.0, -1.0], vec![-1.0, 0.0]]);
    }

    #[test]
    #[should_panic]
    fn scaling_zero_matrix_panics() {
        TrafficMatrix::zeros(3).scaled_to_gbps(10.0);
    }
}

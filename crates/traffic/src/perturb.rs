//! Population perturbation (§5).
//!
//! To emulate a city producing more or less traffic than the designed-for
//! model expects, the paper re-weights each city's population by a factor
//! drawn uniformly from `[1 − γ, 1 + γ]` and rebuilds the population-product
//! matrix. Fig. 5 evaluates γ ∈ {0.1, 0.3, 0.5}.

use cisp_data::cities::City;
use cisp_data::rng::seeded_rng;
use rand::Rng;

use crate::matrix::TrafficMatrix;

/// Re-weight city populations by factors drawn from `U[1 − γ, 1 + γ]`.
///
/// γ must lie in `[0, 1]` so populations stay non-negative. The RNG stream is
/// derived from `seed`, so a given `(seed, γ)` pair always produces the same
/// perturbation.
pub fn perturbed_populations(cities: &[City], gamma: f64, seed: u64) -> Vec<City> {
    assert!((0.0..=1.0).contains(&gamma), "γ must be in [0, 1]");
    let mut rng = seeded_rng(seed, "population-perturbation");
    cities
        .iter()
        .map(|c| {
            let factor = 1.0 - gamma + 2.0 * gamma * rng.gen::<f64>();
            City {
                name: c.name.clone(),
                location: c.location,
                population: (c.population as f64 * factor).round().max(0.0) as u64,
            }
        })
        .collect()
}

/// Population-product traffic matrix for a perturbed set of cities, over the
/// same site indexing as the unperturbed set (cities only).
pub fn perturbed_city_city_matrix(cities: &[City], gamma: f64, seed: u64) -> TrafficMatrix {
    let perturbed = perturbed_populations(cities, gamma, seed);
    let n = perturbed.len();
    let mut weights = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                weights[i][j] = perturbed[i].population as f64 * perturbed[j].population as f64;
            }
        }
    }
    TrafficMatrix::from_matrix(weights).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cisp_data::cities::us_top_cities;

    #[test]
    fn zero_gamma_is_identity() {
        let cities = us_top_cities(10);
        let perturbed = perturbed_populations(&cities, 0.0, 1);
        for (a, b) in cities.iter().zip(perturbed.iter()) {
            assert_eq!(a.population, b.population);
        }
    }

    #[test]
    fn perturbation_stays_within_gamma_band() {
        let cities = us_top_cities(20);
        for &gamma in &[0.1, 0.3, 0.5] {
            let perturbed = perturbed_populations(&cities, gamma, 7);
            for (a, b) in cities.iter().zip(perturbed.iter()) {
                let ratio = b.population as f64 / a.population as f64;
                assert!(
                    ratio >= 1.0 - gamma - 0.01 && ratio <= 1.0 + gamma + 0.01,
                    "ratio {ratio} outside γ = {gamma} band"
                );
            }
        }
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let cities = us_top_cities(10);
        let a = perturbed_populations(&cities, 0.3, 5);
        let b = perturbed_populations(&cities, 0.3, 5);
        let c = perturbed_populations(&cities, 0.3, 6);
        assert_eq!(
            a.iter().map(|x| x.population).collect::<Vec<_>>(),
            b.iter().map(|x| x.population).collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().map(|x| x.population).collect::<Vec<_>>(),
            c.iter().map(|x| x.population).collect::<Vec<_>>()
        );
    }

    #[test]
    fn larger_gamma_moves_matrix_further_from_nominal() {
        let cities = us_top_cities(15);
        let nominal = perturbed_city_city_matrix(&cities, 0.0, 3);
        let small = perturbed_city_city_matrix(&cities, 0.1, 3);
        let large = perturbed_city_city_matrix(&cities, 0.5, 3);
        let distance = |a: &TrafficMatrix, b: &TrafficMatrix| -> f64 {
            let n = a.num_sites();
            let mut d = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    d += (a.weight(i, j) - b.weight(i, j)).abs();
                }
            }
            d
        };
        assert!(distance(&nominal, &large) > distance(&nominal, &small));
    }

    #[test]
    fn perturbed_matrix_remains_valid() {
        let cities = us_top_cities(10);
        let m = perturbed_city_city_matrix(&cities, 0.5, 11);
        assert_eq!(m.num_sites(), 10);
        assert!(m.total_weight() > 0.0);
        for i in 0..10 {
            assert_eq!(m.weight(i, i), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn gamma_above_one_rejected() {
        perturbed_populations(&us_top_cities(3), 1.5, 1);
    }
}

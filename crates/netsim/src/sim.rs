//! The event-driven UDP simulation engine.
//!
//! Packets are source-routed: each flow's route (a sequence of link ids) is
//! computed up front by [`crate::routing`] into a flat [`PathStore`]-backed
//! table, and the engine replays every packet's journey hop by hop through
//! the FIFO link model of [`crate::network`]. Events are plain `Copy`
//! structs ordered by `(time, flow, hop)` directly on the binary heap — no
//! per-event allocation, no indirection.
//!
//! # Sharded execution
//!
//! Two flows can only interact by queueing at a shared link, so the demand
//! set decomposes into *components* — groups of flows connected through
//! shared links — that are completely independent simulations. The engine
//! always partitions (union-find over each route's links), then executes
//! the components either inline or across persistent worker threads
//! ([`SimConfig::workers`]), each worker owning private [`LinkStates`]
//! arrays over the shared link table and draining components from a shared
//! queue. Per-component results are merged in component order, so the
//! produced [`SimReport`] is **bit-identical for every worker count** —
//! `workers: 1` is the pinned serial reference, `workers: 0` picks the
//! machine's parallelism. This is the same persistent-worker pattern as the
//! design engine's `ShardPool`: threads are spawned once per run and handed
//! stable state, not re-fanned per event batch.
//!
//! [`PathStore`]: cisp_graph::PathStore

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::thread;

use serde::{Deserialize, Serialize};

use crate::flows::{emission_times, ArrivalProcess, FlowSpec};
use crate::monitor::{FlowMonitor, SimReport};
use crate::network::{LinkState, LinkStates, Network, Transmit};
use crate::routing::{compute_routes, Demand, RoutingScheme, RoutingTable};

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulated duration in seconds (paper: 1 s).
    pub duration_s: f64,
    /// Packet size in bytes (paper: 500 B).
    pub packet_bytes: f64,
    /// Packet arrival process.
    pub arrivals: ArrivalProcess,
    /// Routing scheme.
    pub routing: RoutingScheme,
    /// RNG seed for arrival processes.
    pub seed: u64,
    /// Worker threads for sharded execution: 0 = the machine's available
    /// parallelism, 1 = serial. Results are bit-identical for every value.
    pub workers: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            duration_s: 1.0,
            packet_bytes: 500.0,
            arrivals: ArrivalProcess::ConstantBitRate,
            routing: RoutingScheme::ShortestPath,
            seed: 1,
            workers: 0,
        }
    }
}

/// A scheduled packet-at-link event. Lives directly on the heap (plain
/// `Copy` key, no boxing); ordered by `(time, flow, hop)` with earliest
/// first, which both drives the simulation clock and makes tie-breaking
/// deterministic.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Time the packet arrives at the head of this hop.
    time: f64,
    /// Flow (demand) index.
    flow: u32,
    /// Position within the flow's route.
    hop: u32,
    /// Time the packet originally entered the network.
    sent_at: f64,
    /// Accumulated queueing delay so far.
    queue_delay: f64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.flow == other.flow && self.hop == other.hop
    }
}
impl Eq for Event {}

impl Ord for Event {
    /// Reversed comparison so `BinaryHeap` (a max-heap) pops the earliest
    /// event; ties broken by flow then hop index.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.flow.cmp(&self.flow))
            .then_with(|| other.hop.cmp(&self.hop))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-flow tallies of one component run, aligned with the component's flow
/// list.
#[derive(Debug, Clone, Copy, Default)]
struct FlowStat {
    delay_sum: f64,
    delivered: u64,
    dropped: u64,
}

/// Everything one component's simulation produced, merged (in component
/// order) into the global monitor and network state after all components
/// finish.
struct ComponentOutcome {
    delays: Vec<f64>,
    queue_delays: Vec<f64>,
    flow_stats: Vec<FlowStat>,
    links: Vec<(u32, LinkState)>,
}

/// A worker's reusable scratch: private link-state arrays over the shared
/// link table, the event heap, and the touched-link tracking used to reset
/// only the links the previous component dirtied.
struct WorkerState {
    states: LinkStates,
    seen: Vec<bool>,
    touched: Vec<u32>,
    heap: BinaryHeap<Event>,
}

impl WorkerState {
    fn new(num_links: usize) -> Self {
        Self {
            states: LinkStates::new(num_links),
            seen: vec![false; num_links],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }
}

/// A complete simulation: network, demands, routes and configuration.
pub struct Simulation {
    network: Network,
    demands: Vec<Demand>,
    routes: RoutingTable,
    config: SimConfig,
}

impl Simulation {
    /// Build a simulation: routes are computed for the demands under the
    /// configured scheme.
    pub fn new(network: Network, demands: Vec<Demand>, config: SimConfig) -> Self {
        let routes = compute_routes(&network, &demands, config.routing);
        Self::with_routes(network, demands, routes, config)
    }

    /// Build a simulation over externally computed routes (e.g. routes that
    /// avoid failed links, from
    /// [`crate::routing::compute_routes_avoiding`]).
    pub fn with_routes(
        network: Network,
        demands: Vec<Demand>,
        routes: RoutingTable,
        config: SimConfig,
    ) -> Self {
        assert_eq!(routes.len(), demands.len(), "one route per demand");
        Self {
            network,
            demands,
            routes,
            config,
        }
    }

    /// The computed routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The network (lets callers inspect link state after a run).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The demand set.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Number of link-disjoint components the active flows decompose into —
    /// the engine's parallelism grain.
    pub fn num_components(&self) -> usize {
        self.partition_flows().len()
    }

    /// Mean propagation-only latency across demands, weighted by demand rate.
    /// This is the zero-load baseline the queueing delays add to.
    pub fn weighted_propagation_ms(&self) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (k, d) in self.demands.iter().enumerate() {
            if !self.routes.route(k).is_empty() {
                num += d.amount_bps * self.routes.route_latency_s(&self.network, k);
                den += d.amount_bps;
            }
        }
        if den > 0.0 {
            num / den * 1e3
        } else {
            0.0
        }
    }

    /// Group the active flows (non-empty route, positive rate) into
    /// link-disjoint components via union-find over each route's links.
    /// Component order follows the first demand of each component, so the
    /// decomposition is deterministic.
    fn partition_flows(&self) -> Vec<Vec<u32>> {
        let num_links = self.network.num_links();
        let mut parent: Vec<u32> = (0..num_links as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                // Path halving.
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for (k, d) in self.demands.iter().enumerate() {
            if d.amount_bps <= 0.0 {
                continue;
            }
            let route = self.routes.route(k);
            if route.is_empty() {
                continue;
            }
            let root = find(&mut parent, route[0]);
            for &l in &route[1..] {
                let r = find(&mut parent, l);
                parent[r as usize] = root;
            }
        }
        let mut comp_of_root: Vec<usize> = vec![usize::MAX; num_links];
        let mut comps: Vec<Vec<u32>> = Vec::new();
        for (k, d) in self.demands.iter().enumerate() {
            if d.amount_bps <= 0.0 || self.routes.route(k).is_empty() {
                continue;
            }
            let root = find(&mut parent, self.routes.route(k)[0]) as usize;
            let idx = if comp_of_root[root] == usize::MAX {
                comp_of_root[root] = comps.len();
                comps.push(Vec::new());
                comps.len() - 1
            } else {
                comp_of_root[root]
            };
            comps[idx].push(k as u32);
        }
        comps
    }

    /// Simulate one component's flows against the worker's private link
    /// state. All scoring of time and tie-breaks happens inside the
    /// component, so the outcome does not depend on which worker runs it.
    fn run_component(
        network: &Network,
        routes: &RoutingTable,
        demands: &[Demand],
        config: &SimConfig,
        w: &mut WorkerState,
        flows: &[u32],
    ) -> ComponentOutcome {
        // Track the links this component dirties (for extraction + reset).
        for &f in flows {
            for &l in routes.route(f as usize) {
                if !w.seen[l as usize] {
                    w.seen[l as usize] = true;
                    w.touched.push(l);
                }
            }
        }

        // Schedule every packet emission of the component's flows.
        w.heap.clear();
        for &f in flows {
            let demand = demands[f as usize];
            let flow = FlowSpec {
                src: demand.src,
                dst: demand.dst,
                rate_bps: demand.amount_bps,
                packet_bytes: config.packet_bytes,
            };
            for t in emission_times(
                &flow,
                f as usize,
                config.duration_s,
                config.arrivals,
                config.seed,
            ) {
                w.heap.push(Event {
                    time: t,
                    flow: f,
                    hop: 0,
                    sent_at: t,
                    queue_delay: 0.0,
                });
            }
        }

        // Process events in timestamp order.
        let mut delays = Vec::new();
        let mut queue_delays = Vec::new();
        let mut flow_stats = vec![FlowStat::default(); flows.len()];
        let links = network.links();
        while let Some(ev) = w.heap.pop() {
            let route = routes.route(ev.flow as usize);
            if ev.hop as usize >= route.len() {
                // Packet has arrived at its destination.
                let pos = flows.binary_search(&ev.flow).expect("flow in component");
                let delay = ev.time - ev.sent_at;
                delays.push(delay);
                queue_delays.push(ev.queue_delay);
                flow_stats[pos].delay_sum += delay;
                flow_stats[pos].delivered += 1;
                continue;
            }
            let link = route[ev.hop as usize] as usize;
            match w
                .states
                .transmit(&links[link], link, ev.time, config.packet_bytes)
            {
                Transmit::Delivered {
                    arrival,
                    queue_delay,
                } => {
                    w.heap.push(Event {
                        time: arrival,
                        flow: ev.flow,
                        hop: ev.hop + 1,
                        sent_at: ev.sent_at,
                        queue_delay: ev.queue_delay + queue_delay,
                    });
                }
                Transmit::Dropped => {
                    let pos = flows.binary_search(&ev.flow).expect("flow in component");
                    flow_stats[pos].dropped += 1;
                }
            }
        }

        // Extract the dirtied link states and recycle the worker arrays.
        let mut touched_links = Vec::with_capacity(w.touched.len());
        for l in w.touched.drain(..) {
            touched_links.push((l, w.states.snapshot(l as usize)));
            w.states.reset_link(l as usize);
            w.seen[l as usize] = false;
        }

        ComponentOutcome {
            delays,
            queue_delays,
            flow_stats,
            links: touched_links,
        }
    }

    /// Run the simulation and produce a report.
    ///
    /// The report — including float-for-float every statistic — is identical
    /// for every [`SimConfig::workers`] value; the worker count is a pure
    /// performance knob.
    pub fn run(&mut self) -> SimReport {
        self.network.reset();
        let comps = self.partition_flows();
        let requested = if self.config.workers == 0 {
            thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.config.workers
        };
        let workers = requested.clamp(1, comps.len().max(1));

        let num_links = self.network.num_links();
        let (network, routes, demands, config) =
            (&self.network, &self.routes, &self.demands, &self.config);
        let mut outcomes: Vec<Option<ComponentOutcome>> = (0..comps.len()).map(|_| None).collect();
        if workers <= 1 {
            let mut w = WorkerState::new(num_links);
            for (i, comp) in comps.iter().enumerate() {
                outcomes[i] = Some(Self::run_component(
                    network, routes, demands, config, &mut w, comp,
                ));
            }
        } else {
            // Persistent workers drain the component queue; assignment order
            // is irrelevant because components are independent and merged by
            // index below.
            let next = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, ComponentOutcome)>> = thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let comps = &comps;
                        scope.spawn(move || {
                            let mut w = WorkerState::new(num_links);
                            let mut done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                                if i >= comps.len() {
                                    break;
                                }
                                done.push((
                                    i,
                                    Self::run_component(
                                        network, routes, demands, config, &mut w, &comps[i],
                                    ),
                                ));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker panicked"))
                    .collect()
            });
            for chunk in per_worker {
                for (i, outcome) in chunk {
                    outcomes[i] = Some(outcome);
                }
            }
        }

        // Merge in component order — the step that fixes the statistics'
        // sample order independent of worker count.
        let mut monitor = FlowMonitor::new(self.demands.len());
        for (comp, outcome) in comps.iter().zip(outcomes) {
            let o = outcome.expect("component not simulated");
            monitor.delays.record_many(&o.delays);
            monitor.queue_delays.record_many(&o.queue_delays);
            for (pos, &f) in comp.iter().enumerate() {
                let stat = o.flow_stats[pos];
                monitor.absorb_flow(f as usize, stat.delay_sum, stat.delivered, stat.dropped);
            }
            for (l, state) in &o.links {
                self.network.states_mut().restore(*l as usize, state);
            }
        }

        let utilizations: Vec<f64> = (0..self.network.num_links())
            .map(|l| self.network.utilization(l, self.config.duration_s))
            .collect();
        monitor.report(utilizations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkSpec;

    /// A single bottleneck link 0 → 1: 10 Mbps, 10 ms propagation.
    fn single_link_net(buffer_bytes: f64) -> Network {
        let mut net = Network::new(2);
        net.add_link(LinkSpec {
            from: 0,
            to: 1,
            rate_bps: 10e6,
            propagation_s: 0.010,
            buffer_bytes,
        });
        net
    }

    fn run_at_load(load: f64, buffer: f64, arrivals: ArrivalProcess) -> SimReport {
        let net = single_link_net(buffer);
        let demands = vec![Demand {
            src: 0,
            dst: 1,
            amount_bps: 10e6 * load,
        }];
        let mut sim = Simulation::new(
            net,
            demands,
            SimConfig {
                duration_s: 2.0,
                arrivals,
                ..SimConfig::default()
            },
        );
        sim.run()
    }

    #[test]
    fn light_load_delay_is_propagation_plus_serialization() {
        let report = run_at_load(0.2, 1e6, ArrivalProcess::ConstantBitRate);
        // 10 ms propagation + 0.4 ms serialisation of 500 B at 10 Mbps.
        assert!(
            (report.mean_delay_ms - 10.4).abs() < 0.05,
            "{}",
            report.mean_delay_ms
        );
        assert_eq!(report.loss_rate, 0.0);
        assert!((report.mean_link_utilization - 0.2).abs() < 0.02);
        // The sole flow's mean delay is the global mean.
        assert!((report.flow_mean_delay_ms[0] - report.mean_delay_ms).abs() < 1e-9);
    }

    #[test]
    fn overload_causes_loss_with_finite_buffer() {
        let report = run_at_load(1.5, 20_000.0, ArrivalProcess::ConstantBitRate);
        assert!(report.loss_rate > 0.2, "loss {}", report.loss_rate);
        // Link saturates.
        assert!(report.max_link_utilization > 0.95);
        assert_eq!(report.flow_dropped[0], report.dropped);
    }

    #[test]
    fn poisson_at_moderate_load_has_small_queueing() {
        let report = run_at_load(0.5, 1e9, ArrivalProcess::Poisson);
        // M/D/1 mean wait at ρ=0.5 is ρ·S/(2(1−ρ)) = 0.5·0.4ms/1 = 0.2 ms.
        assert!(report.mean_queue_delay_ms > 0.05);
        assert!(
            report.mean_queue_delay_ms < 0.6,
            "{}",
            report.mean_queue_delay_ms
        );
        assert_eq!(report.loss_rate, 0.0);
    }

    #[test]
    fn queueing_grows_with_load() {
        let low = run_at_load(0.3, 1e9, ArrivalProcess::Poisson);
        let high = run_at_load(0.9, 1e9, ArrivalProcess::Poisson);
        assert!(high.mean_queue_delay_ms > low.mean_queue_delay_ms);
    }

    #[test]
    fn multihop_delays_add_up() {
        // 0 → 1 → 2, each hop 5 ms.
        let mut net = Network::new(3);
        for (a, b) in [(0, 1), (1, 2)] {
            net.add_link(LinkSpec {
                from: a,
                to: b,
                rate_bps: 1e9,
                propagation_s: 0.005,
                buffer_bytes: 1e9,
            });
        }
        let demands = vec![Demand {
            src: 0,
            dst: 2,
            amount_bps: 1e6,
        }];
        let mut sim = Simulation::new(net, demands, SimConfig::default());
        let report = sim.run();
        assert!(
            (report.mean_delay_ms - 10.0).abs() < 0.1,
            "{}",
            report.mean_delay_ms
        );
        assert!((sim.weighted_propagation_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cross_traffic_interferes_at_shared_link() {
        // Flows 0→2 and 1→2 share the 2→3 bottleneck.
        let mut net = Network::new(4);
        for (a, b, rate) in [(0, 2, 1e9), (1, 2, 1e9), (2, 3, 10e6)] {
            net.add_link(LinkSpec {
                from: a,
                to: b,
                rate_bps: rate,
                propagation_s: 0.001,
                buffer_bytes: 30_000.0,
            });
        }
        let demands = vec![
            Demand {
                src: 0,
                dst: 3,
                amount_bps: 8e6,
            },
            Demand {
                src: 1,
                dst: 3,
                amount_bps: 8e6,
            },
        ];
        let mut sim = Simulation::new(net, demands, SimConfig::default());
        let report = sim.run();
        // Combined 16 Mbps into a 10 Mbps link: significant loss.
        assert!(report.loss_rate > 0.2, "loss {}", report.loss_rate);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_at_load(0.8, 50_000.0, ArrivalProcess::Poisson);
        let b = run_at_load(0.8, 50_000.0, ArrivalProcess::Poisson);
        assert_eq!(a, b, "same seed must give a bit-identical report");
    }

    #[test]
    fn zero_rate_demand_produces_no_packets() {
        let net = single_link_net(1e6);
        let demands = vec![Demand {
            src: 0,
            dst: 1,
            amount_bps: 0.0,
        }];
        let mut sim = Simulation::new(net, demands, SimConfig::default());
        let report = sim.run();
        assert_eq!(report.delivered + report.dropped, 0);
    }

    /// Many disjoint bottleneck pairs plus one shared-link pair: several
    /// independent components.
    fn multi_component_inputs(pairs: usize) -> (Network, Vec<Demand>) {
        let mut net = Network::new(2 * pairs);
        let mut demands = Vec::new();
        for p in 0..pairs {
            net.add_link(LinkSpec {
                from: 2 * p,
                to: 2 * p + 1,
                rate_bps: 10e6,
                propagation_s: 0.002 + p as f64 * 1e-4,
                buffer_bytes: 30_000.0,
            });
            demands.push(Demand {
                src: 2 * p,
                dst: 2 * p + 1,
                amount_bps: 8e6,
            });
        }
        (net, demands)
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        for arrivals in [ArrivalProcess::ConstantBitRate, ArrivalProcess::Poisson] {
            let (net, demands) = multi_component_inputs(6);
            let config = |workers| SimConfig {
                duration_s: 0.5,
                arrivals,
                seed: 9,
                workers,
                ..SimConfig::default()
            };
            let serial = Simulation::new(net.clone(), demands.clone(), config(1)).run();
            let sharded = Simulation::new(net.clone(), demands.clone(), config(4)).run();
            let auto = Simulation::new(net, demands, config(0)).run();
            assert_eq!(serial, sharded, "{arrivals:?}");
            assert_eq!(serial, auto, "{arrivals:?}");
            assert!(serial.delivered > 0);
        }
    }

    #[test]
    fn components_split_disjoint_flows() {
        let (net, demands) = multi_component_inputs(4);
        let sim = Simulation::new(net, demands, SimConfig::default());
        let comps = sim.partition_flows();
        assert_eq!(comps.len(), 4);
        for (i, comp) in comps.iter().enumerate() {
            assert_eq!(comp, &vec![i as u32]);
        }
    }

    #[test]
    fn flows_sharing_a_link_stay_in_one_component() {
        let mut net = Network::new(4);
        for (a, b, rate) in [(0, 2, 1e9), (1, 2, 1e9), (2, 3, 10e6)] {
            net.add_link(LinkSpec {
                from: a,
                to: b,
                rate_bps: rate,
                propagation_s: 0.001,
                buffer_bytes: 30_000.0,
            });
        }
        let demands = vec![
            Demand {
                src: 0,
                dst: 3,
                amount_bps: 4e6,
            },
            Demand {
                src: 1,
                dst: 3,
                amount_bps: 4e6,
            },
        ];
        let sim = Simulation::new(net, demands, SimConfig::default());
        let comps = sim.partition_flows();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1]);
    }
}
